"""Group-fairness constraints for diversity maximization.

A fairness constraint assigns a quota ``k_i`` to each of ``m`` disjoint
groups; a solution is *fair* if it contains exactly ``k_i`` elements from
group ``i`` (so its total size is ``k = sum_i k_i``).  The two standard ways
of choosing the quotas used in the paper's experiments are implemented as
factory functions:

* :func:`equal_representation` — split ``k`` as evenly as possible;
* :func:`proportional_representation` — quotas proportional to group sizes
  in the full dataset (largest-remainder rounding), with every group kept at
  a minimum of one element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.data.element import Element
from repro.utils.errors import InfeasibleConstraintError, InvalidParameterError
from repro.utils.validation import require_positive_int


class FairnessConstraint:
    """Per-group quotas ``{group: k_i}`` with ``k = sum_i k_i``.

    The constraint is the partition-matroid description of fairness used
    throughout the paper: a set is an independent set if it has at most
    ``k_i`` elements from group ``i``, and it is *fair* (a basis) when every
    quota is met with equality.
    """

    def __init__(self, quotas: Mapping[int, int]) -> None:
        if not quotas:
            raise InvalidParameterError("quotas must contain at least one group")
        cleaned: Dict[int, int] = {}
        for group, quota in quotas.items():
            group = int(group)
            quota = require_positive_int(quota, f"quota for group {group}")
            cleaned[group] = quota
        self._quotas: Dict[int, int] = dict(sorted(cleaned.items()))

    @property
    def quotas(self) -> Dict[int, int]:
        """A copy of the group-to-quota mapping (sorted by group label)."""
        return dict(self._quotas)

    @property
    def groups(self) -> List[int]:
        """Sorted group labels covered by the constraint."""
        return list(self._quotas.keys())

    @property
    def num_groups(self) -> int:
        """Number of groups ``m``."""
        return len(self._quotas)

    @property
    def total_size(self) -> int:
        """Total solution size ``k = sum_i k_i``."""
        return sum(self._quotas.values())

    def quota(self, group: int) -> int:
        """Quota ``k_i`` for ``group``; raises ``KeyError`` for unknown groups."""
        return self._quotas[int(group)]

    def __contains__(self, group: int) -> bool:
        return int(group) in self._quotas

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FairnessConstraint):
            return NotImplemented
        return self._quotas == other._quotas

    def __hash__(self) -> int:
        return hash(tuple(self._quotas.items()))

    def __repr__(self) -> str:
        return f"FairnessConstraint({self._quotas!r})"

    # ------------------------------------------------------------------
    # Feasibility and auditing
    # ------------------------------------------------------------------
    def group_counts(self, elements: Iterable[Element]) -> Dict[int, int]:
        """Count the elements of ``elements`` that fall in each quota group."""
        counts = {group: 0 for group in self._quotas}
        for element in elements:
            if element.group in counts:
                counts[element.group] += 1
        return counts

    def is_independent(self, elements: Iterable[Element]) -> bool:
        """True iff no group exceeds its quota and no foreign group appears."""
        counts: Dict[int, int] = {}
        for element in elements:
            if element.group not in self._quotas:
                return False
            counts[element.group] = counts.get(element.group, 0) + 1
            if counts[element.group] > self._quotas[element.group]:
                return False
        return True

    def is_fair(self, elements: Iterable[Element]) -> bool:
        """True iff every group quota is met with equality."""
        counts = {group: 0 for group in self._quotas}
        for element in elements:
            if element.group not in counts:
                return False
            counts[element.group] += 1
        return counts == self._quotas

    def validate_feasible(self, group_sizes: Mapping[int, int]) -> None:
        """Raise :class:`InfeasibleConstraintError` if a quota cannot be met.

        ``group_sizes`` maps group labels to the number of elements of that
        group available in the dataset/stream.
        """
        for group, quota in self._quotas.items():
            available = int(group_sizes.get(group, 0))
            if available < quota:
                raise InfeasibleConstraintError(
                    f"group {group} has only {available} elements but the quota is {quota}"
                )

    def violation(self, elements: Iterable[Element]) -> int:
        """Total absolute deviation from the quotas, ``sum_i |count_i - k_i|``.

        Elements from groups outside the constraint count fully towards the
        violation.
        """
        counts: Dict[int, int] = {}
        foreign = 0
        for element in elements:
            if element.group in self._quotas:
                counts[element.group] = counts.get(element.group, 0) + 1
            else:
                foreign += 1
        deviation = sum(
            abs(counts.get(group, 0) - quota) for group, quota in self._quotas.items()
        )
        return deviation + foreign


@dataclass
class FairnessAudit:
    """Result of checking a concrete solution against a constraint."""

    is_fair: bool
    counts: Dict[int, int]
    quotas: Dict[int, int]
    violation: int

    def __bool__(self) -> bool:
        return self.is_fair


def audit_fairness(elements: Sequence[Element], constraint: FairnessConstraint) -> FairnessAudit:
    """Produce a :class:`FairnessAudit` for ``elements`` under ``constraint``."""
    counts = constraint.group_counts(elements)
    return FairnessAudit(
        is_fair=constraint.is_fair(elements),
        counts=counts,
        quotas=constraint.quotas,
        violation=constraint.violation(elements),
    )


def equal_representation(k: int, groups: Sequence[int]) -> FairnessConstraint:
    """Quotas that split ``k`` as evenly as possible across ``groups``.

    If ``k`` is not divisible by ``m``, the first ``k mod m`` groups (in
    sorted label order) receive one extra element — the same convention as
    the paper.  Requires ``k >= m`` so every group gets at least one slot.
    """
    k = require_positive_int(k, "k")
    group_list = sorted({int(g) for g in groups})
    if not group_list:
        raise InvalidParameterError("groups must contain at least one label")
    m = len(group_list)
    if k < m:
        raise InvalidParameterError(
            f"k={k} is smaller than the number of groups m={m}; every group needs at least one slot"
        )
    base, remainder = divmod(k, m)
    quotas = {
        group: base + (1 if index < remainder else 0) for index, group in enumerate(group_list)
    }
    return FairnessConstraint(quotas)


def proportional_representation(
    k: int,
    group_sizes: Mapping[int, int],
    minimum_per_group: int = 1,
) -> FairnessConstraint:
    """Quotas proportional to the group sizes (largest-remainder method).

    Every group receives at least ``minimum_per_group`` elements (default 1,
    matching the paper's requirement that an algorithm picks at least one
    element per group), and the remaining slots are apportioned by the
    largest-remainder (Hamilton) method on the group proportions.
    """
    k = require_positive_int(k, "k")
    if not group_sizes:
        raise InvalidParameterError("group_sizes must contain at least one group")
    sizes = {int(g): int(s) for g, s in group_sizes.items()}
    if any(size <= 0 for size in sizes.values()):
        raise InvalidParameterError("all group sizes must be positive")
    m = len(sizes)
    minimum_per_group = int(minimum_per_group)
    if minimum_per_group < 0:
        raise InvalidParameterError("minimum_per_group must be non-negative")
    if k < m * minimum_per_group:
        raise InvalidParameterError(
            f"k={k} is too small to give {minimum_per_group} element(s) to each of {m} groups"
        )
    total = sum(sizes.values())
    spare = k - m * minimum_per_group
    ideal = {group: spare * size / total for group, size in sizes.items()}
    quotas = {group: minimum_per_group + int(ideal[group]) for group in sizes}
    remainders = {group: ideal[group] - int(ideal[group]) for group in sizes}
    leftover = k - sum(quotas.values())
    # Assign leftover slots to the groups with the largest fractional parts,
    # breaking ties by larger group then smaller label for determinism.
    order = sorted(sizes, key=lambda g: (-remainders[g], -sizes[g], g))
    for group in order[:leftover]:
        quotas[group] += 1
    return FairnessConstraint(quotas)


def constraint_from_counts(counts: Mapping[int, int]) -> FairnessConstraint:
    """Build a constraint whose quotas equal the provided per-group counts."""
    return FairnessConstraint(dict(counts))
