"""Fairness constraints: group quotas and the ER / PR quota rules."""

from repro.fairness.constraints import (
    FairnessConstraint,
    equal_representation,
    proportional_representation,
    audit_fairness,
    FairnessAudit,
)

__all__ = [
    "FairnessConstraint",
    "equal_representation",
    "proportional_representation",
    "audit_fairness",
    "FairnessAudit",
]
