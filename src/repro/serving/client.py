"""A small blocking HTTP client for the serving endpoint.

Built on :class:`http.client.HTTPConnection` (stdlib, keep-alive) so the
example, the smoke tool, and the bench load generator need no external
HTTP library.  One :class:`ServingClient` wraps one connection and is
**not** thread-safe; give each load-generator thread its own client.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Any, Dict, List, Optional, Sequence, Tuple


class ServingClient:
    """Blocking JSON client for one ``repro serve`` endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns ``(status, parsed_json_body)``.

        Reconnects once on a dropped keep-alive connection.
        """
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        return response.status, decoded

    def close(self) -> None:
        """Drop the underlying connection (reopened lazily on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._conn

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def create_session(self, **spec: Any) -> str:
        """``POST /sessions``; returns the session name."""
        status, body = self.request("POST", "/sessions", spec)
        self._check(status, body, expected=201)
        return body["name"]

    def offer(
        self,
        name: str,
        features: Sequence[Sequence[float]],
        groups: Optional[Sequence[int]] = None,
        uids: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        """``POST /sessions/{name}/offer``; returns the accept receipt."""
        body: Dict[str, Any] = {"features": _listify(features)}
        if groups is not None:
            body["groups"] = [int(group) for group in _listify(groups)]
        if uids is not None:
            body["uids"] = [int(uid) for uid in _listify(uids)]
        status, response = self.request("POST", f"/sessions/{name}/offer", body)
        self._check(status, response, expected=202)
        return response

    def solution(self, name: str) -> Dict[str, Any]:
        """``GET /sessions/{name}/solution``; returns the solution body."""
        status, body = self.request("GET", f"/sessions/{name}/solution")
        self._check(status, body, expected=200)
        return body

    def close_session(self, name: str, checkpoint: bool = False) -> Dict[str, Any]:
        """``DELETE /sessions/{name}``; optionally keep a final checkpoint."""
        suffix = "?checkpoint=1" if checkpoint else ""
        status, body = self.request("DELETE", f"/sessions/{name}{suffix}")
        self._check(status, body, expected=200)
        return body

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``; the liveness summary."""
        status, body = self.request("GET", "/healthz")
        self._check(status, body, expected=200)
        return body

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``; the JSON metrics snapshot."""
        status, body = self.request("GET", "/metrics")
        self._check(status, body, expected=200)
        return body

    def _check(self, status: int, body: Dict[str, Any], expected: int) -> None:
        if status != expected:
            raise ServingRequestError(status, body.get("error", str(body)))


class ServingRequestError(RuntimeError):
    """A route helper saw an unexpected HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


def _listify(features: Sequence[Sequence[float]]) -> List[Any]:
    """Feature rows as plain lists (handles numpy arrays transparently)."""
    tolist = getattr(features, "tolist", None)
    if tolist is not None:
        return tolist()
    return [list(row) if hasattr(row, "__len__") else row for row in features]
