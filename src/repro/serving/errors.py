"""Typed failures of the serving layer.

Every error the :class:`~repro.serving.manager.SessionManager` raises on
a *caller* mistake or an admission-control decision derives from
:class:`~repro.utils.errors.ReproError`, so the HTTP front end can map
each class to one status code (404, 409, 429) while embedding callers
catch the library-wide base class.
"""

from __future__ import annotations

from repro.utils.errors import ReproError


class ServingError(ReproError):
    """Base class for serving-layer failures."""


class SessionNotFoundError(ServingError, KeyError):
    """A request referenced a session name the manager does not know."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"no session named {name!r}")

    def __str__(self) -> str:
        """The plain message (``KeyError`` would repr-quote it)."""
        return self.args[0]


class SessionExistsError(ServingError, ValueError):
    """A create request reused a session name that is already registered."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"session {name!r} already exists")


class TooManySessionsError(ServingError, RuntimeError):
    """The manager's total-session cap is reached (admission control)."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(
            f"session limit reached ({limit}); close sessions or raise "
            f"--max-sessions"
        )


class QueueFullError(ServingError, RuntimeError):
    """A session's bounded offer queue overflowed (backpressure).

    The HTTP front end turns this into a ``429 Too Many Requests`` so
    well-behaved clients back off and retry; nothing from the rejected
    offer is ingested.
    """

    def __init__(self, name: str, pending: int, limit: int) -> None:
        self.name = name
        self.pending = pending
        self.limit = limit
        super().__init__(
            f"session {name!r} offer queue is full "
            f"({pending} pending rows, limit {limit}); retry later"
        )
