"""Stdlib-only HTTP/JSON front end over the :class:`SessionManager`.

A deliberately small HTTP/1.1 server on ``asyncio`` streams (no
third-party dependency), exposing the session lifecycle as five routes:

==========================================  ===================================
``POST /sessions``                          create a session (JSON body:
                                            ``k``, ``groups``, ``algorithm``,
                                            ``name``, ``epsilon``,
                                            ``fairness``, ``metric``,
                                            ``options``)
``POST /sessions/{name}/offer``             queue feature rows (``features``,
                                            optional ``groups``/``uids``);
                                            202 on accept, 429 on a full queue
``GET /sessions/{name}/solution``           flush + current best solution
``DELETE /sessions/{name}``                 close (``?checkpoint=1`` keeps a
                                            final checkpoint)
``GET /healthz`` / ``GET /metrics``         liveness summary / JSON dump of
                                            the process metrics registry
==========================================  ===================================

Connections are keep-alive (one request loop per connection); every
request runs under a ``serving.request`` span.  Note that when tracing is
enabled while requests are processed concurrently, spans of interleaved
requests may nest under each other — the tracer's stack is per-thread,
not per-task; traces remain structurally valid, just coarser.

Graceful shutdown: :func:`run_server` (the ``repro serve`` entry point)
installs SIGTERM/SIGINT handlers that stop accepting connections and
drain the manager — every live session is flushed and checkpointed to
``state_dir`` — before the process exits 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro import obs
from repro.core.result import RunResult
from repro.serving.errors import (
    QueueFullError,
    SessionExistsError,
    SessionNotFoundError,
    TooManySessionsError,
)
from repro.serving.manager import METRIC_PREFIX, ManagerConfig, SessionManager
from repro.utils.errors import (
    CheckpointError,
    EmptyStreamError,
    InfeasibleConstraintError,
    InvalidParameterError,
    NoFeasibleSolutionError,
    ReproError,
)
from repro.utils.timer import Timer

#: Longest accepted request body, in bytes (64 MiB of JSON rows).
MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Keys of a create-request body forwarded to ``SessionManager.create``.
_CREATE_KEYS = (
    "k",
    "groups",
    "algorithm",
    "epsilon",
    "fairness",
    "metric",
    "seed",
    "options",
)


class _HttpError(Exception):
    """Internal: abort request handling with a specific status + message."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


def solution_payload(result: RunResult) -> Dict[str, Any]:
    """A :class:`RunResult` as the JSON body of a solution response."""
    solution = result.solution
    stats = result.stats
    payload: Dict[str, Any] = {
        "algorithm": result.algorithm,
        "succeeded": result.succeeded,
        "diversity": result.diversity,
        "uids": solution.uids if solution is not None else [],
        "elements_processed": stats.elements_processed,
        "stream_distance_computations": stats.stream_distance_computations,
        "postprocess_distance_computations": stats.postprocess_distance_computations,
        "stored_elements": stats.final_stored_elements,
        "params": {key: value for key, value in result.params.items()
                   if isinstance(value, (int, float, str, bool, type(None)))},
    }
    is_fair = getattr(solution, "is_fair", None)
    if is_fair is not None:
        payload["is_fair"] = bool(is_fair)
    return payload


class ServingServer:
    """The asyncio HTTP server; binds, serves, and drains one manager."""

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._manager = manager
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def manager(self) -> SessionManager:
        """The session manager this server fronts."""
        return self._manager

    @property
    def port(self) -> int:
        """The bound TCP port (the requested one, or the ephemeral pick)."""
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        """The bind host."""
        return self._host

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._port
        )

    async def serve_forever(self) -> None:
        """Serve until cancelled (see :func:`run_server` for signals)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain: bool = True) -> Dict[str, str]:
        """Stop accepting connections; optionally drain (checkpoint) sessions."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            return await self._manager.drain()
        await self._manager.shutdown()
        return {}

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one keep-alive connection until EOF or ``Connection: close``."""
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    await self._write_response(
                        writer, error.status, {"error": error.message}, close=True
                    )
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                status, payload = await self._dispatch(method, path, query, body)
                close = headers.get("connection", "").lower() == "close"
                await self._write_response(writer, status, payload, close)
                if close:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight connection tasks; close
            # quietly instead of tripping the stream protocol's logger.
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method.upper(), split.path, split.query, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        close: bool,
    ) -> None:
        """Serialize one JSON response with framing headers."""
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        """Route one request, translating typed errors to status codes."""
        metrics = obs.get_metrics()
        metrics.counter(f"{METRIC_PREFIX}.http.requests").inc()
        timer = Timer()
        try:
            with obs.span("serving.request", method=method, path=path), timer.measure():
                status, payload = await self._route(method, path, query, body)
        except _HttpError as error:
            status, payload = error.status, {"error": error.message}
        except SessionNotFoundError as error:
            status, payload = 404, {"error": str(error)}
        except (QueueFullError, TooManySessionsError) as error:
            status, payload = 429, {"error": str(error)}
        except SessionExistsError as error:
            status, payload = 409, {"error": str(error)}
        except (EmptyStreamError, NoFeasibleSolutionError,
                InfeasibleConstraintError) as error:
            status, payload = 409, {"error": str(error)}
        except InvalidParameterError as error:
            # Includes CheckpointError; a bad on-disk checkpoint is a
            # server-side failure, not a caller mistake.
            if isinstance(error, CheckpointError):
                status, payload = 500, {"error": str(error)}
            else:
                status, payload = 400, {"error": str(error)}
        except (ReproError, TypeError, ValueError, KeyError) as error:
            # A request must never take its connection down with it.
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        metrics.histogram(f"{METRIC_PREFIX}.http.ms").observe(timer.elapsed * 1000.0)
        if status >= 400:
            metrics.counter(f"{METRIC_PREFIX}.http.errors").inc()
        return status, payload

    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        """The route table proper (raises typed errors; no HTTP concerns)."""
        if path == "/healthz":
            self._require_method(method, "GET", path)
            return 200, {"status": "ok", **self._manager.stats()}
        if path == "/metrics":
            self._require_method(method, "GET", path)
            return 200, self._manager.metrics_snapshot()
        if path == "/sessions":
            self._require_method(method, "POST", path)
            request = self._json_body(body)
            kwargs = {key: request[key] for key in _CREATE_KEYS if key in request}
            name = await self._manager.create(name=request.get("name"), **kwargs)
            return 201, {"name": name}
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 2 and parts[0] == "sessions":
            name = parts[1]
            if len(parts) == 2:
                if method == "DELETE":
                    keep = "checkpoint=1" in query or "checkpoint=true" in query
                    return 200, await self._manager.close(name, checkpoint=keep)
                raise _HttpError(405, f"{method} not allowed on {path}")
            if len(parts) == 3 and parts[2] == "offer":
                self._require_method(method, "POST", path)
                request = self._json_body(body)
                if "features" not in request:
                    raise _HttpError(400, "offer body needs 'features'")
                accepted = await self._manager.offer(
                    name,
                    request["features"],
                    groups=request.get("groups"),
                    uids=request.get("uids"),
                )
                return 202, accepted
            if len(parts) == 3 and parts[2] == "solution":
                self._require_method(method, "GET", path)
                result = await self._manager.solution(name)
                return 200, solution_payload(result)
        raise _HttpError(404, f"unknown route {method} {path}")

    def _require_method(self, method: str, expected: str, path: str) -> None:
        """405 unless the request used the route's method."""
        if method != expected:
            raise _HttpError(405, f"{method} not allowed on {path}")

    def _json_body(self, body: bytes) -> Dict[str, Any]:
        """The request body as a JSON object, or a 400."""
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except ValueError as error:
            raise _HttpError(400, f"invalid JSON body ({error})") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "JSON body must be an object")
        return payload


async def _serve_until_signalled(
    config: ManagerConfig, host: str, port: int, announce: bool
) -> int:
    """Run the server until SIGTERM/SIGINT, then drain and exit."""
    manager = SessionManager(config)
    server = ServingServer(manager, host=host, port=port)
    await server.start()
    if announce:
        print(f"serving on http://{server.host}:{server.port}", flush=True)
        print(f"state dir: {config.state_dir}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-posix
            pass
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        checkpoints = await server.stop(drain=True)
        if announce:
            print(
                f"drained {len(checkpoints)} session(s) to {config.state_dir}",
                flush=True,
            )
    return 0


def run_server(
    config: ManagerConfig,
    host: str = "127.0.0.1",
    port: int = 0,
    announce: bool = True,
) -> int:
    """Blocking entry point of ``repro serve``; returns the exit code.

    Prints ``serving on http://host:port`` once the socket is bound (port
    ``0`` asks the OS for an ephemeral port — scripts parse the line), and
    runs until SIGTERM or SIGINT triggers the graceful drain.
    """
    try:
        return asyncio.run(_serve_until_signalled(config, host, port, announce))
    except KeyboardInterrupt:  # pragma: no cover - interactive ^C race
        print("interrupted", file=sys.stderr)
        return 130
