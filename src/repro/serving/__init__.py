"""Multi-tenant async serving layer.

Thousands of concurrent, checkpointable streaming sessions behind a
stdlib HTTP/JSON front end:

* :class:`SessionManager` — an asyncio manager owning named per-tenant
  sessions over any registry algorithm with session support.  Incoming
  offers are micro-batched per session (flushed on a max-batch or
  max-delay trigger), the number of *live* sessions is bounded by
  LRU-evicting idle ones to pickle checkpoints with transparent
  restore-on-touch, and per-session queues are bounded (backpressure).
* :class:`ServingServer` / :func:`run_server` — the HTTP/1.1 front end
  (``repro serve``) with graceful SIGTERM drain.
* :class:`ServerThread` / :class:`ServingClient` — in-process runtime
  and blocking client for tests, examples, and benchmarks.

Eviction is *exact*: a session evicted and restored mid-stream returns
byte-identical solutions (uids, diversity, distance counts) to one that
stayed resident, because pending offers are flushed before checkpointing
and the session checkpoint protocol captures full algorithm state.
"""

from repro.serving.client import ServingClient, ServingRequestError
from repro.serving.errors import (
    QueueFullError,
    ServingError,
    SessionExistsError,
    SessionNotFoundError,
    TooManySessionsError,
)
from repro.serving.manager import ManagerConfig, SessionManager
from repro.serving.runtime import ServerThread
from repro.serving.server import ServingServer, run_server, solution_payload

__all__ = [
    "ManagerConfig",
    "SessionManager",
    "ServingServer",
    "ServerThread",
    "ServingClient",
    "ServingRequestError",
    "run_server",
    "solution_payload",
    "ServingError",
    "SessionNotFoundError",
    "SessionExistsError",
    "TooManySessionsError",
    "QueueFullError",
]
