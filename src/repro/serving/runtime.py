"""In-process server runtime for tests, examples, and benchmarks.

:class:`ServerThread` runs a :class:`~repro.serving.server.ServingServer`
(plus its :class:`~repro.serving.manager.SessionManager`) on a dedicated
event loop in a background thread, so synchronous code — pytest, the
bench load generator, the example client — can talk to a *real* TCP
endpoint without managing asyncio itself.  Signal handlers are never
installed (they only work on the main thread); stop the server with
:meth:`ServerThread.stop`.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from repro.serving.manager import ManagerConfig, SessionManager
from repro.serving.server import ServingServer


class ServerThread:
    """A serving endpoint on a background thread; use as a context manager."""

    def __init__(
        self,
        config: ManagerConfig,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._config = config
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ServingServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._drain_result: Dict[str, str] = {}

    @property
    def port(self) -> int:
        """The bound TCP port (valid once :meth:`start` returned)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.port

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running endpoint."""
        return f"http://{self._host}:{self.port}"

    @property
    def manager(self) -> SessionManager:
        """The manager behind the endpoint (for white-box assertions)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.manager

    def submit(self, coro) -> "asyncio.Future":
        """Schedule a coroutine on the server loop; returns a concurrent future."""
        if self._loop is None:
            raise RuntimeError("server is not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def start(self) -> "ServerThread":
        """Start the thread and block until the socket is bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serving", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def stop(self, drain: bool = True) -> Dict[str, str]:
        """Stop serving; with ``drain`` every live session is checkpointed.

        Returns the name-to-checkpoint-path mapping of the drain (empty
        when ``drain=False`` or the server never started).
        """
        if self._loop is None or self._thread is None:
            return {}
        self._loop.call_soon_threadsafe(self._begin_stop, drain)
        self._stopped.wait()
        self._thread.join()
        self._thread = None
        self._loop = None
        return self._drain_result

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=False)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        """Thread body: own loop, bind, serve until :meth:`stop`."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested: "asyncio.Future" = self._loop.create_future()
        try:
            manager = SessionManager(self._config)
            self._server = ServingServer(manager, host=self._host, port=self._port)
            await self._server.start()
        except BaseException as error:  # noqa: BLE001 - reported to caller
            self._startup_error = error
            self._ready.set()
            self._stopped.set()
            return
        self._ready.set()
        drain = await self._stop_requested
        try:
            self._drain_result = await self._server.stop(drain=drain)
        finally:
            self._stopped.set()

    def _begin_stop(self, drain: bool) -> None:
        """Loop-side stop trigger (idempotent)."""
        if not self._stop_requested.done():
            self._stop_requested.set_result(drain)
