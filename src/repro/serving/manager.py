"""Asyncio session manager: thousands of named, checkpointable sessions.

The manager is the serving layer's core.  It owns a registry of named
per-tenant sessions (any registry algorithm with the ``sessions``
capability, through :func:`repro.open_session`) and adds the three things
a single in-process session lacks:

* **micro-batching** — incoming offers are queued per session and flushed
  into ``offer_rows`` calls when a batch fills (``max_batch`` rows) or a
  deadline passes (``flush_ms``), so the engine's measured batch-ingest
  speedup is realized even when every request carries a handful of rows
  (new sessions default to ``batch_size = max_batch`` when their
  algorithm supports batching);
* **bounded memory** — at most ``max_live`` sessions are resident; the
  least-recently-used ones are evicted to pickle checkpoints under
  ``state_dir`` (after flushing their queue, so nothing is lost) and
  transparently restored on the next touch.  Because session
  checkpoint/resume is byte-identical and ``offer_rows`` chunking is
  alignment-independent, an evicted-and-restored session produces
  solutions and distance counts identical to one that never left memory
  — the serving property tests pin this;
* **backpressure** — each session's queue is bounded (``max_queue``
  rows); an offer that would overflow it is rejected wholesale with
  :class:`~repro.serving.errors.QueueFullError` (HTTP 429 upstream).

Serving metrics (``repro.serving.*`` counters/gauges/histograms) feed the
process-wide :class:`~repro.obs.MetricsRegistry` directly — *not* gated
on tracing like the engine's run-boundary metrics, because the serving
layer is request-boundary code where one registry update per flush is
noise and an always-on ``/metrics`` endpoint is the point.  Spans
(``serving.flush``, ``serving.evict``, ``serving.restore``) stay gated
through :func:`repro.obs.span` as usual.

All ingestion and extraction runs synchronously on the event loop: the
engine is CPU-bound pure Python/NumPy, so handing it to a thread pool
would only add GIL contention.  Requests queue cheaply; the loop blocks
only while a flush or query actually computes.
"""

from __future__ import annotations

import asyncio
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro import obs
from repro.api.registry import get_algorithm, has_algorithm
from repro.api.session import SessionBase, resume
from repro.api.solve import open_session
from repro.core.result import RunResult
from repro.serving.errors import (
    QueueFullError,
    SessionExistsError,
    SessionNotFoundError,
    TooManySessionsError,
)
from repro.utils.errors import InvalidParameterError

#: Valid session names: path-safe, no separators, bounded length.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Metric-name prefix of every serving instrument.
METRIC_PREFIX = "repro.serving"


@dataclass
class ManagerConfig:
    """Tunables of one :class:`SessionManager`.

    Attributes
    ----------
    state_dir:
        Directory for eviction/drain checkpoints (created on first use).
    max_sessions:
        Total named sessions the manager admits (live + evicted).
    max_live:
        Sessions resident in memory before LRU eviction kicks in.
    max_batch:
        Queued rows that force an immediate flush; also the default
        ``batch_size`` option of new batch-capable sessions.
    flush_ms:
        Deadline (milliseconds) before a partial queue flushes anyway.
    max_queue:
        Per-session bound on queued rows; offers beyond it are rejected
        (backpressure, HTTP 429 upstream).
    default_algorithm:
        Algorithm used when a create request names none.
    """

    state_dir: Path
    max_sessions: int = 10_000
    max_live: int = 256
    max_batch: int = 256
    flush_ms: float = 20.0
    max_queue: int = 8_192
    default_algorithm: str = "SFDM2"

    def __post_init__(self) -> None:
        self.state_dir = Path(self.state_dir)
        for name in ("max_sessions", "max_live", "max_batch", "max_queue"):
            if int(getattr(self, name)) < 1:
                raise InvalidParameterError(
                    f"{name} must be a positive integer, got {getattr(self, name)}"
                )
        if self.flush_ms < 0:
            raise InvalidParameterError(
                f"flush_ms must be non-negative, got {self.flush_ms}"
            )


class _Entry:
    """One named session: live object or checkpoint, plus its offer queue."""

    __slots__ = (
        "name",
        "session",
        "checkpoint_path",
        "pending",
        "pending_rows",
        "flush_handle",
        "lock",
        "offered_rows",
    )

    def __init__(self, name: str, session: SessionBase, checkpoint_path: Path) -> None:
        self.name = name
        self.session: Optional[SessionBase] = session
        self.checkpoint_path = checkpoint_path
        #: Queued offers, oldest first: ``(features, groups, uids)`` tuples.
        self.pending: List[tuple] = []
        self.pending_rows = 0
        self.flush_handle: Optional[asyncio.TimerHandle] = None
        self.lock = asyncio.Lock()
        self.offered_rows = 0

    @property
    def live(self) -> bool:
        """Whether the session object is resident in memory."""
        return self.session is not None


class SessionManager:
    """Owns named sessions: create/offer/solution/close, LRU evict, drain."""

    def __init__(self, config: ManagerConfig) -> None:
        self._config = config
        self._config.state_dir.mkdir(parents=True, exist_ok=True)
        self._entries: Dict[str, _Entry] = {}
        #: LRU order over *live* sessions (oldest first).
        self._live: Dict[str, None] = {}
        self._next_auto = 0
        self._flush_tasks: set = set()
        self._draining = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ManagerConfig:
        """The manager's (immutable by convention) configuration."""
        return self._config

    def __len__(self) -> int:
        """Total named sessions (live + evicted)."""
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        """Whether a session with this name is registered."""
        return name in self._entries

    @property
    def live_count(self) -> int:
        """Sessions currently resident in memory."""
        return len(self._live)

    def names(self) -> List[str]:
        """All registered session names, creation-ordered."""
        return list(self._entries)

    def is_live(self, name: str) -> bool:
        """Whether the named session is resident (False = evicted)."""
        return self._require(name).live

    def pending_rows(self, name: str) -> int:
        """Rows queued (accepted, not yet ingested) for the named session."""
        return self._require(name).pending_rows

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot for ``/healthz`` and tests."""
        return {
            "sessions": len(self._entries),
            "live": len(self._live),
            "evicted": len(self._entries) - len(self._live),
            "queued_rows": sum(e.pending_rows for e in self._entries.values()),
            "max_sessions": self._config.max_sessions,
            "max_live": self._config.max_live,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The process metrics registry with the serving gauges refreshed."""
        self._refresh_gauges()
        return obs.get_metrics().snapshot()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def create(self, name: Optional[str] = None, **session_kwargs: Any) -> str:
        """Register a new named session and return its name.

        ``session_kwargs`` are passed to :func:`repro.open_session`
        (``k``, ``groups``, ``algorithm``, ``epsilon``, ``fairness``,
        ``metric``, ``options``, ...).  Batch-capable algorithms default
        to ``batch_size = max_batch`` so the flush path runs vectorized.
        """
        if len(self._entries) >= self._config.max_sessions:
            raise TooManySessionsError(self._config.max_sessions)
        if name is None:
            name = self._generate_name()
        elif not _NAME_PATTERN.match(str(name)):
            raise InvalidParameterError(
                f"session names must match {_NAME_PATTERN.pattern}, got {name!r}"
            )
        if name in self._entries:
            raise SessionExistsError(name)

        kwargs = dict(session_kwargs)
        if isinstance(kwargs.get("groups"), int):
            # JSON convenience: a group *count* m means labels 0..m-1.
            kwargs["groups"] = list(range(kwargs["groups"]))
        algorithm = kwargs.setdefault("algorithm", self._config.default_algorithm)
        options = dict(kwargs.pop("options", None) or {})
        if (
            self._config.max_batch > 1
            and "batch_size" not in options
            and isinstance(algorithm, str)
            and has_algorithm(algorithm)
            and "batch_size" in get_algorithm(algorithm).capabilities.options
        ):
            options["batch_size"] = self._config.max_batch
        session = open_session(options=options, **kwargs)

        entry = _Entry(name, session, self._config.state_dir / f"{name}.ckpt")
        self._entries[name] = entry
        self._live[name] = None
        self._count("sessions.created")
        obs.event("serving.create", session=name, algorithm=session.algorithm_name)
        await self._enforce_live_bound(exclude=name)
        self._refresh_gauges()
        return name

    async def close(self, name: str, checkpoint: bool = False) -> Dict[str, Any]:
        """Remove the named session; optionally checkpoint it first.

        Without ``checkpoint`` the session's state (and any prior
        eviction checkpoint) is discarded; with it, queued offers are
        flushed and a final checkpoint is left under ``state_dir``.
        """
        entry = self._require(name)
        async with entry.lock:
            self._cancel_timer(entry)
            if checkpoint:
                self._ensure_live_locked(entry)
                self._flush_locked(entry, reason="close")
                entry.session.checkpoint(entry.checkpoint_path)
            elif entry.checkpoint_path.exists():
                entry.checkpoint_path.unlink()
            self._entries.pop(name, None)
            self._live.pop(name, None)
        self._count("sessions.closed")
        self._refresh_gauges()
        return {
            "name": name,
            "checkpoint": str(entry.checkpoint_path) if checkpoint else None,
        }

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    async def offer(
        self,
        name: str,
        features: Any,
        groups: Any = None,
        uids: Any = None,
    ) -> Dict[str, int]:
        """Queue feature rows for the named session (micro-batched ingest).

        Returns ``{"accepted": n, "pending": rows-now-queued}``.  The rows
        are ingested on the next flush — immediately when the queue
        reaches ``max_batch``, otherwise within ``flush_ms``.

        Raises
        ------
        QueueFullError
            If accepting the rows would overflow the session's bounded
            queue; nothing is queued in that case (all-or-nothing).
        """
        entry = self._require(name)
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise InvalidParameterError(
                f"features must be a non-empty (n, d) matrix or a single row, "
                f"got shape {matrix.shape}"
            )
        rows = matrix.shape[0]
        for label, values in (("groups", groups), ("uids", uids)):
            if values is not None and len(np.asarray(values).reshape(-1)) != rows:
                raise InvalidParameterError(
                    f"got {rows} feature rows but "
                    f"{len(np.asarray(values).reshape(-1))} {label}"
                )
        if entry.pending_rows + rows > self._config.max_queue:
            self._count("rejected_rows", rows)
            raise QueueFullError(name, entry.pending_rows, self._config.max_queue)

        entry.pending.append((matrix, groups, uids))
        entry.pending_rows += rows
        entry.offered_rows += rows
        self._count("offered_rows", rows)
        if entry.pending_rows >= self._config.max_batch:
            await self._flush(entry, reason="max-batch")
        elif entry.flush_handle is None:
            loop = asyncio.get_running_loop()
            entry.flush_handle = loop.call_later(
                self._config.flush_ms / 1000.0, self._on_flush_deadline, entry.name
            )
        self._refresh_gauges()
        return {"accepted": rows, "pending": entry.pending_rows}

    async def flush(self, name: str) -> int:
        """Force-flush the named session's queue; returns rows ingested."""
        return await self._flush(self._require(name), reason="explicit")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def solution(self, name: str) -> RunResult:
        """Flush the queue, then the session's current solution (pure query)."""
        entry = self._require(name)
        async with entry.lock:
            self._ensure_live_locked(entry)
            self._flush_locked(entry, reason="solution")
            result = entry.session.solution()
        self._touch(entry)
        await self._enforce_live_bound(exclude=entry.name)
        return result

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> Dict[str, str]:
        """Flush every queue and checkpoint every session (SIGTERM path).

        Evicted sessions with an empty queue already have a current
        checkpoint on disk and are left untouched.  Returns a mapping of
        session name to checkpoint path.
        """
        self._draining = True
        checkpoints: Dict[str, str] = {}
        with obs.span("serving.drain", sessions=len(self._entries)):
            for entry in list(self._entries.values()):
                async with entry.lock:
                    self._cancel_timer(entry)
                    if entry.live or entry.pending_rows:
                        self._ensure_live_locked(entry)
                        self._flush_locked(entry, reason="drain")
                        entry.session.checkpoint(entry.checkpoint_path)
                    checkpoints[entry.name] = str(entry.checkpoint_path)
        self._count("drained_sessions", len(checkpoints))
        self._refresh_gauges()
        return checkpoints

    async def shutdown(self) -> None:
        """Cancel timers and drop all state without checkpointing."""
        for entry in self._entries.values():
            self._cancel_timer(entry)
        for task in list(self._flush_tasks):
            task.cancel()
        self._entries.clear()
        self._live.clear()
        self._refresh_gauges()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require(self, name: str) -> _Entry:
        """The entry for ``name``, or :class:`SessionNotFoundError`."""
        entry = self._entries.get(name)
        if entry is None:
            raise SessionNotFoundError(name)
        return entry

    def _generate_name(self) -> str:
        """A fresh auto-assigned session name (``s-<counter>``)."""
        while True:
            self._next_auto += 1
            name = f"s-{self._next_auto:06d}"
            if name not in self._entries:
                return name

    def _on_flush_deadline(self, name: str) -> None:
        """Timer callback: flush the (possibly partial) queue as a task."""
        entry = self._entries.get(name)
        if entry is None or self._draining:
            return
        entry.flush_handle = None
        task = asyncio.get_running_loop().create_task(
            self._flush(entry, reason="deadline")
        )
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    def _cancel_timer(self, entry: _Entry) -> None:
        """Drop the entry's pending flush deadline, if any."""
        if entry.flush_handle is not None:
            entry.flush_handle.cancel()
            entry.flush_handle = None

    async def _flush(self, entry: _Entry, reason: str) -> int:
        """Ingest the entry's queued offers (restoring the session first)."""
        async with entry.lock:
            self._cancel_timer(entry)
            if not entry.pending:
                return 0
            self._ensure_live_locked(entry)
            rows = self._flush_locked(entry, reason=reason)
        self._touch(entry)
        await self._enforce_live_bound(exclude=entry.name)
        self._refresh_gauges()
        return rows

    def _flush_locked(self, entry: _Entry, reason: str) -> int:
        """Feed every queued payload to the live session, oldest first."""
        if not entry.pending:
            return 0
        payloads, entry.pending = entry.pending, []
        rows = entry.pending_rows
        entry.pending_rows = 0
        with obs.span("serving.flush", session=entry.name, rows=rows, reason=reason):
            for features, groups, uids in payloads:
                entry.session.offer_rows(features, groups=groups, uids=uids)
        self._count("flushes")
        self._observe("flush.rows", rows)
        return rows

    def _ensure_live_locked(self, entry: _Entry) -> None:
        """Restore the entry's session from its checkpoint if evicted."""
        if entry.session is not None:
            return
        with obs.span("serving.restore", session=entry.name):
            entry.session = resume(entry.checkpoint_path)
        self._live[entry.name] = None
        self._count("sessions.restored")

    def _touch(self, entry: _Entry) -> None:
        """Mark the entry most-recently-used in the live LRU order."""
        if entry.name in self._live:
            self._live.pop(entry.name)
            self._live[entry.name] = None

    async def _enforce_live_bound(self, exclude: str) -> None:
        """LRU-evict live sessions (never ``exclude``) beyond ``max_live``."""
        while len(self._live) > self._config.max_live:
            victim_name = next(
                (name for name in self._live if name != exclude), None
            )
            if victim_name is None:
                return
            victim = self._entries[victim_name]
            async with victim.lock:
                if victim.session is None:
                    self._live.pop(victim_name, None)
                    continue
                with obs.span(
                    "serving.evict",
                    session=victim_name,
                    offered=victim.session.elements_offered,
                ):
                    self._cancel_timer(victim)
                    self._flush_locked(victim, reason="evict")
                    victim.session.checkpoint(victim.checkpoint_path)
                    victim.session = None
                self._live.pop(victim_name, None)
            self._count("sessions.evicted")

    # ------------------------------------------------------------------
    # Metrics plumbing (direct registry feed, never gated on tracing)
    # ------------------------------------------------------------------
    def _count(self, suffix: str, amount: int = 1) -> None:
        """Increment the serving counter ``repro.serving.<suffix>``."""
        obs.get_metrics().counter(f"{METRIC_PREFIX}.{suffix}").inc(amount)

    def _observe(self, suffix: str, value: float) -> None:
        """Fold one observation into the serving histogram ``<suffix>``."""
        obs.get_metrics().histogram(f"{METRIC_PREFIX}.{suffix}").observe(value)

    def _refresh_gauges(self) -> None:
        """Recompute the point-in-time serving gauges."""
        metrics = obs.get_metrics()
        metrics.gauge(f"{METRIC_PREFIX}.sessions.active").set(len(self._entries))
        metrics.gauge(f"{METRIC_PREFIX}.sessions.live").set(len(self._live))
        metrics.gauge(f"{METRIC_PREFIX}.queue.depth").set(
            sum(e.pending_rows for e in self._entries.values())
        )
