"""Experiment harness: run algorithm suites over datasets and collect records.

The harness mirrors the paper's experimental protocol:

* every run is repeated over several random permutations of the dataset and
  the measures are averaged;
* streaming algorithms consume a one-pass :class:`DataStream`;
* offline baselines receive the full element list (they keep everything in
  memory, which is reflected in their stored-element accounting);
* the per-run records carry diversity, timings, and space so each
  table/figure script only needs to select and format columns.

All dispatch goes through the :mod:`repro.api.registry`: a harness
:class:`AlgorithmSpec` is a registry entry plus a frozen, eagerly-validated
option set, and the suite builders (:func:`streaming_algorithms`,
:func:`offline_algorithms`, :func:`extended_algorithms`) are registry
queries — there are no per-family runner closures here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.api.registry import RegisteredAlgorithm, RunContext, get_algorithm
from repro.core.result import RunResult
from repro.datasets.spec import DatasetSpec
from repro.fairness.constraints import (
    FairnessConstraint,
    equal_representation,
    proportional_representation,
)
from repro.utils.errors import InvalidParameterError, ReproError
from repro.utils.rng import derive_seed

#: An algorithm runner takes (dataset, constraint, epsilon, permutation seed)
#: and returns a RunResult.
AlgorithmRunner = Callable[[DatasetSpec, FairnessConstraint, float, Optional[int]], RunResult]


@dataclass
class AlgorithmSpec:
    """A named algorithm plus the runner the harness invokes.

    Specs are normally built from the registry with :func:`algorithm_spec`;
    the ``runner`` field remains a plain callable so tests and downstream
    code can still inject custom algorithms without registering them.
    """

    name: str
    runner: AlgorithmRunner
    #: Whether the algorithm is a streaming algorithm (affects which seeds
    #: the harness varies — offline algorithms are order-insensitive).
    streaming: bool = True
    #: Maximum number of groups supported (None = unlimited).
    max_groups: Optional[int] = None

    def supports(self, constraint: FairnessConstraint) -> bool:
        """Whether this algorithm can run under ``constraint``."""
        return self.max_groups is None or constraint.num_groups <= self.max_groups


def _registry_runner(
    entry: RegisteredAlgorithm, options: Dict[str, Any]
) -> AlgorithmRunner:
    """The one generic runner: dispatch a harness cell through the registry."""

    def _run(
        dataset: DatasetSpec,
        constraint: FairnessConstraint,
        epsilon: float,
        seed: Optional[int],
    ) -> RunResult:
        context = RunContext.from_dataset(
            dataset, constraint, epsilon=epsilon, seed=seed, options=options
        )
        return entry.run(context)

    return _run


def algorithm_spec(name: str, **options: Any) -> AlgorithmSpec:
    """A harness :class:`AlgorithmSpec` for the registered algorithm ``name``.

    Options are validated eagerly against the registry entry's declared
    capabilities (mirroring the historical harness convention): a bad
    shard count, backend name, batch size, or unknown option raises
    :class:`InvalidParameterError` here, before any run starts, instead of
    being absorbed into per-repetition failure accounting.
    """
    entry = get_algorithm(name)
    cleaned = entry.validate_options(options)
    return AlgorithmSpec(
        name=entry.name,
        runner=_registry_runner(entry, cleaned),
        streaming=entry.capabilities.streaming,
        max_groups=entry.capabilities.max_groups,
    )


def streaming_algorithms(
    batch_size: Optional[int] = None, index: Optional[str] = None
) -> List[AlgorithmSpec]:
    """The paper's proposed streaming algorithms (a registry query).

    Parameters
    ----------
    batch_size:
        When set, SFDM1 and SFDM2 consume the stream through the vectorized
        batch ingestion path in chunks of this size; ``None`` (default)
        keeps the element-at-a-time updates.  Validated eagerly, before any
        run starts.
    index:
        Optional spatial-index kind (``"kd"``/``"ball"``/``"auto"``) for
        the candidate screens; solutions are identical, counted distance
        evaluations drop.
    """
    return [
        algorithm_spec("SFDM1", batch_size=batch_size, index=index),
        algorithm_spec("SFDM2", batch_size=batch_size, index=index),
    ]


def offline_algorithms(include_fair_gmm: bool = False) -> List[AlgorithmSpec]:
    """The offline comparison algorithms (GMM, FairSwap, FairFlow[, FairGMM])."""
    specs = [
        algorithm_spec("GMM"),
        algorithm_spec("FairSwap"),
        algorithm_spec("FairFlow"),
    ]
    if include_fair_gmm:
        specs.append(algorithm_spec("FairGMM"))
    return specs


def parallel_algorithm(
    shards=4,
    backend: str = "serial",
    strategy: str = "stratified",
    summarizer: str = "gmm",
    transport: str = "auto",
) -> AlgorithmSpec:
    """The sharded ParallelFDM engine as a harness algorithm.

    ``shards`` and ``backend`` accept ``"auto"`` to defer the decision to
    the execution planner.  Parameters are validated eagerly through the
    registry entry: an invalid shard count, backend name, strategy,
    summarizer, or transport raises :class:`InvalidParameterError` here,
    before any run starts.
    """
    return algorithm_spec(
        "ParallelFDM",
        shards=shards,
        backend=backend,
        strategy=strategy,
        summarizer=summarizer,
        transport=transport,
    )


def coreset_algorithm(num_parts: int = 4, refine_with_swap: bool = True) -> AlgorithmSpec:
    """The sequential composable-coreset route as a harness algorithm."""
    return algorithm_spec(
        "Coreset", num_parts=num_parts, refine_with_swap=refine_with_swap
    )


def window_algorithm(
    window: Optional[int] = None, blocks: int = 8, algorithm: str = "WindowFDM"
) -> AlgorithmSpec:
    """A windowed algorithm as a harness algorithm.

    With the default ``window=None`` the window spans the whole stream (no
    element ever expires), which exercises the block-summary machinery as a
    low-memory one-pass summarizer; pass an explicit window length for the
    genuine sliding-window regime.

    Parameters
    ----------
    algorithm:
        Which windowed implementation to run: the checkpointed baseline
        (``"WindowFDM"``, default) or the incremental
        ``"SlidingWindowFDM"``.
    """
    return algorithm_spec(algorithm, window=window, blocks=blocks)


def sliding_window_algorithm(
    window: Optional[int] = None, blocks: int = 8
) -> AlgorithmSpec:
    """The incremental sliding-window algorithm as a harness algorithm."""
    return window_algorithm(window=window, blocks=blocks, algorithm="SlidingWindowFDM")


def mwu_algorithm(iterations: int = 32, rounds: int = 8) -> AlgorithmSpec:
    """The MWU + LP-rounding quality oracle as a harness algorithm.

    Options are validated eagerly through the registry entry; the guess
    ladder's ``epsilon`` and the rounding ``seed`` are problem-level
    parameters and come from the :class:`ExperimentConfig`.
    """
    return algorithm_spec("MWU", iterations=iterations, rounds=rounds)


def extended_algorithms(
    shards: int = 4,
    backend: str = "serial",
    strategy: str = "stratified",
    window: Optional[int] = None,
    blocks: int = 8,
) -> List[AlgorithmSpec]:
    """The algorithms beyond the paper's suite.

    Coreset, the two windowed algorithms (checkpointed baseline and
    incremental sliding), ParallelFDM, and the MWU quality oracle.  These
    are kept out of :func:`default_algorithms` so the comparison tables
    keep the paper's Table II shape unless explicitly extended.
    """
    return [
        coreset_algorithm(),
        window_algorithm(window=window, blocks=blocks),
        sliding_window_algorithm(window=window, blocks=blocks),
        parallel_algorithm(shards=shards, backend=backend, strategy=strategy),
        mwu_algorithm(),
    ]


def default_algorithms(
    include_fair_gmm: bool = False,
    batch_size: Optional[int] = None,
    index: Optional[str] = None,
) -> List[AlgorithmSpec]:
    """Offline baselines followed by the streaming algorithms (Table II order).

    Parameters
    ----------
    include_fair_gmm:
        Also include the enumeration-based FairGMM baseline (small k/m only).
    batch_size:
        Forwarded to :func:`streaming_algorithms` to enable the vectorized
        batch ingestion path for SFDM1/SFDM2.
    index:
        Forwarded to :func:`streaming_algorithms` to route the candidate
        screens through the spatial-index layer.
    """
    return offline_algorithms(include_fair_gmm=include_fair_gmm) + streaming_algorithms(
        batch_size=batch_size, index=index
    )


@dataclass
class ExperimentConfig:
    """Configuration of one experiment cell (dataset x constraint x parameters)."""

    dataset: DatasetSpec
    k: int
    epsilon: float = 0.1
    fairness: str = "equal"
    repetitions: int = 3
    base_seed: int = 42
    constraint: Optional[FairnessConstraint] = None

    def resolve_constraint(self) -> FairnessConstraint:
        """The fairness constraint for this cell (built from ``fairness`` if absent)."""
        if self.constraint is not None:
            return self.constraint
        group_sizes = self.dataset.group_sizes()
        if self.fairness == "equal":
            return equal_representation(self.k, list(group_sizes.keys()))
        if self.fairness == "proportional":
            return proportional_representation(self.k, group_sizes)
        raise InvalidParameterError(
            f"fairness must be 'equal' or 'proportional', got {self.fairness!r}"
        )


@dataclass
class ExperimentRecord:
    """Averaged measurements of one algorithm on one experiment cell."""

    dataset: str
    algorithm: str
    k: int
    m: int
    epsilon: float
    fairness: str
    diversity: float
    total_seconds: float
    stream_seconds: float
    postprocess_seconds: float
    stored_elements: float
    repetitions: int
    failures: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary representation (used for CSV and table rows)."""
        data = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "k": self.k,
            "m": self.m,
            "epsilon": self.epsilon,
            "fairness": self.fairness,
            "diversity": self.diversity,
            "total_seconds": self.total_seconds,
            "stream_seconds": self.stream_seconds,
            "postprocess_seconds": self.postprocess_seconds,
            "stored_elements": self.stored_elements,
            "repetitions": self.repetitions,
            "failures": self.failures,
        }
        data.update(self.extra)
        return data


def run_algorithm(
    spec: AlgorithmSpec, config: ExperimentConfig
) -> ExperimentRecord:
    """Run one algorithm on one experiment cell, averaged over permutations.

    Offline algorithms are order-insensitive, so they are run once;
    streaming algorithms are run ``config.repetitions`` times over different
    stream permutations (matching the paper's protocol of averaging over ten
    permutations, with a smaller default for quick local runs).
    """
    constraint = config.resolve_constraint()
    if not spec.supports(constraint):
        raise InvalidParameterError(
            f"{spec.name} does not support m={constraint.num_groups} groups"
        )
    repetitions = config.repetitions if spec.streaming else 1
    diversities: List[float] = []
    total_seconds: List[float] = []
    stream_seconds: List[float] = []
    post_seconds: List[float] = []
    stored: List[float] = []
    failures = 0
    for repetition in range(repetitions):
        seed = derive_seed(config.base_seed, repetition)
        try:
            result = spec.runner(config.dataset, constraint, config.epsilon, seed)
        except ReproError:
            failures += 1
            continue
        diversities.append(result.diversity)
        total_seconds.append(result.stats.total_seconds)
        stream_seconds.append(result.stats.stream_seconds)
        post_seconds.append(result.stats.postprocess_seconds)
        stored.append(float(result.stats.peak_stored_elements))

    def _mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return ExperimentRecord(
        dataset=config.dataset.name,
        algorithm=spec.name,
        k=config.k,
        m=constraint.num_groups,
        epsilon=config.epsilon,
        fairness=config.fairness,
        diversity=_mean(diversities),
        total_seconds=_mean(total_seconds),
        stream_seconds=_mean(stream_seconds),
        postprocess_seconds=_mean(post_seconds),
        stored_elements=_mean(stored),
        repetitions=repetitions,
        failures=failures,
    )


def run_experiment(
    configs: Sequence[ExperimentConfig],
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
    skip_unsupported: bool = True,
) -> List[ExperimentRecord]:
    """Run a suite of algorithms over a list of experiment cells.

    Parameters
    ----------
    configs:
        The experiment cells (dataset x parameters).
    algorithms:
        Algorithm suite; defaults to :func:`default_algorithms`.
    skip_unsupported:
        When ``True`` (default) algorithms that cannot handle a cell's group
        count (e.g. SFDM1 and FairSwap for m > 2) are skipped silently, as
        in the paper's Table II.
    """
    algorithms = list(algorithms) if algorithms is not None else default_algorithms()
    records: List[ExperimentRecord] = []
    for config in configs:
        constraint = config.resolve_constraint()
        for spec in algorithms:
            if not spec.supports(constraint):
                if skip_unsupported:
                    continue
                raise InvalidParameterError(
                    f"{spec.name} does not support m={constraint.num_groups} groups"
                )
            records.append(run_algorithm(spec, config))
    return records
