"""Experiment harness: run algorithm suites over datasets and collect records.

The harness mirrors the paper's experimental protocol:

* every run is repeated over several random permutations of the dataset and
  the measures are averaged;
* streaming algorithms consume a one-pass :class:`DataStream`;
* offline baselines receive the full element list (they keep everything in
  memory, which is reflected in their stored-element accounting);
* the per-run records carry diversity, timings, and space so each
  table/figure script only needs to select and format columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.fair_flow import fair_flow
from repro.baselines.fair_gmm import fair_gmm
from repro.baselines.fair_swap import fair_swap
from repro.baselines.gmm import gmm
from repro.core.coreset import coreset_fair_diversity
from repro.core.result import RunResult
from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.datasets.spec import DatasetSpec
from repro.fairness.constraints import (
    FairnessConstraint,
    equal_representation,
    proportional_representation,
)
from repro.parallel.backends import resolve_backend
from repro.parallel.driver import ParallelFDM
from repro.parallel.planner import ShardPlanner
from repro.parallel.summarize import resolve_summarizer
from repro.streaming.stats import StreamStats
from repro.streaming.window import CheckpointedWindowFDM
from repro.utils.errors import InvalidParameterError, ReproError
from repro.utils.rng import derive_seed
from repro.utils.timer import Timer
from repro.utils.validation import require_positive_int

#: An algorithm runner takes (dataset, constraint, epsilon, permutation seed)
#: and returns a RunResult.
AlgorithmRunner = Callable[[DatasetSpec, FairnessConstraint, float, Optional[int]], RunResult]


@dataclass
class AlgorithmSpec:
    """A named algorithm plus the runner closure the harness invokes."""

    name: str
    runner: AlgorithmRunner
    #: Whether the algorithm is a streaming algorithm (affects which seeds
    #: the harness varies — offline algorithms are order-insensitive).
    streaming: bool = True
    #: Maximum number of groups supported (None = unlimited).
    max_groups: Optional[int] = None

    def supports(self, constraint: FairnessConstraint) -> bool:
        """Whether this algorithm can run under ``constraint``."""
        return self.max_groups is None or constraint.num_groups <= self.max_groups


def _make_streaming_runner(algorithm_class, batch_size: Optional[int]) -> AlgorithmRunner:
    """Runner closure for a streaming algorithm with a fixed ``batch_size``."""

    def _run(
        dataset: DatasetSpec, constraint: FairnessConstraint, epsilon: float, seed: Optional[int]
    ) -> RunResult:
        algorithm = algorithm_class(
            metric=dataset.metric,
            constraint=constraint,
            epsilon=epsilon,
            batch_size=batch_size,
        )
        return algorithm.run(dataset.stream(seed=seed))

    return _run


#: Element-at-a-time default runners (kept for backwards compatibility with
#: callers that import them directly).
_run_sfdm1 = _make_streaming_runner(SFDM1, None)
_run_sfdm2 = _make_streaming_runner(SFDM2, None)


def _run_gmm(
    dataset: DatasetSpec, constraint: FairnessConstraint, epsilon: float, seed: Optional[int]
) -> RunResult:
    return gmm(dataset.elements, dataset.metric, constraint.total_size)


def _run_fair_swap(
    dataset: DatasetSpec, constraint: FairnessConstraint, epsilon: float, seed: Optional[int]
) -> RunResult:
    return fair_swap(dataset.elements, dataset.metric, constraint)


def _run_fair_flow(
    dataset: DatasetSpec, constraint: FairnessConstraint, epsilon: float, seed: Optional[int]
) -> RunResult:
    return fair_flow(dataset.elements, dataset.metric, constraint)


def _run_fair_gmm(
    dataset: DatasetSpec, constraint: FairnessConstraint, epsilon: float, seed: Optional[int]
) -> RunResult:
    return fair_gmm(dataset.elements, dataset.metric, constraint)


def streaming_algorithms(batch_size: Optional[int] = None) -> List[AlgorithmSpec]:
    """The paper's proposed streaming algorithms.

    Parameters
    ----------
    batch_size:
        When set, SFDM1 and SFDM2 consume the stream through the vectorized
        batch ingestion path in chunks of this size; ``None`` (default)
        keeps the element-at-a-time updates.  Validated here, before any
        run starts, so a bad value fails loudly instead of being absorbed
        into the harness's per-repetition failure accounting.
    """
    if batch_size is not None and batch_size < 1:
        raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
    return [
        AlgorithmSpec(
            name="SFDM1",
            runner=_make_streaming_runner(SFDM1, batch_size),
            streaming=True,
            max_groups=2,
        ),
        AlgorithmSpec(
            name="SFDM2", runner=_make_streaming_runner(SFDM2, batch_size), streaming=True
        ),
    ]


def offline_algorithms(include_fair_gmm: bool = False) -> List[AlgorithmSpec]:
    """The offline comparison algorithms (GMM, FairSwap, FairFlow[, FairGMM])."""
    specs = [
        AlgorithmSpec(name="GMM", runner=_run_gmm, streaming=False),
        AlgorithmSpec(name="FairSwap", runner=_run_fair_swap, streaming=False, max_groups=2),
        AlgorithmSpec(name="FairFlow", runner=_run_fair_flow, streaming=False),
    ]
    if include_fair_gmm:
        specs.append(
            AlgorithmSpec(name="FairGMM", runner=_run_fair_gmm, streaming=False, max_groups=5)
        )
    return specs


def parallel_algorithm(
    shards: int = 4,
    backend: str = "serial",
    strategy: str = "stratified",
    summarizer: str = "gmm",
) -> AlgorithmSpec:
    """The sharded :class:`ParallelFDM` engine as a harness algorithm.

    Parameters are validated eagerly (mirroring the ``batch_size``
    convention): an invalid shard count, backend name, strategy, or
    summarizer raises :class:`InvalidParameterError` here, before any run
    starts, instead of being absorbed into per-repetition failure
    accounting.
    """
    shards = require_positive_int(shards, "shards")
    resolve_backend(backend)
    ShardPlanner(shards, strategy=strategy)
    resolve_summarizer(summarizer)

    def _run(
        dataset: DatasetSpec, constraint: FairnessConstraint, epsilon: float, seed: Optional[int]
    ) -> RunResult:
        algorithm = ParallelFDM(
            metric=dataset.metric,
            constraint=constraint,
            shards=shards,
            backend=backend,
            strategy=strategy,
            summarizer=summarizer,
            seed=seed,
        )
        return algorithm.run(dataset.stream(seed=seed))

    return AlgorithmSpec(name="ParallelFDM", runner=_run, streaming=True)


def coreset_algorithm(num_parts: int = 4, refine_with_swap: bool = True) -> AlgorithmSpec:
    """The sequential composable-coreset route as a harness algorithm.

    Wraps :func:`repro.core.coreset.coreset_fair_diversity` — previously a
    library-only utility — with the timing and storage accounting the
    harness expects.  Like the other offline algorithms it holds the full
    dataset in memory, which the stored-element counters reflect.
    """
    num_parts = require_positive_int(num_parts, "num_parts")

    def _run(
        dataset: DatasetSpec, constraint: FairnessConstraint, epsilon: float, seed: Optional[int]
    ) -> RunResult:
        timer = Timer()
        with timer.measure():
            solution = coreset_fair_diversity(
                dataset.elements,
                dataset.metric,
                constraint,
                num_parts=num_parts,
                refine_with_swap=refine_with_swap,
            )
        stats = StreamStats(
            elements_processed=dataset.size,
            peak_stored_elements=dataset.size,
            final_stored_elements=dataset.size,
            stream_seconds=timer.elapsed,
        )
        return RunResult(
            algorithm="Coreset",
            solution=solution,
            stats=stats,
            params={"k": constraint.total_size, "num_parts": num_parts},
        )

    return AlgorithmSpec(name="Coreset", runner=_run, streaming=False)


def window_algorithm(window: Optional[int] = None, blocks: int = 8) -> AlgorithmSpec:
    """The checkpointed sliding-window algorithm as a harness algorithm.

    Wraps :class:`repro.streaming.window.CheckpointedWindowFDM`.  With the
    default ``window=None`` the window spans the whole stream (no element
    ever expires), which exercises the block-summary machinery as a
    low-memory one-pass summarizer; pass an explicit window length for the
    genuine sliding-window regime.
    """
    if window is not None:
        window = require_positive_int(window, "window")
    blocks = require_positive_int(blocks, "blocks")

    def _run(
        dataset: DatasetSpec, constraint: FairnessConstraint, epsilon: float, seed: Optional[int]
    ) -> RunResult:
        effective_window = window if window is not None else dataset.size
        algorithm = CheckpointedWindowFDM(
            metric=dataset.metric,
            constraint=constraint,
            window=effective_window,
            blocks=min(blocks, effective_window),
        )
        stats = StreamStats()
        stream_timer = Timer()
        with stream_timer.measure():
            for element in dataset.stream(seed=seed):
                algorithm.process(element)
                stats.elements_processed += 1
                stats.record_stored(algorithm.stored_elements)
        post_timer = Timer()
        with post_timer.measure():
            solution = algorithm.solution()
        stats.stream_seconds = stream_timer.elapsed
        stats.postprocess_seconds = post_timer.elapsed
        return RunResult(
            algorithm="WindowFDM",
            solution=solution,
            stats=stats,
            params={
                "k": constraint.total_size,
                "window": effective_window,
                "blocks": blocks,
            },
        )

    return AlgorithmSpec(name="WindowFDM", runner=_run, streaming=True)


def extended_algorithms(
    shards: int = 4,
    backend: str = "serial",
    strategy: str = "stratified",
) -> List[AlgorithmSpec]:
    """The algorithms beyond the paper's suite: Coreset, WindowFDM, ParallelFDM.

    These are kept out of :func:`default_algorithms` so the comparison
    tables keep the paper's Table II shape unless explicitly extended.
    """
    return [
        coreset_algorithm(),
        window_algorithm(),
        parallel_algorithm(shards=shards, backend=backend, strategy=strategy),
    ]


def default_algorithms(
    include_fair_gmm: bool = False, batch_size: Optional[int] = None
) -> List[AlgorithmSpec]:
    """Offline baselines followed by the streaming algorithms (Table II order).

    Parameters
    ----------
    include_fair_gmm:
        Also include the enumeration-based FairGMM baseline (small k/m only).
    batch_size:
        Forwarded to :func:`streaming_algorithms` to enable the vectorized
        batch ingestion path for SFDM1/SFDM2.
    """
    return offline_algorithms(include_fair_gmm=include_fair_gmm) + streaming_algorithms(
        batch_size=batch_size
    )


@dataclass
class ExperimentConfig:
    """Configuration of one experiment cell (dataset x constraint x parameters)."""

    dataset: DatasetSpec
    k: int
    epsilon: float = 0.1
    fairness: str = "equal"
    repetitions: int = 3
    base_seed: int = 42
    constraint: Optional[FairnessConstraint] = None

    def resolve_constraint(self) -> FairnessConstraint:
        """The fairness constraint for this cell (built from ``fairness`` if absent)."""
        if self.constraint is not None:
            return self.constraint
        group_sizes = self.dataset.group_sizes()
        if self.fairness == "equal":
            return equal_representation(self.k, list(group_sizes.keys()))
        if self.fairness == "proportional":
            return proportional_representation(self.k, group_sizes)
        raise InvalidParameterError(
            f"fairness must be 'equal' or 'proportional', got {self.fairness!r}"
        )


@dataclass
class ExperimentRecord:
    """Averaged measurements of one algorithm on one experiment cell."""

    dataset: str
    algorithm: str
    k: int
    m: int
    epsilon: float
    fairness: str
    diversity: float
    total_seconds: float
    stream_seconds: float
    postprocess_seconds: float
    stored_elements: float
    repetitions: int
    failures: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary representation (used for CSV and table rows)."""
        data = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "k": self.k,
            "m": self.m,
            "epsilon": self.epsilon,
            "fairness": self.fairness,
            "diversity": self.diversity,
            "total_seconds": self.total_seconds,
            "stream_seconds": self.stream_seconds,
            "postprocess_seconds": self.postprocess_seconds,
            "stored_elements": self.stored_elements,
            "repetitions": self.repetitions,
            "failures": self.failures,
        }
        data.update(self.extra)
        return data


def run_algorithm(
    spec: AlgorithmSpec, config: ExperimentConfig
) -> ExperimentRecord:
    """Run one algorithm on one experiment cell, averaged over permutations.

    Offline algorithms are order-insensitive, so they are run once;
    streaming algorithms are run ``config.repetitions`` times over different
    stream permutations (matching the paper's protocol of averaging over ten
    permutations, with a smaller default for quick local runs).
    """
    constraint = config.resolve_constraint()
    if not spec.supports(constraint):
        raise InvalidParameterError(
            f"{spec.name} does not support m={constraint.num_groups} groups"
        )
    repetitions = config.repetitions if spec.streaming else 1
    diversities: List[float] = []
    total_seconds: List[float] = []
    stream_seconds: List[float] = []
    post_seconds: List[float] = []
    stored: List[float] = []
    failures = 0
    for repetition in range(repetitions):
        seed = derive_seed(config.base_seed, repetition)
        try:
            result = spec.runner(config.dataset, constraint, config.epsilon, seed)
        except ReproError:
            failures += 1
            continue
        diversities.append(result.diversity)
        total_seconds.append(result.stats.total_seconds)
        stream_seconds.append(result.stats.stream_seconds)
        post_seconds.append(result.stats.postprocess_seconds)
        stored.append(float(result.stats.peak_stored_elements))

    def _mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return ExperimentRecord(
        dataset=config.dataset.name,
        algorithm=spec.name,
        k=config.k,
        m=constraint.num_groups,
        epsilon=config.epsilon,
        fairness=config.fairness,
        diversity=_mean(diversities),
        total_seconds=_mean(total_seconds),
        stream_seconds=_mean(stream_seconds),
        postprocess_seconds=_mean(post_seconds),
        stored_elements=_mean(stored),
        repetitions=repetitions,
        failures=failures,
    )


def run_experiment(
    configs: Sequence[ExperimentConfig],
    algorithms: Optional[Sequence[AlgorithmSpec]] = None,
    skip_unsupported: bool = True,
) -> List[ExperimentRecord]:
    """Run a suite of algorithms over a list of experiment cells.

    Parameters
    ----------
    configs:
        The experiment cells (dataset x parameters).
    algorithms:
        Algorithm suite; defaults to :func:`default_algorithms`.
    skip_unsupported:
        When ``True`` (default) algorithms that cannot handle a cell's group
        count (e.g. SFDM1 and FairSwap for m > 2) are skipped silently, as
        in the paper's Table II.
    """
    algorithms = list(algorithms) if algorithms is not None else default_algorithms()
    records: List[ExperimentRecord] = []
    for config in configs:
        constraint = config.resolve_constraint()
        for spec in algorithms:
            if not spec.supports(constraint):
                if skip_unsupported:
                    continue
                raise InvalidParameterError(
                    f"{spec.name} does not support m={constraint.num_groups} groups"
                )
            records.append(run_algorithm(spec, config))
    return records
