"""Experiment harness: measures, algorithm runners, and report formatting."""

from repro.evaluation.measures import (
    diversity,
    fairness_violation,
    optimum_upper_bound,
    approximation_ratio_lower_bound,
)
from repro.evaluation.harness import (
    AlgorithmSpec,
    ExperimentConfig,
    ExperimentRecord,
    run_algorithm,
    run_experiment,
    streaming_algorithms,
    offline_algorithms,
    default_algorithms,
)
from repro.evaluation.reporting import format_table, records_to_rows, write_csv
from repro.evaluation.plots import bar_chart, series_chart, sparkline

__all__ = [
    "bar_chart",
    "series_chart",
    "sparkline",
    "diversity",
    "fairness_violation",
    "optimum_upper_bound",
    "approximation_ratio_lower_bound",
    "AlgorithmSpec",
    "ExperimentConfig",
    "ExperimentRecord",
    "run_algorithm",
    "run_experiment",
    "streaming_algorithms",
    "offline_algorithms",
    "default_algorithms",
    "format_table",
    "records_to_rows",
    "write_csv",
]
