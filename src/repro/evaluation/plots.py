"""Plot-free chart rendering for experiment series (ASCII bars and sparklines).

The benchmark harness prints tables; for quick visual comparison in a
terminal (and in CI logs) it is convenient to also render bar charts of
per-algorithm values and sparklines of series such as "diversity vs k"
without any plotting dependency.  These helpers are intentionally tiny and
deterministic so they can be unit-tested exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.utils.errors import InvalidParameterError

#: Eight-level block characters used for sparklines, lowest to highest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a fixed-height unicode sparkline.

    Values are scaled to the series' own min/max; a constant series renders
    as a flat mid-level line.  Empty input raises.
    """
    values = [float(v) for v in values]
    if not values:
        raise InvalidParameterError("sparkline requires at least one value")
    low, high = min(values), max(values)
    if high == low:
        return _SPARK_LEVELS[3] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    value_format: str = ".3f",
    sort: bool = True,
) -> str:
    """Render a label → value mapping as a horizontal ASCII bar chart.

    Bars are scaled to the largest value; negative values are clamped to
    zero-length bars (the numeric value is still printed).
    """
    if not values:
        raise InvalidParameterError("bar_chart requires at least one entry")
    if width < 1:
        raise InvalidParameterError("width must be at least 1")
    items: List = list(values.items())
    if sort:
        items.sort(key=lambda pair: -pair[1])
    largest = max(max(value for _, value in items), 0.0)
    label_width = max(len(str(label)) for label, _ in items)
    lines = []
    for label, value in items:
        if largest > 0 and value > 0:
            bar = "#" * max(1, int(round(value / largest * width)))
        else:
            bar = ""
        lines.append(f"{str(label).ljust(label_width)} | {bar.ljust(width)} {format(value, value_format)}")
    return "\n".join(lines)


def series_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Optional[Sequence[object]] = None,
    value_format: str = ".3f",
) -> str:
    """Render several aligned series (e.g. diversity vs k per algorithm).

    Each row shows the series name, its sparkline, and its first/last value,
    which is usually all a reader needs to judge a trend in a log file.
    """
    if not series:
        raise InvalidParameterError("series_chart requires at least one series")
    name_width = max(len(str(name)) for name in series)
    lines = []
    if x_labels is not None:
        lines.append(f"{'':{name_width}}   x = {list(x_labels)}")
    for name, values in series.items():
        values = list(values)
        if not values:
            continue
        first = format(values[0], value_format)
        last = format(values[-1], value_format)
        lines.append(f"{str(name).ljust(name_width)}   {sparkline(values)}   {first} → {last}")
    return "\n".join(lines)
