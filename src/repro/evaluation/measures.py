"""Quality measures used by the evaluation.

The paper measures solution quality by the diversity value ``div(S)`` and
compares it against ``2 * div(GMM)``, an upper bound on the (unknown) fair
optimum OPT_f that follows from GMM being a 1/2-approximation of the
unconstrained optimum OPT >= OPT_f.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.gmm import gmm_elements
from repro.core.solution import diversity_of
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.data.element import Element


def diversity(elements: Sequence[Element], metric: Metric) -> float:
    """``div(S)`` — re-exported for convenience in experiment scripts."""
    return diversity_of(elements, metric)


def fairness_violation(elements: Sequence[Element], constraint: FairnessConstraint) -> int:
    """Total absolute quota violation of a solution (0 means perfectly fair)."""
    return constraint.violation(elements)


def optimum_upper_bound(elements: Sequence[Element], metric: Metric, k: int) -> float:
    """``2 * div(GMM_k)`` — an upper bound on OPT (and hence on OPT_f).

    GMM is a 1/2-approximation for unconstrained max-min diversity
    maximization, so ``OPT <= 2 * div(GMM)``; since every fair solution is
    also a feasible unconstrained solution, ``OPT_f <= OPT``.
    """
    selected = gmm_elements(elements, metric, k)
    return 2.0 * diversity_of(selected, metric)


def approximation_ratio_lower_bound(
    achieved_diversity: float,
    elements: Sequence[Element],
    metric: Metric,
    k: int,
) -> float:
    """A certified lower bound on the achieved approximation ratio.

    ``achieved / (2 * div(GMM))`` underestimates ``achieved / OPT_f`` — the
    paper uses it to argue the algorithms perform far better than their
    worst-case guarantees.
    """
    upper = optimum_upper_bound(elements, metric, k)
    if upper == 0:
        return 1.0
    return achieved_diversity / upper
