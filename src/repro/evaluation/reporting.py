"""Formatting experiment records as aligned-text tables and CSV files.

The benchmark scripts print the same rows the paper's tables and figures
report, so a reader can diff the shape of the reproduction against the
original numbers without any plotting dependencies.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.evaluation.harness import ExperimentRecord


def records_to_rows(
    records: Sequence[ExperimentRecord],
    columns: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Convert experiment records to plain dictionaries, optionally projected.

    Parameters
    ----------
    records:
        The records to convert.
    columns:
        If given, only these keys are kept (in this order).
    """
    rows = [record.as_dict() for record in records]
    if columns is None:
        return rows
    return [{column: row.get(column, "") for column in columns} for row in rows]


def _format_value(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Iterable[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Render dictionaries as an aligned monospaced table.

    Parameters
    ----------
    rows:
        The rows; all dictionaries should share the same keys.
    columns:
        Column order; defaults to the keys of the first row.
    float_format:
        ``format()`` specifier applied to float values.
    title:
        Optional title line printed above the table.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [
        [_format_value(row.get(column, ""), float_format) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered_row[i]) for rendered_row in rendered))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    lines.append(header)
    lines.append(separator)
    for rendered_row in rendered:
        lines.append(" | ".join(rendered_row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def write_csv(
    rows: Sequence[Dict[str, object]],
    path: Union[str, Path],
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write rows to a CSV file and return the path.

    Parameters
    ----------
    rows:
        The rows to write; all dictionaries should share the same keys.
    path:
        Target file path (parent directories are created).
    columns:
        Column order; defaults to the keys of the first row.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    if columns is None:
        columns = list(rows[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def load_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a JSONL trace written by :class:`repro.obs.JsonlSink`.

    Parameters
    ----------
    path:
        The trace file (one JSON record per line; blank lines skipped).

    Returns
    -------
    list of dict
        The span/event records in file (completion) order.
    """
    import json

    records: List[Dict[str, object]] = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


def summarize_trace(
    records: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Aggregate trace records into per-name rows for :func:`format_table`.

    One row per span/event name: occurrence count, total and mean span
    duration in milliseconds (zero for events), sorted by total duration
    descending — the quickest way to see where a traced run spent its
    time::

        rows = summarize_trace(load_trace("run.jsonl"))
        print(format_table(rows, columns=["name", "count", "total_ms", "mean_ms"]))
    """
    totals: Dict[str, Dict[str, float]] = {}
    for record in records:
        name = str(record.get("name"))
        entry = totals.setdefault(name, {"count": 0, "total_ms": 0.0})
        entry["count"] += 1
        if record.get("type") == "span":
            entry["total_ms"] += float(record.get("dur", 0.0)) * 1000.0
    rows = [
        {
            "name": name,
            "count": int(entry["count"]),
            "total_ms": entry["total_ms"],
            "mean_ms": entry["total_ms"] / entry["count"],
        }
        for name, entry in totals.items()
    ]
    rows.sort(key=lambda row: row["total_ms"], reverse=True)
    return rows
