"""Greedy max-sum dispersion, used only for the Figure 1 illustration.

The max-sum objective maximizes the *sum* of pairwise distances of the
selected subset.  The classic 1/2-approximation greedy repeatedly adds the
element with the largest total distance to the current selection.  The paper
uses it only to illustrate (Figure 1) why max-min is preferable when uniform
coverage matters; it is not part of the evaluated algorithms.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.result import RunResult
from repro.core.solution import Solution
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.timer import Timer
from repro.utils.validation import require_positive_int


def max_sum_greedy(elements: Sequence[Element], metric: Metric, k: int) -> RunResult:
    """Greedy 1/2-approximation for max-sum dispersion packaged as a run result."""
    k = require_positive_int(k, "k")
    counting = CountingMetric(metric)
    timer = Timer()
    with timer.measure():
        selected: List[Element] = []
        remaining = list(elements)
        if remaining:
            # Seed with the globally farthest pair, the standard greedy start.
            best_pair = None
            best_distance = -1.0
            for i in range(len(remaining)):
                for j in range(i + 1, len(remaining)):
                    d = counting.distance(remaining[i].vector, remaining[j].vector)
                    if d > best_distance:
                        best_distance = d
                        best_pair = (i, j)
            if best_pair is None:
                selected = remaining[:k]
            else:
                first, second = best_pair
                selected = [remaining[first], remaining[second]]
                chosen_uids = {element.uid for element in selected}
                while len(selected) < min(k, len(remaining)):
                    best_element = None
                    best_gain = -1.0
                    for element in remaining:
                        if element.uid in chosen_uids:
                            continue
                        gain = sum(
                            counting.distance(element.vector, member.vector)
                            for member in selected
                        )
                        if gain > best_gain:
                            best_gain = gain
                            best_element = element
                    if best_element is None:
                        break
                    selected.append(best_element)
                    chosen_uids.add(best_element.uid)
                selected = selected[:k]
    stats = StreamStats(
        elements_processed=len(elements),
        stream_distance_computations=counting.calls,
        peak_stored_elements=len(elements),
        final_stored_elements=len(elements),
        stream_seconds=timer.elapsed,
    )
    return RunResult(
        algorithm="MaxSumGreedy",
        solution=Solution(selected, counting),
        stats=stats,
        params={"k": k},
    )
