"""Greedy max-sum dispersion, used only for the Figure 1 illustration.

The max-sum objective maximizes the *sum* of pairwise distances of the
selected subset.  The classic 1/2-approximation greedy repeatedly adds the
element with the largest total distance to the current selection.  The paper
uses it only to illustrate (Figure 1) why max-min is preferable when uniform
coverage matters; it is not part of the evaluated algorithms.

Metrics with vectorized kernels run one ``pairwise`` evaluation up front and
drive both the farthest-pair seeding and the per-round gain updates from the
cached matrix; the selection sequence and the distance accounting are
identical to the scalar path (ties break on the first row-major maximum
either way, and gains accumulate in selection order on both paths).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.result import RunResult
from repro.core.solution import Solution
from repro.metrics.base import Metric, stack_vectors
from repro.metrics.cached import CountingMetric
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.timer import Timer
from repro.utils.validation import require_positive_int


def _select_batched(counting: CountingMetric, pool: Sequence[Element], k: int) -> List[Element]:
    """The greedy selection driven by one cached pairwise matrix.

    Seeds with the first row-major maximum of the upper triangle (the same
    pair the scalar double loop keeps, which only replaces on strictly
    greater distances), then grows the selection by the first maximum-gain
    element, with gains folded in selection order so the float sums match
    the scalar path's sequential accumulation.  The counter is charged the
    scalar path's exact evaluation counts — ``n(n-1)/2`` for the seeding
    sweep and ``(n - t) * t`` per round over the ``t`` selected — so the
    accounting stays engine-path independent.
    """
    n = len(pool)
    distances = counting.inner.pairwise(stack_vectors(pool))
    counting.charge(n * (n - 1) // 2)
    upper = np.triu_indices(n, k=1)
    flat = int(np.argmax(distances[upper]))
    rows = [int(upper[0][flat]), int(upper[1][flat])]
    chosen = np.zeros(n, dtype=bool)
    chosen[rows] = True
    gains = distances[:, rows[0]] + distances[:, rows[1]]
    while len(rows) < min(k, n):
        counting.charge((n - len(rows)) * len(rows))
        scored = np.where(chosen, -np.inf, gains)
        best = int(np.argmax(scored))
        rows.append(best)
        chosen[best] = True
        gains = gains + distances[:, best]
    return [pool[row] for row in rows[:k]]


def _select_scalar(counting: CountingMetric, pool: Sequence[Element], k: int) -> List[Element]:
    """The element-at-a-time greedy for metrics without batch kernels."""
    # Seed with the globally farthest pair, the standard greedy start.
    best_pair = None
    best_distance = -1.0
    for i in range(len(pool)):
        for j in range(i + 1, len(pool)):
            d = counting.distance(pool[i].vector, pool[j].vector)
            if d > best_distance:
                best_distance = d
                best_pair = (i, j)
    if best_pair is None:
        return list(pool[:k])
    first, second = best_pair
    selected = [pool[first], pool[second]]
    chosen_uids = {element.uid for element in selected}
    while len(selected) < min(k, len(pool)):
        best_element = None
        best_gain = -1.0
        for element in pool:
            if element.uid in chosen_uids:
                continue
            gain = sum(
                counting.distance(element.vector, member.vector)
                for member in selected
            )
            if gain > best_gain:
                best_gain = gain
                best_element = element
        if best_element is None:
            break
        selected.append(best_element)
        chosen_uids.add(best_element.uid)
    return selected[:k]


def max_sum_greedy(elements: Sequence[Element], metric: Metric, k: int) -> RunResult:
    """Greedy 1/2-approximation for max-sum dispersion packaged as a run result."""
    k = require_positive_int(k, "k")
    counting = CountingMetric(metric)
    timer = Timer()
    with timer.measure():
        remaining = list(elements)
        if len(remaining) < 2:
            selected = remaining[:k]
        elif counting.supports_batch:
            selected = _select_batched(counting, remaining, k)
        else:
            selected = _select_scalar(counting, remaining, k)
    stats = StreamStats(
        elements_processed=len(elements),
        stream_distance_computations=counting.calls,
        peak_stored_elements=len(elements),
        final_stored_elements=len(elements),
        stream_seconds=timer.elapsed,
    )
    return RunResult(
        algorithm="MaxSumGreedy",
        solution=Solution(selected, counting),
        stats=stats,
        params={"k": k},
    )
