"""FairGMM — the offline 1/5-approximation by enumeration, for small k and m.

FairGMM (Moumoulidou, McGregor, Meliou — ICDT 2021) runs GMM separately on
each group to obtain ``k`` well-separated candidates per group, then
enumerates every way of choosing ``k_i`` of them from group ``i`` and keeps
the feasible combination with the highest diversity.  The enumeration size
is ``prod_i C(k, k_i) = O(m^k)``, so the paper only evaluates it for
``k <= 10`` and ``m <= 5``; this implementation enforces a configurable cap
on the number of combinations for the same reason.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Sequence

from repro.baselines.gmm import gmm_elements
from repro.core.result import RunResult
from repro.core.solution import FairSolution, diversity_of
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.errors import InfeasibleConstraintError, InvalidParameterError
from repro.utils.timer import Timer


def _num_combinations(constraint: FairnessConstraint, pool_sizes: Dict[int, int]) -> int:
    """Total number of per-group candidate combinations FairGMM would enumerate."""
    total = 1
    for group in constraint.groups:
        total *= math.comb(pool_sizes.get(group, 0), constraint.quota(group))
    return total


def fair_gmm(
    elements: Sequence[Element],
    metric: Metric,
    constraint: FairnessConstraint,
    max_combinations: int = 2_000_000,
) -> RunResult:
    """Run FairGMM on ``elements`` and return a :class:`RunResult`.

    Raises
    ------
    InvalidParameterError
        If the enumeration would exceed ``max_combinations`` combinations —
        the same practical limitation that keeps FairGMM out of most of the
        paper's experiments.
    """
    group_sizes: Dict[int, int] = {}
    for element in elements:
        group_sizes[element.group] = group_sizes.get(element.group, 0) + 1
    constraint.validate_feasible(group_sizes)

    counting = CountingMetric(metric)
    timer = Timer()
    k = constraint.total_size
    with timer.measure():
        # Per-group candidate sets: GMM restricted to the group, k candidates each
        # (or fewer when the group is small).
        candidate_sets: Dict[int, List[Element]] = {}
        for group in constraint.groups:
            candidate_sets[group] = gmm_elements(
                elements, counting, k, restrict_group=group
            )
        pool_sizes = {group: len(candidates) for group, candidates in candidate_sets.items()}
        total_combinations = _num_combinations(constraint, pool_sizes)
        if total_combinations > max_combinations:
            raise InvalidParameterError(
                f"FairGMM would enumerate {total_combinations} combinations, which exceeds "
                f"the cap of {max_combinations}; use SFDM2 or FairFlow for this setting"
            )

        per_group_choices = [
            list(itertools.combinations(candidate_sets[group], constraint.quota(group)))
            for group in constraint.groups
        ]
        best_solution: List[Element] = []
        best_diversity = -1.0
        for combination in itertools.product(*per_group_choices):
            candidate = [element for part in combination for element in part]
            div = diversity_of(candidate, counting)
            if div > best_diversity:
                best_diversity = div
                best_solution = candidate

    stats = StreamStats(
        elements_processed=len(elements),
        stream_distance_computations=counting.calls,
        peak_stored_elements=len(elements),
        final_stored_elements=len(elements),
        stream_seconds=timer.elapsed,
    )
    stats.extra["combinations_enumerated"] = float(total_combinations)
    return RunResult(
        algorithm="FairGMM",
        solution=FairSolution(best_solution, counting, constraint),
        stats=stats,
        params={"k": k, "quotas": constraint.quotas},
    )
