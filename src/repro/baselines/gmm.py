"""GMM — the Gonzalez farthest-point greedy for max-min diversity maximization.

GMM (Gonzalez 1985; Ravi et al. 1994) starts from an arbitrary element and
repeatedly adds the element farthest from the current selection.  It is a
1/2-approximation for unconstrained max-min diversity maximization, the best
possible in polynomial time unless P = NP.  The paper uses ``2 * div(GMM)``
as an upper bound on the fair optimum OPT_f in all quality plots.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.result import RunResult
from repro.core.solution import Solution
from repro.data.store import ElementStore
from repro.index.tree import resolve_index_kind
from repro.metrics.base import Metric, stack_vectors
from repro.metrics.cached import CountingMetric
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.errors import InvalidParameterError
from repro.utils.timer import Timer
from repro.utils.validation import require_positive_int


def gmm_elements(
    elements: Union[Sequence[Element], ElementStore],
    metric: Metric,
    k: int,
    start_index: int = 0,
    restrict_group: Optional[int] = None,
    index: Optional[str] = None,
) -> List[Element]:
    """Run the farthest-point greedy and return the selected elements.

    Parameters
    ----------
    elements:
        The candidate pool (the full dataset for the offline baseline) —
        an element sequence or, for the columnar fast path, an
        :class:`~repro.data.store.ElementStore` (group restriction then
        becomes a vectorized mask and only the ``k`` selected rows are ever
        materialised as elements).
    metric:
        Distance metric.  Metrics with vectorized kernels update the
        nearest-to-selection array with one batched ``distances_to`` call
        per selected element; other metrics use the scalar loop.
    k:
        Number of elements to select (capped at the pool size).
    start_index:
        Index of the seed element within the (possibly group-restricted)
        pool; the paper seeds with the first element.
    restrict_group:
        If given, only elements of this group are considered — used by
        FairSwap and FairGMM to build group-specific candidate sets.
    index:
        Optional spatial-index kind (``"kd"``/``"ball"``) for the batched
        paths: each round's nearest-array refresh runs as a pruned
        :class:`~repro.index.farthest.FarthestPointIndex` traversal.  The
        nearest array — and therefore the selection — is bitwise identical
        to the brute sweep on fewer (never more) counted evaluations.
        Ignored on the scalar path.
    """
    k = require_positive_int(k, "k")
    index = resolve_index_kind(index, metric)
    if isinstance(elements, ElementStore):
        sub = elements
        if restrict_group is not None:
            sub = sub.select(np.nonzero(sub.groups == restrict_group)[0])
        if not len(sub):
            return []
        if not (0 <= start_index < len(sub)):
            raise InvalidParameterError(
                f"start_index {start_index} out of range for a pool of {len(sub)} elements"
            )
        if metric.supports_batch:
            return _gmm_store_batched(sub, metric, k, start_index, index)
        pool: List[Element] = sub.elements()
    else:
        pool = [
            element
            for element in elements
            if restrict_group is None or element.group == restrict_group
        ]
    if not pool:
        return []
    if not (0 <= start_index < len(pool)):
        raise InvalidParameterError(
            f"start_index {start_index} out of range for a pool of {len(pool)} elements"
        )
    if metric.supports_batch:
        return _gmm_elements_batched(pool, metric, k, start_index, index)
    selected = [pool[start_index]]
    # Maintain, for every pool element, its distance to the current selection.
    nearest = [metric.distance(element.vector, selected[0].vector) for element in pool]
    nearest[start_index] = -1.0  # exclude the seed from future selection
    while len(selected) < min(k, len(pool)):
        best_index = max(range(len(pool)), key=lambda i: nearest[i])
        if nearest[best_index] < 0:
            break
        chosen = pool[best_index]
        selected.append(chosen)
        nearest[best_index] = -1.0
        for i, element in enumerate(pool):
            if nearest[i] < 0:
                continue
            d = metric.distance(element.vector, chosen.vector)
            if d < nearest[i]:
                nearest[i] = d
    return selected


def _make_refresh(matrix: np.ndarray, metric: Metric, index: Optional[str]):
    """The per-round nearest-array refresh, indexed when requested.

    Returns a callable folding one new center into the nearest array in
    place.  Already-selected entries are masked with ``-1`` by the greedy
    loops; a masked entry stays ``-1`` either way (``min(-1, d) = -1`` on
    the brute path, and the indexed traversal prunes subtrees whose
    nearest maximum it cannot lower), so the arrays remain bitwise equal.
    """
    if index is not None and matrix.shape[0] > 1:
        from repro.index.farthest import FarthestPointIndex

        point_index = FarthestPointIndex(matrix, metric, kind=index)

        def refresh(vector: np.ndarray, nearest: np.ndarray) -> None:
            point_index.update(vector, nearest, metric)

        return refresh

    def refresh(vector: np.ndarray, nearest: np.ndarray) -> None:
        np.minimum(nearest, metric.distances_to(vector, matrix), out=nearest)

    return refresh


def _gmm_store_batched(
    store: ElementStore,
    metric: Metric,
    k: int,
    start_index: int,
    index: Optional[str] = None,
) -> List[Element]:
    """Columnar farthest-point greedy: selection over store rows.

    Same selection sequence (and distance accounting) as
    :func:`_gmm_elements_batched` over the corresponding element list —
    the payload matrix is simply the store's feature matrix, and elements
    are materialised (as zero-copy views) only for the ``k`` winners.
    """
    matrix = store.features
    refresh = _make_refresh(matrix, metric, index)
    selected_rows = [start_index]
    nearest = metric.distances_to(matrix[start_index], matrix)
    nearest[start_index] = -1.0
    while len(selected_rows) < min(k, len(store)):
        best_index = int(np.argmax(nearest))
        if nearest[best_index] < 0:
            break
        selected_rows.append(best_index)
        refresh(matrix[best_index], nearest)
        nearest[best_index] = -1.0
    return [store.element(row) for row in selected_rows]


def _gmm_elements_batched(
    pool: Sequence[Element],
    metric: Metric,
    k: int,
    start_index: int,
    index: Optional[str] = None,
) -> List[Element]:
    """Vectorized farthest-point greedy over an already-filtered pool.

    Selects the same elements as the scalar loop (``np.argmax`` and
    ``max(key=...)`` both break ties on the first index); selected entries
    are masked with ``-1`` exactly as the scalar path does.
    """
    matrix = stack_vectors(pool)
    refresh = _make_refresh(matrix, metric, index)
    selected = [pool[start_index]]
    nearest = metric.distances_to(pool[start_index].vector, matrix)
    nearest[start_index] = -1.0
    while len(selected) < min(k, len(pool)):
        best_index = int(np.argmax(nearest))
        if nearest[best_index] < 0:
            break
        chosen = pool[best_index]
        selected.append(chosen)
        refresh(chosen.vector, nearest)
        nearest[best_index] = -1.0
    return selected


def gmm(
    elements: Sequence[Element],
    metric: Metric,
    k: int,
    index: Optional[str] = None,
) -> RunResult:
    """Offline GMM baseline packaged as a :class:`RunResult`.

    The offline baselines keep the full dataset in memory, so the stored-
    element count equals the dataset size (as in the paper's accounting).
    ``index`` routes the per-round refreshes through the spatial-index
    layer (see :func:`gmm_elements`).
    """
    counting = CountingMetric(metric)
    timer = Timer()
    with timer.measure():
        selected = gmm_elements(elements, counting, k, index=index)
    stats = StreamStats(
        elements_processed=len(elements),
        stream_distance_computations=counting.calls,
        peak_stored_elements=len(elements),
        final_stored_elements=len(elements),
        stream_seconds=timer.elapsed,
    )
    return RunResult(
        algorithm="GMM",
        solution=Solution(selected, counting),
        stats=stats,
        params={"k": k},
    )
