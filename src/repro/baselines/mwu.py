"""MWU + LP-rounding quality oracle for fair max-min diversity maximization.

Every quality number the repository reports is otherwise relative to
*GMM-offline*, a 1/2-approximation — not the optimum.  This module closes
that gap with a multiplicative-weight-update (MWU) solver in the
Arora–Hazan–Kale style, using pure numpy and the farthest-point machinery
the metric layer already provides:

1. **Distance-guess ladder.**  ``2 * div(GMM)`` upper-bounds the fair
   optimum ``OPT_f`` (the paper's Section V convention), so the solver
   walks a guess ``gamma`` down from that ceiling, multiplying by
   ``1 - epsilon`` per step (the *epsilon falloff*) until a feasible
   solution of diversity ``>= gamma`` appears.  The final rung is
   ``gamma = 0``, where the oracle below always succeeds (feasibility of
   the constraint is validated up front), so termination is unconditional.
   After the first success the gap between the accepted rung and the last
   failed one is narrowed by a few geometric bisection probes (a failed
   rung is a search miss, not an infeasibility proof), so the returned
   diversity resolves well below the ``1 - epsilon`` rung spacing.
2. **MWU loop per guess.**  For a fixed ``gamma`` the fractional covering
   LP asks for a point mass ``x`` that fills every group quota using only
   ``gamma``-separated support.  The separation oracle is a *weighted
   threshold greedy*: repeatedly select the highest-weight element whose
   distance to the current selection is at least ``gamma`` and whose group
   quota is still open (exactly the farthest-point recursion of
   :func:`~repro.baselines.gmm.gmm_elements`, with the selection rule
   driven by the weights instead of the distances).  When the oracle
   under-fills a group, the weights of that group's unselected elements
   are boosted and the selected blockers decayed — both multiplicatively —
   so later iterations try selection orders that serve the starved group
   first.  The average of the iterations' indicator vectors is the
   fractional solution ``x``.
3. **Randomized LP rounding.**  If no iteration produced an integrally
   fair candidate (any such candidate has diversity ``>= gamma`` by
   construction and is accepted immediately), the solver rounds ``x``:
   per group, ``k_g`` elements are sampled without replacement with
   probability proportional to their fractional mass, and the rounded set
   is accepted if its realized diversity reaches ``gamma``.  The sampler
   is a seeded :class:`numpy.random.Generator`, so the whole run is
   deterministic for a fixed seed.

The returned diversity is the *true* diversity of the returned set (never
the guess), so downstream ratio reports are exact.  On the small instances
the property suite enumerates, the result matches :func:`exact_fdm` within
the falloff resolution.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.baselines.gmm import gmm_elements
from repro.core.result import RunResult
from repro.core.solution import FairSolution, diversity_of
from repro.data.element import Element
from repro.data.store import ElementStore
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric, stack_vectors
from repro.metrics.cached import CountingMetric
from repro.streaming.stats import StreamStats
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timer import Timer
from repro.utils.validation import require_in_open_interval, require_positive_int

#: Relative floor under which the ladder jumps straight to ``gamma = 0``.
_GAMMA_FLOOR = 1e-9

#: Probability floor added before rounding so every group member stays
#: sampleable even when the MWU iterations never selected it.
_MASS_FLOOR = 1e-12

#: Learning rate of the multiplicative updates.
_ETA = 0.5

#: Geometric bisection probes between the accepted rung and the last
#: failed one, sharpening the falloff ladder's resolution.
_REFINEMENTS = 6


class _Pool:
    """Index-addressed view of the candidate pool.

    Normalises the two accepted input shapes — an element sequence and a
    columnar :class:`~repro.data.store.ElementStore` — behind row indices,
    so the MWU loops never branch on the input type.  Elements are
    materialised only for selected rows (zero-copy views for stores).
    """

    def __init__(self, elements: Union[Sequence[Element], ElementStore]) -> None:
        if isinstance(elements, ElementStore):
            self._store: Optional[ElementStore] = elements
            self._list: Optional[List[Element]] = None
            self.groups = np.asarray(elements.groups, dtype=np.int64)
        else:
            self._store = None
            self._list = list(elements)
            self.groups = np.array([e.group for e in self._list], dtype=np.int64)
        self.n = int(self.groups.shape[0])
        self._matrix: Optional[np.ndarray] = None

    def matrix(self) -> np.ndarray:
        """The ``(n, d)`` feature matrix (built lazily, once)."""
        if self._matrix is None:
            if self._store is not None:
                self._matrix = self._store.features
            else:
                self._matrix = stack_vectors(self._list)
        return self._matrix

    def vector(self, row: int):
        """The payload of row ``row``."""
        if self._store is not None:
            return self._store.features[row]
        return self._list[row].vector

    def element(self, row: int) -> Element:
        """Materialise row ``row`` as an :class:`Element`."""
        if self._store is not None:
            return self._store.element(row)
        return self._list[row]

    def elements(self, rows: Sequence[int]) -> List[Element]:
        """Materialise the given rows, in order."""
        return [self.element(row) for row in rows]

    def group_sizes(self) -> Dict[int, int]:
        """Number of pool elements per group label."""
        labels, counts = np.unique(self.groups, return_counts=True)
        return {int(g): int(c) for g, c in zip(labels, counts)}


def _fold_nearest(
    counting: Metric, pool: _Pool, row: int, nearest: np.ndarray
) -> None:
    """Fold the distances to row ``row`` into the nearest-to-selection array.

    Mirrors the per-round refresh of the farthest-point greedy: one batched
    ``distances_to`` call (charged ``n``) on vectorized metrics, a scalar
    scan (also ``n`` evaluations) otherwise, so the distance accounting is
    identical across both paths.
    """
    if counting.supports_batch:
        np.minimum(nearest, counting.distances_to(pool.vector(row), pool.matrix()), out=nearest)
        return
    chosen = pool.vector(row)
    for i in range(pool.n):
        d = counting.distance(chosen, pool.vector(i))
        if d < nearest[i]:
            nearest[i] = d


def _oracle(
    counting: Metric,
    pool: _Pool,
    constraint: FairnessConstraint,
    gamma: float,
    weights: np.ndarray,
) -> Tuple[List[int], np.ndarray, Dict[int, int]]:
    """One separation-oracle call: a weighted ``gamma``-separated greedy fill.

    Selects up to ``k`` rows, always the highest-weight eligible one —
    eligible meaning at distance ``>= gamma`` from everything selected so
    far and belonging to a group whose quota is still open.  Weight ties
    break on the largest distance to the current selection (the
    farthest-point rule, which keeps future eligibility wide), then on
    the lowest row index, so the call is deterministic.

    Returns the selected rows (in selection order), their boolean mask,
    and the per-group deficit that remains (all zeros iff the candidate is
    integrally fair, in which case its diversity is ``>= gamma`` by
    construction).
    """
    remaining = {group: constraint.quota(group) for group in constraint.groups}
    nearest = np.full(pool.n, np.inf)
    chosen: List[int] = []
    chosen_mask = np.zeros(pool.n, dtype=bool)
    open_mask = np.isin(pool.groups, [g for g, r in remaining.items() if r > 0])
    k = constraint.total_size
    while len(chosen) < k:
        eligible = open_mask & ~chosen_mask & (nearest >= gamma)
        if not eligible.any():
            break
        heaviest = weights[eligible].max()
        front = eligible & (weights >= heaviest * (1.0 - 1e-12))
        pick = int(np.argmax(np.where(front, nearest, -np.inf)))
        chosen.append(pick)
        chosen_mask[pick] = True
        group = int(pool.groups[pick])
        remaining[group] -= 1
        if remaining[group] == 0:
            open_mask &= pool.groups != group
        if len(chosen) < k:
            _fold_nearest(counting, pool, pick, nearest)
    return chosen, chosen_mask, remaining


def _reweight(
    weights: np.ndarray,
    pool: _Pool,
    chosen_mask: np.ndarray,
    remaining: Dict[int, int],
    constraint: FairnessConstraint,
) -> None:
    """Multiplicative update against the oracle candidate's quota deficits.

    Unselected members of every starved group are boosted proportionally
    to the group's relative deficit; the selected blockers (whose
    ``gamma``-balls crowded the starved groups out) are decayed.  Weights
    are renormalised to a unit maximum so long runs cannot overflow.
    """
    for group, deficit in remaining.items():
        if deficit <= 0:
            continue
        starving = (pool.groups == group) & ~chosen_mask
        weights[starving] *= math.exp(_ETA * deficit / constraint.quota(group))
    weights[chosen_mask] *= math.exp(-_ETA)
    peak = weights.max()
    if peak > 0:
        weights /= peak


def _round_fractional(
    rng: np.random.Generator,
    pool: _Pool,
    constraint: FairnessConstraint,
    mass: np.ndarray,
) -> List[int]:
    """One randomized rounding of the fractional solution ``mass``.

    Per group, samples the quota without replacement with probability
    proportional to the group's fractional mass (plus a tiny floor so
    never-selected elements stay reachable).  The rounded set is fair by
    construction; only its diversity needs checking.
    """
    rows: List[int] = []
    for group in constraint.groups:
        group_rows = np.nonzero(pool.groups == group)[0]
        probabilities = mass[group_rows] + _MASS_FLOOR
        probabilities = probabilities / probabilities.sum()
        picked = rng.choice(
            group_rows, size=constraint.quota(group), replace=False, p=probabilities
        )
        rows.extend(sorted(int(row) for row in picked))
    return rows


def mwu_fair(
    elements: Union[Sequence[Element], ElementStore],
    metric: Metric,
    constraint: FairnessConstraint,
    epsilon: float = 0.1,
    iterations: int = 32,
    rounds: int = 8,
    seed: SeedLike = None,
) -> RunResult:
    """MWU + LP-rounding solver for fair max-min diversity maximization.

    Walks a distance guess down from the ``2 * div(GMM)`` upper bound on
    the fair optimum, running the MWU loop described in the module
    docstring at each rung, and returns the first (hence best) feasible
    solution found.  Deterministic for a fixed ``seed``.

    Parameters
    ----------
    elements:
        The candidate pool — an element sequence or a columnar
        :class:`~repro.data.store.ElementStore`.
    metric:
        Distance metric; vectorized kernels are used when available.
    constraint:
        The fairness constraint (validated feasible against the pool's
        group sizes before any work happens).
    epsilon:
        Falloff factor of the guess ladder, in ``(0, 1)``: each failed
        rung shrinks the guess by ``1 - epsilon``, so the accepted
        solution's diversity is within one ``(1 - epsilon)`` factor of the
        best guess this procedure could certify.
    iterations:
        MWU iterations (oracle calls + weight updates) per rung.
    rounds:
        Randomized-rounding attempts per rung after the MWU iterations.
    seed:
        Seed for the rounding sampler (``None`` draws entropy; pass an
        ``int`` for reproducible runs).
    """
    epsilon = require_in_open_interval(epsilon, 0.0, 1.0, "epsilon")
    iterations = require_positive_int(iterations, "iterations")
    rounds = require_positive_int(rounds, "rounds")
    pool = _Pool(elements)
    constraint.validate_feasible(pool.group_sizes())
    rng = ensure_rng(seed)
    counting = CountingMetric(metric)
    k = constraint.total_size
    timer = Timer()
    with timer.measure():
        rows, steps, attempts = _mwu_ladder(
            counting, pool, constraint, epsilon, iterations, rounds, rng
        )
        selected = pool.elements(rows)
    stats = StreamStats(
        elements_processed=pool.n,
        stream_distance_computations=counting.calls,
        peak_stored_elements=pool.n,
        final_stored_elements=pool.n,
        stream_seconds=timer.elapsed,
    )
    stats.extra["ladder_steps"] = float(steps)
    stats.extra["rounding_attempts"] = float(attempts)
    return RunResult(
        algorithm="MWU",
        solution=FairSolution(selected, counting, constraint),
        stats=stats,
        params={
            "k": k,
            "epsilon": epsilon,
            "iterations": iterations,
            "rounds": rounds,
            "seed": seed if seed is None or isinstance(seed, int) else None,
        },
    )


def _mwu_ladder(
    counting: CountingMetric,
    pool: _Pool,
    constraint: FairnessConstraint,
    epsilon: float,
    iterations: int,
    rounds: int,
    rng: np.random.Generator,
) -> Tuple[List[int], int, int]:
    """Run the falloff ladder; return ``(rows, ladder_steps, roundings)``.

    The ``gamma = 0`` rung accepts any fair fill, so the descent always
    terminates with a feasible solution (feasibility of the constraint
    against the pool was validated by the caller).  The descent is then
    sharpened by up to ``_REFINEMENTS`` geometric bisection probes of the
    gap between the accepted rung and the last failed one — a failed rung
    only means the search missed, so probing inside the gap can recover
    diversity the ``1 - epsilon`` spacing would otherwise forfeit.
    """
    k = constraint.total_size
    gamma = 0.0
    if k >= 2:
        anchors = gmm_elements(pool._store if pool._store is not None else pool._list,
                               counting, k)
        gamma = 2.0 * diversity_of(anchors, counting)
    if not math.isfinite(gamma):
        gamma = 0.0
    floor = gamma * _GAMMA_FLOOR
    step = 0
    roundings = 0
    failed_gamma = 0.0
    while True:
        step += 1
        with obs.span("mwu.round", step=step, gamma=float(gamma)):
            accepted, rows, used = _mwu_at_gamma(
                counting, pool, constraint, gamma, iterations, rounds, rng
            )
            roundings += used
        if accepted:
            break
        failed_gamma = gamma
        gamma *= 1.0 - epsilon
        if gamma <= floor:
            gamma = 0.0
    achieved = diversity_of(pool.elements(rows), counting)
    for _ in range(_REFINEMENTS):
        if not (achieved < failed_gamma and math.isfinite(achieved)):
            break
        probe = math.sqrt(achieved * failed_gamma) if achieved > 0 else failed_gamma / 2.0
        step += 1
        with obs.span("mwu.round", step=step, gamma=float(probe), refining=True):
            accepted, probe_rows, used = _mwu_at_gamma(
                counting, pool, constraint, probe, iterations, rounds, rng
            )
            roundings += used
        if accepted:
            rows = probe_rows
            achieved = diversity_of(pool.elements(rows), counting)
        else:
            failed_gamma = probe
    return rows, step, roundings


def _mwu_at_gamma(
    counting: CountingMetric,
    pool: _Pool,
    constraint: FairnessConstraint,
    gamma: float,
    iterations: int,
    rounds: int,
    rng: np.random.Generator,
) -> Tuple[bool, List[int], int]:
    """One rung of the ladder: MWU iterations, then randomized rounding.

    Returns ``(accepted, rows, roundings_used)``.  An integrally fair
    oracle candidate short-circuits the loop (its diversity is
    ``>= gamma`` by construction); otherwise the fractional average of the
    iterations is rounded up to ``rounds`` times and the first rounded set
    whose realized diversity reaches ``gamma`` is accepted.
    """
    weights = np.ones(pool.n)
    mass = np.zeros(pool.n)
    for iteration in range(iterations):
        with obs.span("mwu.iteration", iteration=iteration, gamma=float(gamma)):
            chosen, chosen_mask, remaining = _oracle(
                counting, pool, constraint, gamma, weights
            )
            if all(deficit == 0 for deficit in remaining.values()):
                return True, chosen, 0
            mass[chosen_mask] += 1.0
            _reweight(weights, pool, chosen_mask, remaining, constraint)
    for attempt in range(rounds):
        rows = _round_fractional(rng, pool, constraint, mass)
        realized = diversity_of(pool.elements(rows), counting)
        if realized >= gamma:
            return True, rows, attempt + 1
    return False, [], rounds
