"""Offline baseline algorithms the paper compares against.

* :func:`gmm` — the Gonzalez greedy 1/2-approximation for unconstrained
  max-min diversity maximization (used both as a comparison point and as
  the source of the ``2 * div(GMM)`` upper bound on OPT_f).
* :func:`fair_swap` — the FairSwap algorithm of Moumoulidou et al. (ICDT
  2021) for ``m = 2``.
* :func:`fair_flow` — the FairFlow algorithm of Moumoulidou et al. for an
  arbitrary ``m`` (max-flow based).
* :func:`fair_gmm` — the FairGMM enumeration algorithm for small ``k, m``.
* :func:`max_sum_greedy` — greedy max-sum dispersion, used only for the
  Figure 1 illustration contrasting the two diversity objectives.
* :func:`exact_fdm` / :func:`exact_dm` — brute-force optima used by the
  test suite as oracles on small instances.
* :func:`mwu_fair` — the MWU + LP-rounding quality oracle: a near-exact
  solver (pure numpy, no LP dependency) that anchors the true
  approximation ratios reported by ``benchmarks/bench_quality.py``.
"""

from repro.baselines.gmm import gmm, gmm_elements
from repro.baselines.max_sum import max_sum_greedy
from repro.baselines.fair_swap import fair_swap
from repro.baselines.fair_flow import fair_flow
from repro.baselines.fair_gmm import fair_gmm
from repro.baselines.exact import exact_dm, exact_fdm
from repro.baselines.mwu import mwu_fair

__all__ = [
    "gmm",
    "gmm_elements",
    "max_sum_greedy",
    "fair_swap",
    "fair_flow",
    "fair_gmm",
    "exact_dm",
    "exact_fdm",
    "mwu_fair",
]
