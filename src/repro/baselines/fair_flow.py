"""FairFlow — the offline 1/(3m-1)-approximation for fair DM with any m.

FairFlow (Moumoulidou, McGregor, Meliou — ICDT 2021) proceeds in three
steps:

1. run GMM on the whole dataset to obtain ``k`` well-separated centres and
   assign every element to its nearest centre, producing ``k`` clusters;
2. build a bipartite flow network between groups (with capacities ``k_i``)
   and clusters (with capacity one) where an edge exists when the cluster
   contains at least one element of the group, and compute a maximum flow;
3. if the flow saturates all quotas, read the assignment back and pick, for
   each (group, cluster) pair carrying flow, one element of that group from
   that cluster.

Its solution quality degrades with ``m`` in practice (as the paper's
experiments show), which is the gap SFDM2 closes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from repro.baselines.gmm import gmm_elements
from repro.metrics.base import stack_vectors
from repro.core.result import RunResult
from repro.core.solution import FairSolution
from repro.fairness.constraints import FairnessConstraint
from repro.flow.assignment import solve_cluster_assignment
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.errors import InfeasibleConstraintError
from repro.utils.timer import Timer


def _assign_to_clusters(
    elements: Sequence[Element], centers: Sequence[Element], metric: Metric
) -> List[List[Element]]:
    """Assign every element to its nearest centre; returns one list per centre.

    Metrics with vectorized kernels compute the assignment with chunked
    ``pairwise(elements, centers)`` calls (store-backed element lists
    gather their payload matrix from the store in one slice); the charged
    distance count — ``n · k`` — and the chosen centres (``argmin`` breaks
    ties on the first index, like the scalar scan) are identical to the
    element-at-a-time loop.
    """
    clusters: List[List[Element]] = [[] for _ in centers]
    if metric.supports_batch and len(centers) > 1 and len(elements):
        center_matrix = stack_vectors(centers)
        element_matrix = stack_vectors(elements)
        chunk = 4096
        for start in range(0, len(elements), chunk):
            block = metric.pairwise(element_matrix[start : start + chunk], center_matrix)
            for offset, best_index in enumerate(np.argmin(block, axis=1)):
                clusters[int(best_index)].append(elements[start + offset])
        return clusters
    for element in elements:
        best_index = 0
        best_distance = float("inf")
        for index, center in enumerate(centers):
            d = metric.distance(element.vector, center.vector)
            if d < best_distance:
                best_distance = d
                best_index = index
        clusters[best_index].append(element)
    return clusters


def fair_flow(
    elements: Sequence[Element],
    metric: Metric,
    constraint: FairnessConstraint,
) -> RunResult:
    """Run FairFlow on ``elements`` and return a :class:`RunResult`."""
    group_sizes: Dict[int, int] = {}
    for element in elements:
        group_sizes[element.group] = group_sizes.get(element.group, 0) + 1
    constraint.validate_feasible(group_sizes)

    counting = CountingMetric(metric)
    timer = Timer()
    k = constraint.total_size
    with timer.measure():
        centers = gmm_elements(elements, counting, k)
        clusters = _assign_to_clusters(elements, centers, counting)
        cluster_groups: List[Set[int]] = [
            {element.group for element in cluster} for cluster in clusters
        ]
        value, assignment = solve_cluster_assignment(constraint.quotas, cluster_groups)

        solution: List[Element] = []
        used_clusters: Set[int] = set()
        for group, cluster_indices in assignment.items():
            for cluster_index in cluster_indices:
                if cluster_index in used_clusters:
                    continue
                members = [
                    element
                    for element in clusters[cluster_index]
                    if element.group == group
                ]
                if members:
                    solution.append(members[0])
                    used_clusters.add(cluster_index)

        # If the flow could not satisfy every quota (value < k), top the
        # solution up greedily from the leftover elements of the deficient
        # groups — the original algorithm may return an infeasible solution
        # in this case; completing it keeps the comparison fair while only
        # helping the baseline.
        if len(solution) < k:
            counts = {group: 0 for group in constraint.groups}
            for element in solution:
                counts[element.group] += 1
            selected_uids = {element.uid for element in solution}
            for group in constraint.groups:
                while counts[group] < constraint.quota(group):
                    candidates = [
                        element
                        for element in elements
                        if element.group == group and element.uid not in selected_uids
                    ]
                    if not candidates:
                        break
                    if solution:
                        best = max(
                            candidates,
                            key=lambda e: min(
                                counting.distance(e.vector, s.vector) for s in solution
                            ),
                        )
                    else:
                        best = candidates[0]
                    solution.append(best)
                    selected_uids.add(best.uid)
                    counts[group] += 1

    stats = StreamStats(
        elements_processed=len(elements),
        stream_distance_computations=counting.calls,
        peak_stored_elements=len(elements),
        final_stored_elements=len(elements),
        stream_seconds=timer.elapsed,
    )
    stats.extra["flow_value"] = value
    return RunResult(
        algorithm="FairFlow",
        solution=FairSolution(solution, counting, constraint),
        stats=stats,
        params={"k": k, "quotas": constraint.quotas},
    )
