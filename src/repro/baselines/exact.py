"""Brute-force exact solvers, used as oracles by the test suite.

Both solvers enumerate all feasible subsets, so they are exponential in
``k`` and only intended for the small instances the tests construct (at
most a couple of dozen elements).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.core.solution import diversity_of
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import require_positive_int


def exact_dm(
    elements: Sequence[Element], metric: Metric, k: int, max_elements: int = 25
) -> Tuple[List[Element], float]:
    """Exact optimum for unconstrained max-min diversity maximization.

    Returns the optimal subset and its diversity.  Refuses inputs larger
    than ``max_elements`` to avoid accidental exponential blow-ups in tests.
    """
    k = require_positive_int(k, "k")
    if len(elements) > max_elements:
        raise InvalidParameterError(
            f"exact_dm is limited to {max_elements} elements, got {len(elements)}"
        )
    if k > len(elements):
        raise InvalidParameterError(f"k={k} exceeds the number of elements {len(elements)}")
    best_subset: Optional[Tuple[Element, ...]] = None
    best_diversity = -1.0
    for subset in itertools.combinations(elements, k):
        div = diversity_of(subset, metric)
        if div > best_diversity:
            best_diversity = div
            best_subset = subset
    assert best_subset is not None
    return list(best_subset), best_diversity


def exact_fdm(
    elements: Sequence[Element],
    metric: Metric,
    constraint: FairnessConstraint,
    max_elements: int = 25,
) -> Tuple[List[Element], float]:
    """Exact optimum for fair max-min diversity maximization.

    Enumerates all ways of picking ``k_i`` elements from each group.
    Returns the optimal fair subset and its diversity.
    """
    if len(elements) > max_elements:
        raise InvalidParameterError(
            f"exact_fdm is limited to {max_elements} elements, got {len(elements)}"
        )
    per_group_pools = {
        group: [element for element in elements if element.group == group]
        for group in constraint.groups
    }
    constraint.validate_feasible({g: len(pool) for g, pool in per_group_pools.items()})
    per_group_choices = [
        list(itertools.combinations(per_group_pools[group], constraint.quota(group)))
        for group in constraint.groups
    ]
    best_subset: Optional[List[Element]] = None
    best_diversity = -1.0
    for combination in itertools.product(*per_group_choices):
        candidate = [element for part in combination for element in part]
        div = diversity_of(candidate, metric)
        if div > best_diversity:
            best_diversity = div
            best_subset = candidate
    assert best_subset is not None
    return best_subset, best_diversity
