"""Brute-force exact solvers, used as oracles by the test suite.

Both solvers enumerate all feasible subsets, so they are exponential in
``k`` and only intended for the small instances the tests construct (at
most a couple of dozen elements).

Diversity ties are broken explicitly: among all optimal subsets the one
with the lexicographically smallest sorted uid tuple wins.  This makes the
returned subset a pure function of the element *set* (independent of input
order), which is what keeps the MWU-vs-exact golden pins stable under
element reordering.  Both solvers also accept a columnar
:class:`~repro.data.store.ElementStore` in place of an element sequence,
matching :func:`~repro.core.coreset.gmm_coreset`.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.solution import diversity_of
from repro.data.store import ElementStore
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import require_positive_int


def _materialise(
    elements: Union[Sequence[Element], ElementStore], limit: int, name: str
) -> List[Element]:
    """Element list for ``elements``, enforcing the brute-force size cap."""
    if len(elements) > limit:
        raise InvalidParameterError(
            f"{name} is limited to {limit} elements, got {len(elements)}"
        )
    if isinstance(elements, ElementStore):
        return elements.elements()
    return list(elements)


def _uid_key(subset: Sequence[Element]) -> Tuple[int, ...]:
    """The order-independent tie-breaking key: the sorted uid tuple."""
    return tuple(sorted(element.uid for element in subset))


def exact_dm(
    elements: Union[Sequence[Element], ElementStore],
    metric: Metric,
    k: int,
    max_elements: int = 25,
) -> Tuple[List[Element], float]:
    """Exact optimum for unconstrained max-min diversity maximization.

    Returns the optimal subset and its diversity; among equally diverse
    subsets the lexicographically smallest sorted uid tuple wins, so the
    result is independent of the input order.  Refuses inputs larger than
    ``max_elements`` to avoid accidental exponential blow-ups in tests.
    """
    k = require_positive_int(k, "k")
    pool = _materialise(elements, max_elements, "exact_dm")
    if k > len(pool):
        raise InvalidParameterError(f"k={k} exceeds the number of elements {len(pool)}")
    best_subset: Optional[Tuple[Element, ...]] = None
    best_key: Optional[Tuple[int, ...]] = None
    best_diversity = -1.0
    for subset in itertools.combinations(pool, k):
        div = diversity_of(subset, metric)
        if div < best_diversity:
            continue
        key = _uid_key(subset)
        if div > best_diversity or (best_key is not None and key < best_key):
            best_diversity = div
            best_subset = subset
            best_key = key
    assert best_subset is not None
    return list(best_subset), best_diversity


def exact_fdm(
    elements: Union[Sequence[Element], ElementStore],
    metric: Metric,
    constraint: FairnessConstraint,
    max_elements: int = 25,
) -> Tuple[List[Element], float]:
    """Exact optimum for fair max-min diversity maximization.

    Enumerates all ways of picking ``k_i`` elements from each group.
    Returns the optimal fair subset and its diversity; ties break on the
    lexicographically smallest sorted uid tuple, as in :func:`exact_dm`.
    """
    pool = _materialise(elements, max_elements, "exact_fdm")
    per_group_pools = {
        group: [element for element in pool if element.group == group]
        for group in constraint.groups
    }
    constraint.validate_feasible({g: len(rows) for g, rows in per_group_pools.items()})
    per_group_choices = [
        list(itertools.combinations(per_group_pools[group], constraint.quota(group)))
        for group in constraint.groups
    ]
    best_subset: Optional[List[Element]] = None
    best_key: Optional[Tuple[int, ...]] = None
    best_diversity = -1.0
    for combination in itertools.product(*per_group_choices):
        candidate = [element for part in combination for element in part]
        div = diversity_of(candidate, metric)
        if div < best_diversity:
            continue
        key = _uid_key(candidate)
        if div > best_diversity or (best_key is not None and key < best_key):
            best_diversity = div
            best_subset = candidate
            best_key = key
    assert best_subset is not None
    return best_subset, best_diversity
