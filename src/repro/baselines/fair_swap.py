"""FairSwap — the offline 1/4-approximation for fair DM with two groups.

FairSwap (Moumoulidou, McGregor, Meliou — ICDT 2021) first runs GMM on the
whole dataset to obtain an unconstrained size-``k`` solution, then balances
it: while some group is under its quota, it inserts the element of that
group (from the *entire dataset*) farthest from the already-selected
elements of that group, and removes the element of the over-filled group
closest to the under-filled group's selection.  It needs the whole dataset
in memory and random access over it, which is exactly the cost the paper's
streaming algorithms avoid.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.gmm import gmm_elements
from repro.core.postprocess import distance_to_set
from repro.core.result import RunResult
from repro.core.solution import FairSolution
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.errors import InfeasibleConstraintError, InvalidParameterError
from repro.utils.timer import Timer


def fair_swap(
    elements: Sequence[Element],
    metric: Metric,
    constraint: FairnessConstraint,
) -> RunResult:
    """Run FairSwap on ``elements`` and return a :class:`RunResult`.

    Raises
    ------
    InvalidParameterError
        If the constraint does not have exactly two groups.
    InfeasibleConstraintError
        If some group has fewer elements than its quota.
    """
    if constraint.num_groups != 2:
        raise InvalidParameterError(
            f"FairSwap supports exactly two groups, got {constraint.num_groups}"
        )
    group_sizes: dict = {}
    for element in elements:
        group_sizes[element.group] = group_sizes.get(element.group, 0) + 1
    constraint.validate_feasible(group_sizes)

    counting = CountingMetric(metric)
    timer = Timer()
    k = constraint.total_size
    with timer.measure():
        solution: List[Element] = gmm_elements(elements, counting, k)
        counts = {group: 0 for group in constraint.groups}
        for element in solution:
            if element.group in counts:
                counts[element.group] += 1

        under = [g for g in constraint.groups if counts[g] < constraint.quota(g)]
        if under:
            under_group = under[0]
            # Insert far elements of the under-filled group from the whole dataset.
            selected_uids = {element.uid for element in solution}
            pool = [
                element
                for element in elements
                if element.group == under_group and element.uid not in selected_uids
            ]
            while counts[under_group] < constraint.quota(under_group) and pool:
                anchor = [e for e in solution if e.group == under_group]
                best = max(pool, key=lambda e: distance_to_set(e, anchor, counting))
                pool.remove(best)
                solution.append(best)
                selected_uids.add(best.uid)
                counts[under_group] += 1
            # Remove close elements of the over-filled group.
            while len(solution) > k:
                under_members = [e for e in solution if e.group == under_group]
                removable = [
                    e
                    for e in solution
                    if e.group != under_group and counts[e.group] > constraint.quota(e.group)
                ]
                if not removable:
                    break
                worst = min(
                    removable, key=lambda e: distance_to_set(e, under_members, counting)
                )
                solution.remove(worst)
                counts[worst.group] -= 1

    stats = StreamStats(
        elements_processed=len(elements),
        stream_distance_computations=counting.calls,
        peak_stored_elements=len(elements),
        final_stored_elements=len(elements),
        stream_seconds=timer.elapsed,
    )
    return RunResult(
        algorithm="FairSwap",
        solution=FairSolution(solution, counting, constraint),
        stats=stats,
        params={"k": k, "quotas": constraint.quotas},
    )
