"""Per-shard summarizers: compress one shard into a small candidate pool.

A summarizer maps a shard (an element list) to a summary whose union
across shards is a *composable coreset* for fair diversity maximization:
solving the problem on the merged summaries gives a constant-factor
approximation of solving it on the full data (Indyk et al., PODS 2014),
and keeping ``k`` elements per group in every summary keeps every group
quota feasible after the merge.

Two summarizers ship with the library, both stateless value objects so
the process backend can pickle them into workers:

* :class:`GMMShardSummarizer` — the theory-backed default: ``k`` GMM
  picks on the shard plus ``k`` GMM picks within every group present
  (:func:`repro.core.coreset.gmm_coreset`), computed with the vectorized
  ``distances_to`` kernels when the metric has them;
* :class:`StreamShardSummarizer` — a bounded-memory one-pass alternative
  built on :meth:`repro.core.candidate.Candidate.offer_batch`: the shard
  is consumed in chunks through a geometric ladder of distance
  thresholds, maintaining one group-blind and one per-group candidate per
  level, exactly like the stream phase of the paper's algorithms.  Its
  working set is ``O(k · m · log(Δ)/ε)`` independent of the shard size,
  which matters when shards are streamed from disk rather than
  materialised.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.candidate import Candidate
from repro.core.coreset import gmm_coreset
from repro.core.guesses import GuessLadder
from repro.data.store import ElementStore
from repro.metrics.base import Metric
from repro.metrics.space import exact_distance_bounds
from repro.data.element import Element
from repro.streaming.stream import iter_batches
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import require_in_open_interval, require_positive_int

#: What a summarizer accepts: an element sequence or a columnar store
#: (the zero-copy form shm-shipped shards arrive in).
ShardData = Union[Sequence[Element], ElementStore]


def _first_k_per_group(elements: Sequence[Element], k: int) -> List[Element]:
    """First ``k`` distinct elements of every group, in stream order.

    The degenerate-shard fallback: even without a usable distance ladder
    the summary must keep every group present in the shard represented
    (up to ``k`` members), or the merged coreset could lose a small
    protected group entirely.
    """
    taken: Dict[int, int] = {}
    seen_uids: Dict[int, bool] = {}
    summary: List[Element] = []
    for element in elements:
        if element.uid in seen_uids:
            continue
        seen_uids[element.uid] = True
        if taken.get(element.group, 0) < k:
            summary.append(element)
            taken[element.group] = taken.get(element.group, 0) + 1
    return summary


class ShardSummarizer(ABC):
    """Strategy object that compresses one shard into a summary pool."""

    #: CLI-facing name (``"gmm"``, ``"stream"``).
    name: str = "summarizer"

    @abstractmethod
    def summarize(
        self,
        elements: ShardData,
        metric: Metric,
        k: int,
        start_index: int = 0,
    ) -> List[Element]:
        """Return the shard's summary (distinct elements, deterministic order).

        Parameters
        ----------
        elements:
            The shard, in stream order — an element sequence or a columnar
            :class:`~repro.data.store.ElementStore` (the summary is
            identical either way; the store form lets the GMM rule run
            directly on the columns).
        metric:
            Distance metric shared by every shard.
        k:
            Per-group (and group-blind) summary budget — normally the
            fairness constraint's total solution size.
        start_index:
            Deterministic seed position forwarded to GMM-style greedy
            starts; the driver derives it from its run seed.
        """


class GMMShardSummarizer(ShardSummarizer):
    """Per-group GMM coreset of the shard — the composable-coreset default."""

    name = "gmm"

    def summarize(
        self,
        elements: ShardData,
        metric: Metric,
        k: int,
        start_index: int = 0,
    ) -> List[Element]:
        """``k`` blind GMM picks plus ``k`` picks per group present in the shard.

        Store-form shards run straight on the columnar kernels
        (:func:`~repro.core.coreset.gmm_coreset` handles both forms with
        bitwise-identical selections and distance accounting).
        """
        return gmm_coreset(elements, metric, k, per_group=True, start_index=start_index)


class StreamShardSummarizer(ShardSummarizer):
    """One-pass chunked summarizer on the ``Candidate.offer_batch`` kernel.

    Parameters
    ----------
    chunk_size:
        Elements per ingestion chunk; each chunk is screened against every
        threshold level with one batched min-distance computation.
    epsilon:
        Relative step of the threshold ladder in ``(0, 1)``.  The default
        of 0.5 (a factor-2 ladder) keeps the level count — and therefore
        the summary size — small; shard summaries feed a merge and a
        post-processing stage that re-optimise anyway, so a fine ladder
        buys little here.
    """

    name = "stream"

    def __init__(self, chunk_size: int = 1024, epsilon: float = 0.5) -> None:
        self.chunk_size = require_positive_int(chunk_size, "chunk_size")
        self.epsilon = require_in_open_interval(epsilon, 0.0, 1.0, "epsilon")

    def summarize(
        self,
        elements: ShardData,
        metric: Metric,
        k: int,
        start_index: int = 0,
    ) -> List[Element]:
        """Feed the shard chunk-wise through per-level blind and group candidates.

        Distance bounds are estimated on the first chunk and widened by the
        same factor-4 margin the streaming algorithms use; ``start_index``
        is unused (the one-pass rule has no seed choice) but kept so every
        summarizer shares one call signature.  Store-form shards are
        consumed as their (zero-copy) element views.
        """
        del start_index  # the one-pass threshold rule has no seed element
        if isinstance(elements, ElementStore):
            elements = elements.elements()
        chunks = list(iter_batches(elements, self.chunk_size))
        if not chunks:
            return []
        sample = chunks[0]
        if len(elements) == 1 or len(sample) == 1:
            return _first_k_per_group(elements, k)
        d_min, d_max = exact_distance_bounds(sample, metric)
        if d_min <= 0.0 or not np.isfinite(d_max) or d_max <= 0.0:
            # Degenerate shard (duplicate-only sample): no usable ladder.
            return _first_k_per_group(elements, k)
        ladder = GuessLadder(d_min / 4.0, d_max * 4.0, self.epsilon)
        blind: List[Candidate] = [Candidate(mu, k, metric) for mu in ladder]
        grouped: Dict[int, List[Candidate]] = {}

        for chunk in chunks:
            vectors = (
                np.asarray([element.vector for element in chunk])
                if metric.supports_batch
                else None
            )
            for candidate in blind:
                candidate.offer_batch(chunk, vectors)
            chunk_groups = np.fromiter(
                (element.group for element in chunk), dtype=np.int64, count=len(chunk)
            )
            for group in sorted(set(chunk_groups.tolist())):
                levels = grouped.setdefault(
                    group, [Candidate(mu, k, metric, group=group) for mu in ladder]
                )
                indices = np.nonzero(chunk_groups == group)[0]
                members = [chunk[int(i)] for i in indices]
                # Slice the already-stacked chunk matrix instead of
                # re-stacking the members' payloads per group.
                member_vectors = None if vectors is None else vectors[indices]
                for candidate in levels:
                    candidate.offer_batch(members, member_vectors)

        summary: Dict[int, Element] = {}
        for candidate in blind:
            for element in candidate:
                summary.setdefault(element.uid, element)
        for group in sorted(grouped):
            for candidate in grouped[group]:
                for element in candidate:
                    summary.setdefault(element.uid, element)
        return list(summary.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamShardSummarizer(chunk_size={self.chunk_size}, epsilon={self.epsilon:g})"
        )


#: Name -> summarizer factory for the built-in summarizers.
SUMMARIZERS = {
    GMMShardSummarizer.name: GMMShardSummarizer,
    StreamShardSummarizer.name: StreamShardSummarizer,
}


def resolve_summarizer(spec) -> ShardSummarizer:
    """Normalise a summarizer specification to a :class:`ShardSummarizer`.

    Accepts an instance (returned unchanged), a built-in name, or ``None``
    (the GMM default); unknown names fail eagerly.
    """
    if spec is None:
        return GMMShardSummarizer()
    if isinstance(spec, ShardSummarizer):
        return spec
    if isinstance(spec, str):
        factory = SUMMARIZERS.get(spec)
        if factory is None:
            raise InvalidParameterError(
                f"unknown summarizer {spec!r}; available: {', '.join(SUMMARIZERS)}"
            )
        return factory()
    raise InvalidParameterError(
        f"summarizer must be a ShardSummarizer or one of {list(SUMMARIZERS)}, got {spec!r}"
    )
