"""Binary merge tree over per-shard coreset summaries.

Composable coresets merge by union: the union of per-shard summaries is
itself a coreset of the full data.  Unioning all shards at once would let
the driver-side pool grow linearly with the shard count, so the merge is
organised as a binary reduction tree instead: summaries are paired off
left-to-right, every pair is unioned and immediately re-summarised with
the same per-group GMM rule the shards used, and the survivors advance to
the next round.  Driver memory therefore stays ``O(k · m)`` per live
summary and the tree has ``ceil(log2(shards))`` rounds — the shape a
distributed aggregation (tree-reduce) would use, run here on the driver
because merged summaries are tiny.

The pairing is strictly positional (shard order, not completion order),
which is one half of the cross-backend determinism guarantee; the other
half is :meth:`Backend.map_shards` returning results in task order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.core.coreset import gmm_coreset
from repro.metrics.base import Metric
from repro.data.element import Element
from repro.utils.validation import require_positive_int


def merge_pair(
    left: Sequence[Element],
    right: Sequence[Element],
    metric: Metric,
    k: int,
    start_index: int = 0,
) -> List[Element]:
    """Union two summaries (by uid, left first) and re-summarise per group.

    Re-summarising keeps every merged summary at ``O(k)`` elements per
    group plus ``k`` group-blind picks, so the tree's working set does not
    grow with its depth.
    """
    union: Dict[int, Element] = {}
    for element in left:
        union.setdefault(element.uid, element)
    for element in right:
        union.setdefault(element.uid, element)
    return gmm_coreset(
        list(union.values()), metric, k, per_group=True, start_index=start_index
    )


def merge_tree(
    summaries: Sequence[Sequence[Element]],
    metric: Metric,
    k: int,
    start_index: int = 0,
) -> Tuple[List[Element], int]:
    """Reduce per-shard summaries to one coreset; returns ``(coreset, rounds)``.

    Empty summaries are dropped up front; an odd summary at any round is
    carried to the next round unchanged.  A single (or no) summary needs no
    merging and is returned after deduplication by uid.
    """
    k = require_positive_int(k, "k")
    level: List[List[Element]] = [list(summary) for summary in summaries if summary]
    if not level:
        return [], 0
    rounds = 0
    while len(level) > 1:
        with obs.span("merge_tree.level", level=rounds, summaries=len(level)):
            merged: List[List[Element]] = []
            for index in range(0, len(level) - 1, 2):
                merged.append(
                    merge_pair(level[index], level[index + 1], metric, k, start_index)
                )
            if len(level) % 2 == 1:
                merged.append(level[-1])
            level = merged
        rounds += 1
    deduplicated: Dict[int, Element] = {}
    for element in level[0]:
        deduplicated.setdefault(element.uid, element)
    return list(deduplicated.values()), rounds
