"""Binary merge tree over per-shard coreset summaries, batched per level.

Composable coresets merge by union: the union of per-shard summaries is
itself a coreset of the full data.  Unioning all shards at once would let
the driver-side pool grow linearly with the shard count, so the merge is
organised as a binary reduction tree instead: summaries are paired off
left-to-right, every pair is unioned and immediately re-summarised with
the same per-group GMM rule the shards used, and the survivors advance to
the next round.  Driver memory therefore stays ``O(k · m)`` per live
summary and the tree has ``ceil(log2(shards))`` rounds — the shape a
distributed aggregation (tree-reduce) would use, run here on the driver
because merged summaries are tiny.

The recompositions are *kernel-dense*: each level concatenates its
surviving summaries into one columnar
:class:`~repro.data.store.ElementStore` (one vectorized stack), dedups
each pair's rows with one ``np.unique`` over the uid column, and runs the
per-group GMM re-summarisation on zero-copy row slices of the level store
— so the per-element object loops the tree used to pay per pair are gone,
while the selected uids (and the charged distance counts) are provably
identical to the object path: :func:`~repro.core.coreset.gmm_coreset` on
a store reproduces the element-path selection bitwise, and first-
occurrence uid dedup is exactly the ``dict.setdefault`` union order.
Summaries that cannot columnarise (ragged or categorical payloads) fall
back to that object path per pair.

The pairing is strictly positional (shard order, not completion order),
which is one half of the cross-backend determinism guarantee; the other
half is :meth:`Backend.map_shards` returning results in task order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.coreset import gmm_coreset
from repro.data.store import ElementStore
from repro.metrics.base import Metric
from repro.data.element import Element
from repro.utils.validation import require_positive_int


def _first_occurrence_rows(uids: np.ndarray) -> Optional[np.ndarray]:
    """Rows keeping the first occurrence of every uid, in original order.

    Returns ``None`` when every uid is already distinct (the common case
    once summaries come from disjoint shards), so callers can skip the
    gather entirely and stay zero-copy.
    """
    _, first = np.unique(uids, return_index=True)
    if len(first) == len(uids):
        return None
    return np.sort(first)


def _merge_pair_store(
    pair: ElementStore, metric: Metric, k: int, start_index: int
) -> List[Element]:
    """Re-summarise one deduplicated pair slice with the per-group GMM rule."""
    keep = _first_occurrence_rows(pair.uids)
    if keep is not None:
        pair = pair.select(keep)
    return gmm_coreset(pair, metric, k, per_group=True, start_index=start_index)


def merge_pair(
    left: Sequence[Element],
    right: Sequence[Element],
    metric: Metric,
    k: int,
    start_index: int = 0,
) -> List[Element]:
    """Union two summaries (by uid, left first) and re-summarise per group.

    Re-summarising keeps every merged summary at ``O(k)`` elements per
    group plus ``k`` group-blind picks, so the tree's working set does not
    grow with its depth.  Columnar payloads take the store-backed kernel
    path; any other payload falls back to the element-object union.
    """
    combined = list(left) + list(right)
    store = ElementStore.try_from_elements(combined)
    if store is not None:
        return _merge_pair_store(store, metric, k, start_index)
    union: Dict[int, Element] = {}
    for element in combined:
        union.setdefault(element.uid, element)
    return gmm_coreset(
        list(union.values()), metric, k, per_group=True, start_index=start_index
    )


def merge_tree(
    summaries: Sequence[Sequence[Element]],
    metric: Metric,
    k: int,
    start_index: int = 0,
) -> Tuple[List[Element], int]:
    """Reduce per-shard summaries to one coreset; returns ``(coreset, rounds)``.

    Empty summaries are dropped up front; an odd summary at any round is
    carried to the next round unchanged.  A single (or no) summary needs no
    merging and is returned after deduplication by uid.  Each round stacks
    its paired summaries into one level store and re-summarises every pair
    on zero-copy row slices (see the module docstring); the selected uids
    are identical to per-pair :func:`merge_pair` calls.
    """
    k = require_positive_int(k, "k")
    level: List[List[Element]] = [list(summary) for summary in summaries if summary]
    if not level:
        return [], 0
    rounds = 0
    while len(level) > 1:
        with obs.span("merge.batch", level=rounds, summaries=len(level)):
            paired = len(level) - len(level) % 2
            flat: List[Element] = [
                element for summary in level[:paired] for element in summary
            ]
            level_store = ElementStore.try_from_elements(flat)
            merged: List[List[Element]] = []
            cursor = 0
            for index in range(0, paired, 2):
                span = len(level[index]) + len(level[index + 1])
                if level_store is not None:
                    merged.append(
                        _merge_pair_store(
                            level_store.slice(cursor, cursor + span),
                            metric,
                            k,
                            start_index,
                        )
                    )
                else:
                    merged.append(
                        merge_pair(
                            level[index], level[index + 1], metric, k, start_index
                        )
                    )
                cursor += span
            if len(level) % 2 == 1:
                merged.append(level[-1])
            level = merged
        rounds += 1
    deduplicated: Dict[int, Element] = {}
    for element in level[0]:
        deduplicated.setdefault(element.uid, element)
    return list(deduplicated.values()), rounds
