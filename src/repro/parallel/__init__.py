"""Sharded parallel execution engine for fair diversity maximization.

This package scales the library beyond a single core by combining three
orthogonal pieces — each independently replaceable:

* **planning** (:mod:`repro.parallel.planner`): partition a stream into
  shards, contiguously or group-stratified;
* **execution** (:mod:`repro.parallel.backends`): run per-shard summaries
  serially, on threads, or on worker processes behind one ``map_shards``
  contract;
* **merging** (:mod:`repro.parallel.summarize`,
  :mod:`repro.parallel.merge`): compress each shard to a fair composable
  coreset and reduce the summaries through a binary merge tree.

:class:`~repro.parallel.driver.ParallelFDM` wires them into a runnable
algorithm with the library's standard :class:`~repro.core.result.RunResult`
interface; the evaluation harness and the CLI expose it next to the
paper's algorithms (``--shards`` / ``--backend``).
"""

from repro.parallel.backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    resolve_backend,
)
from repro.parallel.driver import ParallelFDM
from repro.parallel.merge import merge_pair, merge_tree
from repro.parallel.planner import STRATEGIES, ShardPlanner
from repro.parallel.summarize import (
    SUMMARIZERS,
    GMMShardSummarizer,
    ShardSummarizer,
    StreamShardSummarizer,
    resolve_summarizer,
)

__all__ = [
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "backend_names",
    "resolve_backend",
    "ShardPlanner",
    "STRATEGIES",
    "ShardSummarizer",
    "GMMShardSummarizer",
    "StreamShardSummarizer",
    "SUMMARIZERS",
    "resolve_summarizer",
    "merge_pair",
    "merge_tree",
    "ParallelFDM",
]
