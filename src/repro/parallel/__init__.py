"""Sharded parallel execution engine for fair diversity maximization.

This package scales the library beyond a single core by combining four
orthogonal pieces — each independently replaceable:

* **planning** (:mod:`repro.parallel.planner`): partition a stream into
  shards, contiguously or group-stratified, and — for ``backend="auto"``
  — pick the backend and shard count from a tunable cost model over the
  input size and usable CPUs;
* **transport** (:mod:`repro.parallel.shm`): ship shards to process
  workers through one read-only ``multiprocessing.shared_memory`` block
  (workers attach zero-copy NumPy views from ``(offset, length)``
  descriptors), degrading to pickled columnar stores when shared memory
  is unavailable;
* **execution** (:mod:`repro.parallel.backends`): run per-shard summaries
  serially, on threads, or on worker processes behind one ``map_shards``
  contract;
* **merging** (:mod:`repro.parallel.summarize`,
  :mod:`repro.parallel.merge`): compress each shard to a fair composable
  coreset and reduce the summaries through a binary merge tree whose
  levels run on batched columnar kernels.

:class:`~repro.parallel.driver.ParallelFDM` wires them into a runnable
algorithm with the library's standard :class:`~repro.core.result.RunResult`
interface; the evaluation harness and the CLI expose it next to the
paper's algorithms (``--shards`` / ``--backend`` / ``--transport``).
Neither the backend, the transport, nor the planner's choices ever
change the computed solution — only where and how fast it is computed.
"""

from repro.parallel.backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    resolve_backend,
    usable_cpus,
)
from repro.parallel.driver import ParallelFDM
from repro.parallel.merge import merge_pair, merge_tree
from repro.parallel.planner import (
    STRATEGIES,
    ExecutionPlan,
    ExecutionPlanner,
    ShardPlanner,
)
from repro.parallel.shm import (
    TRANSPORTS,
    AttachedShard,
    ShardRef,
    StoreBlock,
    detach_elements,
    publish_shards,
    ship_shards,
    shm_available,
)
from repro.parallel.summarize import (
    SUMMARIZERS,
    GMMShardSummarizer,
    ShardSummarizer,
    StreamShardSummarizer,
    resolve_summarizer,
)

__all__ = [
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "backend_names",
    "resolve_backend",
    "usable_cpus",
    "ShardPlanner",
    "STRATEGIES",
    "ExecutionPlan",
    "ExecutionPlanner",
    "TRANSPORTS",
    "ShardRef",
    "AttachedShard",
    "StoreBlock",
    "publish_shards",
    "ship_shards",
    "shm_available",
    "detach_elements",
    "ShardSummarizer",
    "GMMShardSummarizer",
    "StreamShardSummarizer",
    "SUMMARIZERS",
    "resolve_summarizer",
    "merge_pair",
    "merge_tree",
    "ParallelFDM",
]
