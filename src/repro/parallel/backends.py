"""Execution backends: where per-shard work runs.

A :class:`Backend` turns a list of independent shard tasks into a list of
results.  The contract is deliberately tiny so that the rest of the
parallel layer never cares *where* the work happens:

* :meth:`Backend.map_shards` applies one callable to every task and
  returns the results **in task order**, regardless of completion order —
  the coreset merge tree downstream pairs summaries positionally, so
  ordering is what makes results identical across backends;
* a task that raises propagates its exception to the caller (no silent
  dropping of shards);
* an empty task list returns an empty result list without spinning up any
  worker machinery.

Three implementations ship with the library: :class:`SerialBackend` (the
reference semantics — a plain loop), :class:`ThreadBackend` (a thread pool;
pays off when the per-shard work releases the GIL, as the NumPy distance
kernels do), and :class:`ProcessBackend` (a process pool via
:mod:`concurrent.futures`; true CPU parallelism, requires the callable and
the tasks to be picklable).  :func:`resolve_backend` maps the CLI-facing
names to instances and validates eagerly, mirroring the ``--batch-size``
convention of failing loudly before any run starts.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.utils.errors import InvalidParameterError

#: One shard task: any picklable payload the mapped callable understands.
ShardTask = Any


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    Prefers the scheduler affinity mask (which reflects cgroup/container
    limits) over ``os.cpu_count()`` (which reports the physical machine);
    spawning more workers than usable CPUs only adds scheduling overhead.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class Backend(ABC):
    """Strategy object that maps a callable over independent shard tasks."""

    #: CLI-facing name (``"serial"``, ``"thread"``, ``"process"``).
    name: str = "backend"

    #: Whether tasks cross a process boundary and must therefore be
    #: picklable.  In-process backends leave this ``False`` so callers can
    #: skip compact-packing work that only pays off for pickling.
    requires_pickling: bool = False

    @abstractmethod
    def map_shards(
        self, fn: Callable[[ShardTask], Any], tasks: Sequence[ShardTask]
    ) -> List[Any]:
        """Apply ``fn`` to every task and return the results in task order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(Backend):
    """Run every shard in the calling thread — the reference semantics."""

    name = "serial"

    def map_shards(
        self, fn: Callable[[ShardTask], Any], tasks: Sequence[ShardTask]
    ) -> List[Any]:
        """Apply ``fn`` sequentially; the baseline every other backend must match."""
        return [fn(task) for task in tasks]


class _PoolBackend(Backend):
    """Shared executor plumbing for the thread and process backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise InvalidParameterError(
                f"max_workers must be a positive integer, got {max_workers}"
            )
        self.max_workers = max_workers

    def _worker_count(self, num_tasks: int) -> int:
        """Workers for ``num_tasks`` tasks: bounded by tasks and the configured cap."""
        workers = self.max_workers if self.max_workers is not None else num_tasks
        return max(1, min(workers, num_tasks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers!r})"


class ThreadBackend(_PoolBackend):
    """Run shards on a thread pool.

    Threads share the interpreter, so the payoff depends on the per-shard
    work releasing the GIL — which the NumPy batch kernels used by the
    shard summarizers do during their distance computations.  Tasks need
    not be picklable, which makes this the drop-in choice for metrics or
    payloads that the process backend cannot ship.
    """

    name = "thread"

    def map_shards(
        self, fn: Callable[[ShardTask], Any], tasks: Sequence[ShardTask]
    ) -> List[Any]:
        """Apply ``fn`` on a temporary thread pool; results keep task order."""
        if not tasks:
            return []
        with ThreadPoolExecutor(max_workers=self._worker_count(len(tasks))) as executor:
            return list(executor.map(fn, tasks))


class ProcessBackend(_PoolBackend):
    """Run shards on a process pool — true CPU parallelism.

    The mapped callable must be a module-level function and the tasks must
    be picklable (the driver packs shards into compact arrays for exactly
    this reason).  Worker count defaults to ``min(tasks, usable CPUs)``
    (affinity-aware, see :func:`usable_cpus`); oversubscribing a box with
    more worker processes than cores only adds scheduling overhead.
    """

    name = "process"
    requires_pickling = True

    def _worker_count(self, num_tasks: int) -> int:
        """Like the pool default but additionally capped at the usable CPUs."""
        cap = self.max_workers if self.max_workers is not None else usable_cpus()
        return max(1, min(cap, num_tasks))

    def map_shards(
        self, fn: Callable[[ShardTask], Any], tasks: Sequence[ShardTask]
    ) -> List[Any]:
        """Apply ``fn`` on a temporary process pool; results keep task order."""
        if not tasks:
            return []
        with ProcessPoolExecutor(max_workers=self._worker_count(len(tasks))) as executor:
            return list(executor.map(fn, tasks))


#: Name -> backend class for every built-in backend, in documentation order.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def backend_names() -> List[str]:
    """The CLI-facing names of the built-in backends."""
    return list(BACKENDS.keys())


def resolve_backend(spec: Union[str, Backend, None]) -> Backend:
    """Normalise a backend specification to a :class:`Backend` instance.

    Accepts an existing instance (returned unchanged), one of the built-in
    names, or ``None`` (the serial backend).  Unknown names raise
    :class:`InvalidParameterError` eagerly so a typo fails before any shard
    work starts.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, Backend):
        return spec
    if isinstance(spec, str):
        backend_class = BACKENDS.get(spec)
        if backend_class is None:
            raise InvalidParameterError(
                f"unknown backend {spec!r}; available: {', '.join(backend_names())}"
            )
        return backend_class()
    raise InvalidParameterError(
        f"backend must be a Backend instance or one of {backend_names()}, got {spec!r}"
    )
