"""Zero-copy shared-memory shard transport for the parallel engine.

Shipping a shard to a process worker used to mean pickling its columns:
cheap compared to per-element pickles, but still one full copy of every
feature row serialised into the task queue, a second copy deserialised
inside the worker, and all of it repeated per run.  This module removes
the copies: the driver publishes the columnar arrays of *all* shards into
one read-only :mod:`multiprocessing.shared_memory` block, and each worker
receives only a tiny :class:`ShardRef` descriptor — block name plus
``(offset, length)`` per column — from which it reconstructs its shard as
zero-copy NumPy views over the mapped block.

Payload formats (what actually crosses the pickle boundary per shard):

================  ==========================================  ============
transport          pickled payload                             array copies
================  ==========================================  ============
``shm``            :class:`ShardRef` (a few hundred bytes)     0 (views)
``pickle``         :class:`~repro.data.store.ElementStore`     2 (out + in)
in-process         the element list itself (never pickled)     0
================  ==========================================  ============

Fallback matrix (every degradation is logged through the ``repro``
logger, never silent):

* ``multiprocessing.shared_memory`` unavailable on the platform → pickle;
* a shard whose payloads are not columnar (ragged or categorical data,
  precomputed-matrix indices) → pickle, element lists for the non-columnar
  shards;
* the block allocation or publish itself raises (``OSError`` on exhausted
  ``/dev/shm``, for instance) → pickle, after unwinding any partial block.

Lifecycle: the driver owns the block via :class:`StoreBlock` (a context
manager); workers attach with :meth:`ShardRef.attach` and close their
mapping when done.  :class:`StoreBlock` guarantees the segment is
unlinked even on abnormal exits through a :mod:`weakref` finalizer (which
also runs at interpreter shutdown, like ``atexit``), and every close and
unlink is idempotent.
"""

from __future__ import annotations

import logging
import weakref
from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.data.store import ElementStore

logger = logging.getLogger("repro")

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

#: Shard transports accepted by the driver, in documentation order.
TRANSPORTS: Tuple[str, ...] = ("auto", "shm", "pickle")

#: Column dtypes of a published store, in block layout order.
_FEATURE_DTYPE = np.float64
_INT_DTYPE = np.int64


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` exists on this platform."""
    return _shared_memory is not None


def _dispose_segment(segment) -> None:
    """Close and unlink one segment, tolerating every repeat/ordering error.

    Used directly and as the :class:`StoreBlock` finalizer, so it must be
    safe to call after a manual close/unlink and on half-dead interpreters.
    """
    try:
        segment.close()
    except Exception:
        pass
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except Exception:
        pass


class ShardRef(NamedTuple):
    """Descriptor of one shard inside a published shared-memory block.

    This is the *entire* per-worker payload on the shm transport: the
    block name, the shard geometry, and the byte offsets of its three
    columns.  It pickles in O(1) regardless of the shard size.  Labels
    are reporting-only and rare, so they ride along as a plain list
    instead of earning a fourth column.
    """

    block_name: str
    count: int
    dim: int
    features_offset: int
    groups_offset: int
    uids_offset: int
    labels: Optional[List[Optional[str]]]

    def attach(self) -> "AttachedShard":
        """Map the published block and rebuild this shard as zero-copy views."""
        if _shared_memory is None:  # pragma: no cover - platform-gated
            raise RuntimeError("shared_memory is unavailable on this platform")
        with obs.span(
            "parallel.shm.attach", block=self.block_name, elements=self.count
        ):
            # Attaching re-registers the name with the resource tracker
            # (CPython < 3.13 has no ``track=False``), but worker pools
            # share the driver's tracker process — fork inherits it and
            # spawn ships its fd in the preparation data — so the repeat
            # registration is a set no-op and the driver's one ``unlink``
            # still retires the name exactly once.
            segment = _shared_memory.SharedMemory(name=self.block_name)
            features = np.frombuffer(
                segment.buf,
                dtype=_FEATURE_DTYPE,
                count=self.count * self.dim,
                offset=self.features_offset,
            ).reshape(self.count, self.dim)
            groups = np.frombuffer(
                segment.buf, dtype=_INT_DTYPE, count=self.count,
                offset=self.groups_offset,
            )
            uids = np.frombuffer(
                segment.buf, dtype=_INT_DTYPE, count=self.count,
                offset=self.uids_offset,
            )
            # The block is a broadcast, not a scratch pad: a worker writing
            # through a view would corrupt every sibling's input.
            for column in (features, groups, uids):
                column.flags.writeable = False
            store = ElementStore(features, groups, uids=uids, labels=self.labels)
        return AttachedShard(segment, store)


class AttachedShard:
    """A worker-side mapping of one published shard.

    Holds the :class:`~repro.data.store.ElementStore` whose columns are
    views into the shared block, plus the mapping itself so the worker can
    release it deterministically.  Anything the worker wants to outlive
    :meth:`close` (the summary it returns) must be detached first — see
    :func:`detach_elements`.
    """

    def __init__(self, segment, store: ElementStore) -> None:
        self._segment = segment
        self.store: Optional[ElementStore] = store

    def close(self) -> None:
        """Release the mapping; idempotent, and never raises on live views."""
        segment, self._segment = self._segment, None
        self.store = None
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:  # pragma: no cover - defensive; caller kept views
            logger.warning(
                "shared-memory shard still has exported views at close; "
                "the mapping will be released when they are garbage-collected"
            )

    def __enter__(self) -> "AttachedShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StoreBlock:
    """A published shared-memory block holding the columns of many shards.

    Owns the segment driver-side.  ``close()`` unmaps it locally,
    ``unlink()`` removes the name from the system; both are idempotent,
    and a :mod:`weakref` finalizer guarantees both run at garbage
    collection or interpreter exit even if the owner forgot — the segment
    can never outlive the run that published it.
    """

    def __init__(self, segment, refs: List[ShardRef]) -> None:
        self._segment = segment
        self.refs = refs
        self._closed = False
        self._unlinked = False
        self._finalizer = weakref.finalize(self, _dispose_segment, segment)

    @property
    def name(self) -> str:
        """System-wide name of the underlying segment."""
        return self._segment.name

    @property
    def nbytes(self) -> int:
        """Size of the published block in bytes."""
        return self._segment.size

    def close(self) -> None:
        """Unmap the block from this process; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - defensive
            logger.warning(
                "shared-memory block %s still has exported views at close",
                self._segment.name,
            )

    def unlink(self) -> None:
        """Remove the segment name; safe to call repeatedly or after a race."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._segment.unlink()
        except FileNotFoundError:
            # A worker's resource tracker may have beaten us to it.
            pass

    def dispose(self) -> None:
        """Close and unlink in one idempotent call (the normal teardown)."""
        self.close()
        self.unlink()
        self._finalizer.detach()

    def __enter__(self) -> "StoreBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.dispose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreBlock(name={self.name!r}, shards={len(self.refs)}, bytes={self.nbytes})"


def publish_shards(stores: Sequence[ElementStore]) -> StoreBlock:
    """Publish shard stores into one shared-memory block.

    The block lays the three columns of every shard back to back (all
    column dtypes are 8-byte, so natural alignment is automatic) and
    returns a :class:`StoreBlock` whose ``refs`` — one O(1)-pickling
    :class:`ShardRef` per shard — are the worker payloads.

    Raises whatever the platform raises when the segment cannot be
    created or filled (the driver degrades to pickle on any failure).
    """
    if _shared_memory is None:
        raise RuntimeError("shared_memory is unavailable on this platform")
    offsets: List[Tuple[int, int, int]] = []
    cursor = 0
    for store in stores:
        n, d = len(store), store.dim
        features_offset = cursor
        groups_offset = features_offset + n * d * np.dtype(_FEATURE_DTYPE).itemsize
        uids_offset = groups_offset + n * np.dtype(_INT_DTYPE).itemsize
        cursor = uids_offset + n * np.dtype(_INT_DTYPE).itemsize
        offsets.append((features_offset, groups_offset, uids_offset))
    total = max(cursor, 1)  # zero-size segments are rejected by the OS
    with obs.span("parallel.shm.publish", shards=len(stores), bytes=total):
        segment = _shared_memory.SharedMemory(create=True, size=total)
        try:
            refs: List[ShardRef] = []
            for store, (features_offset, groups_offset, uids_offset) in zip(
                stores, offsets
            ):
                n, d = len(store), store.dim
                np.frombuffer(
                    segment.buf, dtype=_FEATURE_DTYPE, count=n * d,
                    offset=features_offset,
                )[:] = store.features.ravel()
                np.frombuffer(
                    segment.buf, dtype=_INT_DTYPE, count=n, offset=groups_offset
                )[:] = store.groups
                np.frombuffer(
                    segment.buf, dtype=_INT_DTYPE, count=n, offset=uids_offset
                )[:] = store.uids
                refs.append(
                    ShardRef(
                        block_name=segment.name,
                        count=n,
                        dim=d,
                        features_offset=features_offset,
                        groups_offset=groups_offset,
                        uids_offset=uids_offset,
                        labels=store.labels,
                    )
                )
        except BaseException:
            _dispose_segment(segment)
            raise
    return StoreBlock(segment, refs)


def detach_elements(elements: Sequence) -> List:
    """Deep-copy store-view elements so they survive the store's buffer.

    Workers summarising an shm-backed store get back elements whose
    payloads are views into the mapped block; those must not escape the
    worker (the mapping is released before the summary is pickled back).
    Detaching copies exactly the selected rows — the same bytes pickling
    would have copied anyway.
    """
    from repro.data.element import Element

    detached = []
    for element in elements:
        payload = element.vector
        if isinstance(payload, np.ndarray):
            payload = np.array(payload, dtype=payload.dtype, copy=True)
        detached.append(
            Element(
                uid=element.uid, vector=payload, group=element.group,
                label=element.label,
            )
        )
    return detached


def ship_shards(
    shards: Sequence[Sequence],
    transport: str = "auto",
) -> Tuple[List, Optional[StoreBlock], str]:
    """Pick the shipping payload for every shard; returns ``(payloads, block, used)``.

    ``transport`` is one of :data:`TRANSPORTS`: ``"shm"`` and ``"auto"``
    publish one shared block and ship :class:`ShardRef` descriptors when
    every shard is columnar and the platform cooperates, degrading to
    pickle (with a logged warning for ``"shm"``/a debug note for
    ``"auto"``) otherwise; ``"pickle"`` ships columnar shards as
    :class:`~repro.data.store.ElementStore` pickles and non-columnar
    shards as plain element lists.  ``used`` names the transport that
    actually applies; ``block`` is the published :class:`StoreBlock` (the
    caller must ``dispose()`` it after the map completes) or ``None``.
    """
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    stores = [ElementStore.try_from_elements(list(shard)) for shard in shards]
    if transport != "pickle":
        reason = None
        if not shm_available():
            reason = "multiprocessing.shared_memory is unavailable"
        elif any(store is None for store in stores):
            reason = "shard payloads are not columnar"
        else:
            try:
                block = publish_shards(stores)
                return list(block.refs), block, "shm"
            except Exception as error:
                reason = f"publish failed: {error}"
        log = logger.warning if transport == "shm" else logger.debug
        log("shared-memory shard transport degraded to pickle (%s)", reason)
    payloads = [
        store if store is not None else list(shard)
        for store, shard in zip(stores, shards)
    ]
    return payloads, None, "pickle"
