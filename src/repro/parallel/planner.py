"""Shard planning: how a stream is partitioned and where the shards run.

Two planners live here.  :class:`ShardPlanner` turns a
:class:`~repro.streaming.stream.DataStream` (or any element sequence)
into a list of shards — disjoint element lists whose concatenation covers
the input — and :class:`ExecutionPlanner` decides, from the input size,
the dimensionality, and the usable CPU count, *which backend and how many
shards* are worth using at all (``backend="auto"``).

:class:`ShardPlanner` supports two strategies:

``"contiguous"``
    Consecutive, near-equal slices of the stream order (the classic
    "split the log file" partition).  Cheapest, and the natural choice
    when the data is already randomly ordered.

``"stratified"``
    Group-aware dealing: the elements of every group are distributed
    round-robin across the shards, with each group's dealing staggered by
    its order of first appearance.  A protected group with at least as
    many members as shards therefore appears in *every* shard, and a tiny
    group is spread over distinct shards instead of being stranded in one
    — which is what keeps every per-shard fair summary feasible to merge.

Both strategies preserve the relative stream order within each shard, so
for a fixed input order the plan is deterministic; shuffling is the
stream's job (``DataStream.shuffle_seed``), not the planner's.  When the
input has fewer elements than the requested shard count the plan degrades
gracefully to one element per shard.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.core.coreset import partition_elements
from repro.data.element import Element
from repro.parallel.backends import usable_cpus
from repro.utils.errors import EmptyStreamError, InvalidParameterError
from repro.utils.validation import require_positive_int

#: Valid planning strategies, in documentation order.
STRATEGIES: Tuple[str, ...] = ("contiguous", "stratified")

#: Anything the planner can shard: a DataStream, list, or other iterable.
ShardSource = Union[Iterable[Element], Sequence[Element]]


class ShardPlanner:
    """Partition a stream or element collection into shards.

    Parameters
    ----------
    num_shards:
        Requested number of shards; the plan may contain fewer for tiny
        inputs (never more), and never contains an empty shard.
    strategy:
        ``"contiguous"`` or ``"stratified"`` (see the module docstring).
    """

    def __init__(self, num_shards: int, strategy: str = "contiguous") -> None:
        self.num_shards = require_positive_int(num_shards, "num_shards")
        if strategy not in STRATEGIES:
            raise InvalidParameterError(
                f"strategy must be one of {', '.join(STRATEGIES)}, got {strategy!r}"
            )
        self.strategy = strategy

    def plan(self, source: ShardSource) -> List[List[Element]]:
        """Materialise ``source`` in its iteration order and shard it.

        Iterating the source is what applies a :class:`DataStream`'s
        shuffle permutation, so the plan for a fixed ``(stream seed,
        num_shards, strategy)`` triple is fully deterministic.
        """
        elements = list(source)
        if not elements:
            raise EmptyStreamError("cannot shard an empty element collection")
        if self.strategy == "contiguous":
            return partition_elements(elements, self.num_shards)
        return self._stratified(elements)

    def _stratified(self, elements: List[Element]) -> List[List[Element]]:
        """Deal each group round-robin across the shards, staggered per group."""
        num_parts = min(self.num_shards, len(elements))
        shards: List[List[Element]] = [[] for _ in range(num_parts)]
        # Per-group dealing cursor, started at the group's first-appearance
        # rank so that several tiny groups land on *different* shards
        # instead of all piling onto shard 0.
        cursors: Dict[int, int] = {}
        for element in elements:
            cursor = cursors.setdefault(element.group, len(cursors))
            shards[cursor % num_parts].append(element)
            cursors[element.group] = cursor + 1
        # Staggered dealing can leave trailing shards empty when there are
        # fewer "dealing rounds" than shards (only possible for tiny
        # inputs); drop them rather than hand workers empty work.
        return [shard for shard in shards if shard]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardPlanner(num_shards={self.num_shards}, strategy={self.strategy!r})"


class ExecutionPlan(NamedTuple):
    """One adaptive execution decision: backend, shard count, chunking.

    ``reason`` is a short human-readable justification recorded in the
    run's params so a trace reader can see *why* a run stayed serial.
    """

    backend: str
    shards: int
    chunk_size: int
    reason: str


class ExecutionPlanner:
    """Pick backend, shard count, and chunking from a tunable cost model.

    The model is deliberately coarse — three knobs, all in row units —
    because the decision it guards is coarse: forking a process pool and
    shipping shards only pays off once the per-shard summary work
    dominates the fixed pool start-up cost.  Wider feature rows mean more
    kernel work per row, so the effective size scales ``n · max(1, d/8)``.

    Parameters
    ----------
    serial_cutoff:
        Effective rows below which the plan always stays serial (default
        32 768 — at that size a full per-shard summary takes milliseconds,
        less than a process pool costs to start).
    rows_per_shard:
        Target effective rows per shard; the shard count is the input
        size divided by this, clamped to ``[1, max_shards]`` (and to the
        CPU count on the process backend — more workers than cores only
        adds scheduling overhead).
    max_shards:
        Hard upper bound on the planned shard count (default 32).
    cpus:
        Usable CPU count override, for tests; defaults to the scheduler
        affinity mask via :func:`~repro.parallel.backends.usable_cpus`.

    The decision never affects the computed solution — backends are
    solution-transparent by construction — so an ``"auto"`` run on a
    laptop and on a 64-core box return byte-identical answers.
    """

    def __init__(
        self,
        serial_cutoff: int = 32_768,
        rows_per_shard: int = 16_384,
        max_shards: int = 32,
        cpus: Optional[int] = None,
    ) -> None:
        self.serial_cutoff = require_positive_int(serial_cutoff, "serial_cutoff")
        self.rows_per_shard = require_positive_int(rows_per_shard, "rows_per_shard")
        self.max_shards = require_positive_int(max_shards, "max_shards")
        self.cpus = cpus if cpus is None else require_positive_int(cpus, "cpus")

    def _effective_rows(self, n: int, dim: int) -> int:
        """Input size scaled by kernel work per row (``n · max(1, d/8)``)."""
        return int(n * max(1.0, dim / 8.0))

    def plan(self, n: int, dim: int = 1) -> ExecutionPlan:
        """The execution decision for an input of ``n`` rows of width ``dim``.

        Small inputs stay serial with just enough shards to keep the merge
        tree exercised; large inputs on a multi-core machine go to the
        process backend with one shard per usable CPU (or more, up to the
        per-shard row target, so shards stay cache-sized).
        """
        cpus = self.cpus if self.cpus is not None else usable_cpus()
        rows = self._effective_rows(max(n, 1), max(dim, 1))
        by_rows = max(1, math.ceil(rows / self.rows_per_shard))
        if rows < self.serial_cutoff or cpus <= 1:
            shards = min(4, by_rows, self.max_shards)
            reason = (
                f"single usable cpu (n={n})"
                if cpus <= 1
                else f"input below serial cutoff ({rows} < {self.serial_cutoff} effective rows)"
            )
            return ExecutionPlan("serial", shards, self._chunk(n, shards), reason)
        shards = min(self.max_shards, max(cpus, min(by_rows, 2 * cpus)))
        reason = f"{rows} effective rows across {cpus} usable cpus"
        return ExecutionPlan("process", shards, self._chunk(n, shards), reason)

    def _chunk(self, n: int, shards: int) -> int:
        """A power-of-two ingestion chunk sized to ~1/8 of a shard."""
        per_shard = max(1, n // max(shards, 1))
        target = max(256, min(4096, per_shard // 8))
        return 1 << (target - 1).bit_length()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionPlanner(serial_cutoff={self.serial_cutoff}, "
            f"rows_per_shard={self.rows_per_shard}, max_shards={self.max_shards})"
        )
