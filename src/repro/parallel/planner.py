"""Shard planning: how a stream is partitioned across workers.

The planner turns a :class:`~repro.streaming.stream.DataStream` (or any
element sequence) into a list of shards — disjoint element lists whose
concatenation covers the input — using one of two strategies:

``"contiguous"``
    Consecutive, near-equal slices of the stream order (the classic
    "split the log file" partition).  Cheapest, and the natural choice
    when the data is already randomly ordered.

``"stratified"``
    Group-aware dealing: the elements of every group are distributed
    round-robin across the shards, with each group's dealing staggered by
    its order of first appearance.  A protected group with at least as
    many members as shards therefore appears in *every* shard, and a tiny
    group is spread over distinct shards instead of being stranded in one
    — which is what keeps every per-shard fair summary feasible to merge.

Both strategies preserve the relative stream order within each shard, so
for a fixed input order the plan is deterministic; shuffling is the
stream's job (``DataStream.shuffle_seed``), not the planner's.  When the
input has fewer elements than the requested shard count the plan degrades
gracefully to one element per shard.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.core.coreset import partition_elements
from repro.data.element import Element
from repro.utils.errors import EmptyStreamError, InvalidParameterError
from repro.utils.validation import require_positive_int

#: Valid planning strategies, in documentation order.
STRATEGIES: Tuple[str, ...] = ("contiguous", "stratified")

#: Anything the planner can shard: a DataStream, list, or other iterable.
ShardSource = Union[Iterable[Element], Sequence[Element]]


class ShardPlanner:
    """Partition a stream or element collection into shards.

    Parameters
    ----------
    num_shards:
        Requested number of shards; the plan may contain fewer for tiny
        inputs (never more), and never contains an empty shard.
    strategy:
        ``"contiguous"`` or ``"stratified"`` (see the module docstring).
    """

    def __init__(self, num_shards: int, strategy: str = "contiguous") -> None:
        self.num_shards = require_positive_int(num_shards, "num_shards")
        if strategy not in STRATEGIES:
            raise InvalidParameterError(
                f"strategy must be one of {', '.join(STRATEGIES)}, got {strategy!r}"
            )
        self.strategy = strategy

    def plan(self, source: ShardSource) -> List[List[Element]]:
        """Materialise ``source`` in its iteration order and shard it.

        Iterating the source is what applies a :class:`DataStream`'s
        shuffle permutation, so the plan for a fixed ``(stream seed,
        num_shards, strategy)`` triple is fully deterministic.
        """
        elements = list(source)
        if not elements:
            raise EmptyStreamError("cannot shard an empty element collection")
        if self.strategy == "contiguous":
            return partition_elements(elements, self.num_shards)
        return self._stratified(elements)

    def _stratified(self, elements: List[Element]) -> List[List[Element]]:
        """Deal each group round-robin across the shards, staggered per group."""
        num_parts = min(self.num_shards, len(elements))
        shards: List[List[Element]] = [[] for _ in range(num_parts)]
        # Per-group dealing cursor, started at the group's first-appearance
        # rank so that several tiny groups land on *different* shards
        # instead of all piling onto shard 0.
        cursors: Dict[int, int] = {}
        for element in elements:
            cursor = cursors.setdefault(element.group, len(cursors))
            shards[cursor % num_parts].append(element)
            cursors[element.group] = cursor + 1
        # Staggered dealing can leave trailing shards empty when there are
        # fewer "dealing rounds" than shards (only possible for tiny
        # inputs); drop them rather than hand workers empty work.
        return [shard for shard in shards if shard]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardPlanner(num_shards={self.num_shards}, strategy={self.strategy!r})"
