"""``ParallelFDM``: sharded fair diversity maximization, end to end.

The driver stitches the parallel layer together:

1. a :class:`~repro.parallel.planner.ShardPlanner` partitions the stream
   (group-stratified by default, so small protected groups are spread
   across shards rather than stranded in one);
2. every shard is summarised on a
   :class:`~repro.parallel.backends.Backend` worker — cut out as a
   columnar :class:`~repro.data.store.ElementStore` (three arrays pickle
   orders of magnitude faster than 25 000 individual ``Element``
   pickles) when the backend crosses a process boundary, and handed over
   untouched for the in-process backends — with a
   :class:`~repro.parallel.summarize.ShardSummarizer` — by default the
   per-group GMM composable coreset, computed with the vectorized batch
   kernels;
3. the per-shard summaries are reduced through the binary
   :func:`~repro.parallel.merge.merge_tree` on the driver;
4. the fair post-processing runs on the merged coreset: greedy fair fill
   plus (optionally) the same-group local-search polish, exactly the
   extraction rule :func:`repro.core.coreset.coreset_fair_diversity`
   uses.

Every stage is deterministic for a fixed ``(stream order, shards,
strategy, seed)``: the planner is order-preserving, backends return
results in shard order, the merge pairs summaries positionally, and GMM
seed positions are derived from the run seed.  The *backend* therefore
never affects the solution — only where and how fast the shard work runs
— which the property tests pin down.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.core.postprocess import greedy_fair_fill
from repro.core.result import RunResult
from repro.core.solution import FairSolution
from repro.data.store import ElementStore
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.parallel.backends import Backend, resolve_backend
from repro.parallel.merge import merge_tree
from repro.parallel.planner import ShardPlanner
from repro.parallel.summarize import ShardSummarizer, resolve_summarizer
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.rng import derive_seed
from repro.utils.timer import Timer
from repro.utils.validation import require_positive_int


class _ColumnShard(NamedTuple):
    """Compact fallback shipping for shards whose payloads are not columnar.

    Ragged or categorical payloads cannot become an
    :class:`~repro.data.store.ElementStore`, but the uid/group columns
    (and the label sparsity check) still pickle far cheaper as flat arrays
    than as per-element attribute dictionaries; only the raw payload list
    crosses the boundary as objects.
    """

    uids: "np.ndarray"
    groups: "np.ndarray"
    payloads: List
    labels: Optional[List[Optional[str]]]

    def elements(self) -> List[Element]:
        """Rebuild the element list a worker operates on."""
        labels = self.labels
        return [
            Element(
                uid=int(self.uids[index]),
                vector=self.payloads[index],
                group=int(self.groups[index]),
                label=None if labels is None else labels[index],
            )
            for index in range(len(self.payloads))
        ]


class _ShardJob(NamedTuple):
    """One unit of backend work: a shard plus the summarizer config.

    ``shard`` is a columnar :class:`~repro.data.store.ElementStore` when
    the backend ships tasks across a process boundary (a store pickles as
    three flat arrays, orders of magnitude faster than an element list),
    a :class:`_ColumnShard` for the rare boundary-crossing shard whose
    payloads are not columnar (ragged or categorical data), and the plain
    element list for in-process backends, which never pickle and would
    only pay a conversion tax.
    """

    shard: Union[ElementStore, "_ColumnShard", List[Element]]
    metric: Metric
    k: int
    summarizer: ShardSummarizer
    start_index: int


def _summarize_shard(job: _ShardJob) -> Tuple[List[Element], int]:
    """Backend entry point: summarise one shard, return ``(summary, distances)``.

    Module-level (not a closure) so the process backend can pickle it; the
    distance count is measured inside the worker and shipped back with the
    summary so the accounting works identically on every backend.  Store
    shards are materialised as zero-copy element views inside the worker;
    the summary elements detach from the store when pickled back, so the
    return trip ships only the selected rows.
    """
    counting = CountingMetric(job.metric)
    shard = job.shard
    elements = shard.elements() if not isinstance(shard, list) else shard
    summary = job.summarizer.summarize(
        elements, counting, job.k, start_index=job.start_index
    )
    return summary, counting.calls


class ParallelFDM:
    """Sharded fair diversity maximization with pluggable execution backends.

    Parameters
    ----------
    metric:
        Distance metric shared by all shards.
    constraint:
        Fairness constraint; its total size ``k`` is the per-group summary
        budget unless ``summary_size`` overrides it.
    shards:
        Requested shard count (the plan may contain fewer for tiny inputs).
    backend:
        A :class:`Backend` instance or one of ``"serial"``, ``"thread"``,
        ``"process"``; validated eagerly.
    strategy:
        Shard planning strategy; defaults to ``"stratified"`` so protected
        groups are spread across shards (``"contiguous"`` splits the
        stream order instead).
    summarizer:
        A :class:`ShardSummarizer` instance or one of ``"gmm"`` /
        ``"stream"``; defaults to the per-group GMM composable coreset.
    summary_size:
        Per-group summary budget; defaults to ``constraint.total_size``.
    refine_with_swap:
        Apply the same-group local-search polish to the extracted solution
        (cheap — the merged coreset is small).
    seed:
        Seed for the GMM start positions inside shards; results are
        reproducible for a fixed ``(stream order, shards, strategy, seed)``
        and identical across backends.
    """

    name = "ParallelFDM"

    def __init__(
        self,
        metric: Metric,
        constraint: FairnessConstraint,
        shards: int = 4,
        backend: Union[str, Backend, None] = "serial",
        strategy: str = "stratified",
        summarizer: Union[str, ShardSummarizer, None] = "gmm",
        summary_size: Optional[int] = None,
        refine_with_swap: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        self.metric = metric
        self.constraint = constraint
        self.planner = ShardPlanner(shards, strategy=strategy)
        self.backend = resolve_backend(backend)
        self.summarizer = resolve_summarizer(summarizer)
        self.summary_size = require_positive_int(
            summary_size if summary_size is not None else constraint.total_size,
            "summary_size",
        )
        self.refine_with_swap = refine_with_swap
        self.seed = seed

    def _start_index(self, shard_index: int, shard_size: int) -> int:
        """Deterministic GMM seed position for one shard."""
        if self.seed is None or shard_size == 0:
            return 0
        derived = derive_seed(self.seed, shard_index)
        return int(derived) % shard_size

    @staticmethod
    def _ship_shard(shard: List[Element]) -> Union[ElementStore, _ColumnShard]:
        """The pickle-cheap shard representation for process workers.

        Columnar payloads ship as an :class:`ElementStore` (shards cut from
        a store-backed stream gather their rows with one vectorized select
        per column); ragged or categorical payloads fall back to the
        :class:`_ColumnShard` column form, which still ships uids/groups as
        flat arrays and only the raw payloads as objects.
        """
        store = ElementStore.try_from_elements(shard)
        if store is not None:
            return store
        labels = [element.label for element in shard]
        return _ColumnShard(
            uids=np.fromiter((e.uid for e in shard), dtype=np.int64, count=len(shard)),
            groups=np.fromiter((e.group for e in shard), dtype=np.int64, count=len(shard)),
            payloads=[element.vector for element in shard],
            labels=labels if any(label is not None for label in labels) else None,
        )

    def run(self, stream) -> RunResult:
        """Consume ``stream`` (any element iterable) and return a :class:`RunResult`.

        The stream phase covers planning, shipping, and the per-shard
        summaries; the post-processing phase covers the merge tree, the
        greedy fair fill, and the optional local-search polish.  Stored
        elements are accounted from the distributed perspective: the peak
        is the largest single worker's shard plus the driver-side
        summaries, not the full ``n`` the driver would need if it solved
        the problem unsharded.
        """
        pack = self.backend.requires_pickling
        run_span = obs.span(
            "parallel.run", backend=self.backend.name, shards=self.planner.num_shards
        )
        with run_span:
            stream_timer = Timer()
            with stream_timer.measure():
                with obs.span("parallel.plan", strategy=self.planner.strategy):
                    shards = self.planner.plan(stream)
                total = sum(len(shard) for shard in shards)
                jobs = [
                    _ShardJob(
                        shard=self._ship_shard(shard) if pack else shard,
                        metric=self.metric,
                        k=self.summary_size,
                        summarizer=self.summarizer,
                        start_index=self._start_index(index, len(shard)),
                    )
                    for index, shard in enumerate(shards)
                ]
                with obs.span(
                    "parallel.map", shards=len(jobs), backend=self.backend.name
                ):
                    outcomes = self.backend.map_shards(_summarize_shard, jobs)
            summaries = [summary for summary, _ in outcomes]
            shard_distance_calls = sum(calls for _, calls in outcomes)

            counting = CountingMetric(self.metric)
            post_timer = Timer()
            with post_timer.measure():
                with obs.span("parallel.merge", summaries=len(summaries)):
                    coreset, merge_rounds = merge_tree(
                        summaries, counting, self.summary_size, start_index=0
                    )
                selection = greedy_fair_fill(coreset, self.constraint, counting)
                if self.refine_with_swap:
                    from repro.core.local_search import local_search_improve

                    with obs.span("parallel.polish", selection=len(selection)):
                        solution = local_search_improve(
                            selection, coreset, counting, self.constraint
                        )
                else:
                    solution = FairSolution(selection, counting, self.constraint)
            run_span.set(elements=total, merge_rounds=merge_rounds)

        stats = StreamStats(
            elements_processed=total,
            stream_distance_computations=shard_distance_calls,
            postprocess_distance_computations=counting.calls,
            peak_stored_elements=(
                max((len(shard) for shard in shards), default=0)
                + sum(len(summary) for summary in summaries)
            ),
            final_stored_elements=len(coreset),
            stream_seconds=stream_timer.elapsed,
            postprocess_seconds=post_timer.elapsed,
            extra={
                "shards": float(len(shards)),
                "merge_rounds": float(merge_rounds),
                "coreset_size": float(len(coreset)),
            },
        )
        stats.publish(self.name)
        return RunResult(
            algorithm=self.name,
            solution=solution,
            stats=stats,
            params={
                "k": self.constraint.total_size,
                "shards": self.planner.num_shards,
                "backend": self.backend.name,
                "strategy": self.planner.strategy,
                "summarizer": self.summarizer.name,
                "summary_size": self.summary_size,
                "seed": self.seed,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelFDM(shards={self.planner.num_shards}, "
            f"backend={self.backend.name!r}, strategy={self.planner.strategy!r}, "
            f"summarizer={self.summarizer.name!r})"
        )
