"""``ParallelFDM``: sharded fair diversity maximization, end to end.

The driver stitches the parallel layer together:

1. an :class:`~repro.parallel.planner.ExecutionPlanner` (when
   ``backend="auto"``) or the caller picks the backend and shard count; a
   :class:`~repro.parallel.planner.ShardPlanner` then partitions the
   stream (group-stratified by default, so small protected groups are
   spread across shards rather than stranded in one);
2. every shard is summarised on a
   :class:`~repro.parallel.backends.Backend` worker.  Shards crossing a
   process boundary ship through the zero-copy shared-memory transport
   (:mod:`repro.parallel.shm`): the driver publishes one read-only block
   holding every shard's columnar arrays and workers receive only
   ``(offset, length)`` descriptors, reconstructing their shard as NumPy
   views — degrading to pickled :class:`~repro.data.store.ElementStore`
   columns (or plain element lists for non-columnar payloads) when the
   platform or the payload rules shared memory out.  In-process backends
   hand the shard over untouched;
3. the per-shard summaries are reduced through the binary, per-level
   store-batched :func:`~repro.parallel.merge.merge_tree` on the driver;
4. the fair post-processing runs on the merged coreset: greedy fair fill
   plus (optionally) the same-group local-search polish, exactly the
   extraction rule :func:`repro.core.coreset.coreset_fair_diversity`
   uses.

Every stage is deterministic for a fixed ``(stream order, shards,
strategy, seed)``: the planner is order-preserving, backends return
results in shard order, the merge pairs summaries positionally, and GMM
seed positions are derived from the run seed.  Neither the *backend* nor
the *transport* ever affects the solution — only where and how fast the
shard work runs — which the property tests pin down.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple, Union

from repro import obs
from repro.core.postprocess import greedy_fair_fill
from repro.core.result import RunResult
from repro.core.solution import FairSolution
from repro.data.store import ElementStore
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.parallel.backends import Backend, resolve_backend
from repro.parallel.merge import merge_tree
from repro.parallel.planner import ExecutionPlanner, ShardPlanner
from repro.parallel.shm import (
    TRANSPORTS,
    ShardRef,
    detach_elements,
    ship_shards,
)
from repro.parallel.summarize import ShardSummarizer, resolve_summarizer
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import derive_seed
from repro.utils.timer import Timer
from repro.utils.validation import require_positive_int

#: The one shard payload format: an shm descriptor, a pickled columnar
#: store, or (in-process / non-columnar fallback) the element list itself.
ShardPayload = Union[ShardRef, ElementStore, List[Element]]


class _ShardJob(NamedTuple):
    """One unit of backend work: a shard payload plus the summarizer config.

    ``shard`` is a :data:`ShardPayload`: a :class:`ShardRef` descriptor
    when the shard travels through the shared-memory block (pickles in
    O(1)), a columnar :class:`~repro.data.store.ElementStore` on the
    pickle fallback (three flat arrays, orders of magnitude faster than
    per-element pickles), and the plain element list for in-process
    backends — which never pickle and would only pay a conversion tax —
    or for the rare non-columnar payload.
    """

    shard: ShardPayload
    metric: Metric
    k: int
    summarizer: ShardSummarizer
    start_index: int


def _summarize_shard(job: _ShardJob) -> Tuple[List[Element], int]:
    """Backend entry point: summarise one shard, return ``(summary, distances)``.

    Module-level (not a closure) so the process backend can pickle it; the
    distance count is measured inside the worker and shipped back with the
    summary so the accounting works identically on every backend.  An
    shm-shipped shard is attached as zero-copy views and the mapping is
    released before returning — summaries are detached first (copying only
    the selected rows, the same bytes pickling would copy anyway).  Store
    shards summarise straight on their columns; the summary elements
    detach from the store when pickled back, so the return trip ships only
    the selected rows.
    """
    counting = CountingMetric(job.metric)
    payload = job.shard
    if isinstance(payload, ShardRef):
        with payload.attach() as attached:
            summary = job.summarizer.summarize(
                attached.store, counting, job.k, start_index=job.start_index
            )
            summary = detach_elements(summary)
        return summary, counting.calls
    summary = job.summarizer.summarize(
        payload, counting, job.k, start_index=job.start_index
    )
    return summary, counting.calls


class ParallelFDM:
    """Sharded fair diversity maximization with pluggable execution backends.

    Parameters
    ----------
    metric:
        Distance metric shared by all shards.
    constraint:
        Fairness constraint; its total size ``k`` is the per-group summary
        budget unless ``summary_size`` overrides it.
    shards:
        Requested shard count (the plan may contain fewer for tiny
        inputs), or ``"auto"`` to let the execution planner derive it from
        the input size and CPU count.
    backend:
        A :class:`Backend` instance, one of ``"serial"``, ``"thread"``,
        ``"process"`` (validated eagerly), or ``"auto"`` — the
        :class:`~repro.parallel.planner.ExecutionPlanner` then picks the
        backend per run from the input size, dimensionality, and usable
        CPUs (small inputs stay serial).  The choice never affects the
        computed solution.
    strategy:
        Shard planning strategy; defaults to ``"stratified"`` so protected
        groups are spread across shards (``"contiguous"`` splits the
        stream order instead).
    summarizer:
        A :class:`ShardSummarizer` instance or one of ``"gmm"`` /
        ``"stream"``; defaults to the per-group GMM composable coreset.
    summary_size:
        Per-group summary budget; defaults to ``constraint.total_size``.
    transport:
        How shards cross a process boundary: ``"auto"`` (shared memory
        when the platform and payload allow, pickle otherwise),
        ``"shm"`` (prefer shared memory, warn-and-degrade on failure), or
        ``"pickle"``.  Solutions and distance counts are identical on
        every transport; in-process backends ignore it.
    planner:
        The :class:`~repro.parallel.planner.ExecutionPlanner` consulted
        for ``"auto"`` decisions (a default-configured one if omitted).
    refine_with_swap:
        Apply the same-group local-search polish to the extracted solution
        (cheap — the merged coreset is small).
    seed:
        Seed for the GMM start positions inside shards; results are
        reproducible for a fixed ``(stream order, shards, strategy, seed)``
        and identical across backends and transports.
    """

    name = "ParallelFDM"

    def __init__(
        self,
        metric: Metric,
        constraint: FairnessConstraint,
        shards: Union[int, str] = 4,
        backend: Union[str, Backend, None] = "serial",
        strategy: str = "stratified",
        summarizer: Union[str, ShardSummarizer, None] = "gmm",
        summary_size: Optional[int] = None,
        transport: str = "auto",
        planner: Optional[ExecutionPlanner] = None,
        refine_with_swap: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        self.metric = metric
        self.constraint = constraint
        self._auto_backend = isinstance(backend, str) and backend == "auto"
        self.backend = None if self._auto_backend else resolve_backend(backend)
        self._auto_shards = shards in ("auto", None)
        if self._auto_shards:
            self.shards = None
        else:
            self.shards = require_positive_int(shards, "shards")
        # Validates the strategy eagerly even when the count is planned.
        self.planner = ShardPlanner(self.shards or 1, strategy=strategy)
        self.execution_planner = planner if planner is not None else ExecutionPlanner()
        self.summarizer = resolve_summarizer(summarizer)
        self.summary_size = require_positive_int(
            summary_size if summary_size is not None else constraint.total_size,
            "summary_size",
        )
        if transport not in TRANSPORTS:
            raise InvalidParameterError(
                f"transport must be one of {', '.join(TRANSPORTS)}, got {transport!r}"
            )
        self.transport = transport
        self.refine_with_swap = refine_with_swap
        self.seed = seed

    def _start_index(self, shard_index: int, shard_size: int) -> int:
        """Deterministic GMM seed position for one shard."""
        if self.seed is None or shard_size == 0:
            return 0
        derived = derive_seed(self.seed, shard_index)
        return int(derived) % shard_size

    def _resolve_plan(
        self, elements: List[Element]
    ) -> Tuple[Backend, ShardPlanner, Optional[str]]:
        """The concrete (backend, shard planner) for this input.

        Fixed configurations pass through untouched; ``"auto"`` asks the
        execution planner, using the first element's payload width as the
        dimensionality signal.
        """
        if not (self._auto_backend or self._auto_shards):
            return self.backend, self.planner, None
        first = elements[0].vector
        dim = int(getattr(first, "shape", (1,))[0]) if hasattr(first, "shape") else 1
        plan = self.execution_planner.plan(len(elements), dim)
        backend = self.backend
        if self._auto_backend:
            backend = resolve_backend(plan.backend)
        shard_planner = self.planner
        if self._auto_shards:
            shard_planner = ShardPlanner(plan.shards, strategy=self.planner.strategy)
        return backend, shard_planner, plan.reason

    def run(self, stream) -> RunResult:
        """Consume ``stream`` (any element iterable) and return a :class:`RunResult`.

        The stream phase covers planning, shipping, and the per-shard
        summaries; the post-processing phase covers the merge tree, the
        greedy fair fill, and the optional local-search polish.  A
        published shared-memory block is disposed of (closed and
        unlinked) as soon as the map completes, success or not.  Stored
        elements are accounted from the distributed perspective: the peak
        is the largest single worker's shard plus the driver-side
        summaries, not the full ``n`` the driver would need if it solved
        the problem unsharded.
        """
        elements = list(stream)
        backend, shard_planner, plan_reason = self._resolve_plan(elements)
        run_span = obs.span(
            "parallel.run", backend=backend.name, shards=shard_planner.num_shards
        )
        with run_span:
            stream_timer = Timer()
            with stream_timer.measure():
                with obs.span("parallel.plan", strategy=shard_planner.strategy):
                    shards = shard_planner.plan(elements)
                total = sum(len(shard) for shard in shards)
                block = None
                transport_used = "inline"
                if backend.requires_pickling:
                    payloads, block, transport_used = ship_shards(
                        shards, self.transport
                    )
                else:
                    payloads = shards
                jobs = [
                    _ShardJob(
                        shard=payload,
                        metric=self.metric,
                        k=self.summary_size,
                        summarizer=self.summarizer,
                        start_index=self._start_index(index, len(shard)),
                    )
                    for index, (payload, shard) in enumerate(zip(payloads, shards))
                ]
                try:
                    with obs.span(
                        "parallel.map",
                        shards=len(jobs),
                        backend=backend.name,
                        transport=transport_used,
                    ):
                        outcomes = backend.map_shards(_summarize_shard, jobs)
                finally:
                    if block is not None:
                        block.dispose()
            summaries = [summary for summary, _ in outcomes]
            shard_distance_calls = sum(calls for _, calls in outcomes)

            counting = CountingMetric(self.metric)
            post_timer = Timer()
            with post_timer.measure():
                with obs.span("parallel.merge", summaries=len(summaries)):
                    coreset, merge_rounds = merge_tree(
                        summaries, counting, self.summary_size, start_index=0
                    )
                selection = greedy_fair_fill(coreset, self.constraint, counting)
                if self.refine_with_swap:
                    from repro.core.local_search import local_search_improve

                    with obs.span("parallel.polish", selection=len(selection)):
                        solution = local_search_improve(
                            selection, coreset, counting, self.constraint
                        )
                else:
                    solution = FairSolution(selection, counting, self.constraint)
            run_span.set(elements=total, merge_rounds=merge_rounds)

        stats = StreamStats(
            elements_processed=total,
            stream_distance_computations=shard_distance_calls,
            postprocess_distance_computations=counting.calls,
            peak_stored_elements=(
                max((len(shard) for shard in shards), default=0)
                + sum(len(summary) for summary in summaries)
            ),
            final_stored_elements=len(coreset),
            stream_seconds=stream_timer.elapsed,
            postprocess_seconds=post_timer.elapsed,
            extra={
                "shards": float(len(shards)),
                "merge_rounds": float(merge_rounds),
                "coreset_size": float(len(coreset)),
            },
        )
        stats.publish(self.name)
        params = {
            "k": self.constraint.total_size,
            "shards": shard_planner.num_shards,
            "backend": backend.name,
            "strategy": shard_planner.strategy,
            "summarizer": self.summarizer.name,
            "summary_size": self.summary_size,
            "transport": transport_used,
            "seed": self.seed,
        }
        if plan_reason is not None:
            params["plan"] = plan_reason
        return RunResult(
            algorithm=self.name,
            solution=solution,
            stats=stats,
            params=params,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backend = "auto" if self._auto_backend else self.backend.name
        shards = "auto" if self._auto_shards else self.planner.num_shards
        return (
            f"ParallelFDM(shards={shards}, backend={backend!r}, "
            f"strategy={self.planner.strategy!r}, "
            f"summarizer={self.summarizer.name!r}, transport={self.transport!r})"
        )
