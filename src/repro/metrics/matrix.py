"""Metric backed by a precomputed distance matrix.

Useful for small exact-oracle tests (where the brute-force optimum is
computed anyway) and for datasets whose dissimilarities come from an
external source rather than a vector-space formula.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.metrics.base import Metric
from repro.utils.errors import InvalidParameterError


class PrecomputedMetric(Metric):
    """A metric whose payloads are integer indices into a distance matrix.

    Parameters
    ----------
    matrix:
        A square, symmetric, non-negative matrix with a zero diagonal.
        Symmetry and the zero diagonal are validated eagerly; the triangle
        inequality is the caller's responsibility (and is exercised by the
        property tests for matrices the library itself generates).
    """

    name = "precomputed"
    supports_batch = True

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError(
                f"distance matrix must be square, got shape {matrix.shape}"
            )
        if not np.allclose(matrix, matrix.T):
            raise InvalidParameterError("distance matrix must be symmetric")
        if not np.allclose(np.diag(matrix), 0.0):
            raise InvalidParameterError("distance matrix must have a zero diagonal")
        if (matrix < 0).any():
            raise InvalidParameterError("distance matrix must be non-negative")
        self._matrix = matrix

    @property
    def size(self) -> int:
        """Number of points indexed by the matrix."""
        return self._matrix.shape[0]

    def distance(self, x: Any, y: Any) -> float:
        """Distance between the points indexed by ``x`` and ``y``."""
        i, j = int(x), int(y)
        if not (0 <= i < self.size and 0 <= j < self.size):
            raise InvalidParameterError(
                f"index out of range for precomputed metric of size {self.size}: ({i}, {j})"
            )
        return float(self._matrix[i, j])

    def _indices(self, X: Any) -> np.ndarray:
        """Validate and coerce a stack of index payloads to a 1-D int array."""
        idx = np.asarray(X, dtype=int).ravel()
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise InvalidParameterError(
                f"index out of range for precomputed metric of size {self.size}"
            )
        return idx

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Distances from the point indexed by ``point`` to the indices in ``X``."""
        i = int(np.asarray(point).ravel()[0]) if np.ndim(point) else int(point)
        if not (0 <= i < self.size):
            raise InvalidParameterError(
                f"index out of range for precomputed metric of size {self.size}: {i}"
            )
        return self._matrix[i, self._indices(X)].astype(float)

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Distance sub-matrix for the index stacks ``X`` and ``Y`` (or ``X, X``)."""
        rows = self._indices(X)
        cols = rows if Y is None else self._indices(Y)
        return self._matrix[np.ix_(rows, cols)].astype(float)

    def as_array(self) -> np.ndarray:
        """A read-only view of the underlying matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view
