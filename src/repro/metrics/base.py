"""Abstract metric interface.

A *metric* in this library is any object with a ``distance(x, y) -> float``
method where ``x`` and ``y`` are the ``vector`` payloads carried by
:class:`repro.data.element.Element` (usually one-dimensional numpy
arrays, but a metric implementation may accept any hashable / array-like
payload it understands).

Besides the scalar ``distance``, every metric offers two *batch kernels*:
``distances_to(point, X)`` (one point against a stack of payloads) and
``pairwise(X, Y)`` (all cross distances between two stacks).  The base
class implements both as scalar loops, so any metric — including user
callables — works everywhere a batch kernel is requested; the built-in
vector metrics override them with NumPy-broadcast implementations and
advertise that via :attr:`Metric.supports_batch`.  Code that wants to take
a faster route only when it actually pays off (e.g. the streaming batch
ingestion path) checks ``supports_batch`` before switching away from the
scalar short-circuiting path.

The mathematical requirements — non-negativity, symmetry, identity of
indiscernibles, and the triangle inequality — are not enforced at runtime
for performance reasons; they are verified by the property-based test suite
for every concrete metric shipped with the library.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.data.store import store_rows_of


class Metric(ABC):
    """Base class for distance functions between element payloads."""

    #: Human-readable name used in experiment reports.
    name: str = "metric"

    #: Whether :meth:`distances_to` and :meth:`pairwise` are backed by a
    #: vectorized kernel (``True``) or by the scalar fallback loops
    #: (``False``).  Consumers use this to decide between the batched and
    #: the short-circuiting element-at-a-time code paths.
    supports_batch: bool = False

    #: Whether the metric provides the axis-aligned bounding-box bound
    #: kernels :meth:`box_lower_bounds` / :meth:`box_upper_bounds` required
    #: by the spatial index layer (:mod:`repro.index`).  Only geometric
    #: metrics where distances to a box can be bounded coordinate-wise (the
    #: Minkowski family) set this; everything else keeps the brute-force
    #: screens.
    supports_index: bool = False

    @abstractmethod
    def distance(self, x: Any, y: Any) -> float:
        """Return the distance between two payloads as a ``float``."""

    def box_lower_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Per-query lower bounds on the distance to the box ``[lo, hi]``.

        ``Q`` is a stack of query payloads; ``lo``/``hi`` are the
        coordinate-wise bounds of an axis-aligned box.  Entry ``i`` must
        satisfy ``box_lower_bounds(Q, lo, hi)[i] <= distance(Q[i], x)`` for
        every point ``x`` inside the box.  Bound arithmetic is geometry,
        not a distance evaluation: the counting/caching wrappers forward it
        without touching their counters, which is what keeps the index
        layer's accounting honest.  Only metrics with
        :attr:`supports_index` implement it.
        """
        raise NotImplementedError(f"{self.name} does not support box bounds")

    def box_upper_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Per-query upper bounds on the distance to any point in ``[lo, hi]``.

        The counterpart of :meth:`box_lower_bounds`: entry ``i`` must
        satisfy ``box_upper_bounds(Q, lo, hi)[i] >= distance(Q[i], x)`` for
        every point ``x`` inside the box.
        """
        raise NotImplementedError(f"{self.name} does not support box bounds")

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Distances from one ``point`` to every payload in the stack ``X``.

        Parameters
        ----------
        point:
            A single payload (whatever :meth:`distance` accepts).
        X:
            A sequence of payloads, or a 2-D array whose rows are payloads.

        Returns
        -------
        numpy.ndarray
            1-D float array of length ``len(X)`` where entry ``i`` equals
            ``distance(point, X[i])``.

        The base implementation is a scalar loop; vectorized metrics
        override it with a broadcast kernel that agrees with the scalar
        path to floating-point round-off.
        """
        return np.array([self.distance(point, row) for row in X], dtype=float)

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """All cross distances between the payload stacks ``X`` and ``Y``.

        Parameters
        ----------
        X:
            A sequence of payloads, or a 2-D array whose rows are payloads.
        Y:
            Second stack; when ``None`` (default) distances are computed
            within ``X`` itself, i.e. ``pairwise(X, X)``.

        Returns
        -------
        numpy.ndarray
            2-D float array of shape ``(len(X), len(Y))`` with entry
            ``(i, j)`` equal to ``distance(X[i], Y[j])``.

        The base implementation loops over all pairs; vectorized metrics
        override it with a broadcast kernel.
        """
        rows: Sequence[Any] = X
        cols: Sequence[Any] = X if Y is None else Y
        out = np.empty((len(rows), len(cols)), dtype=float)
        for i, x in enumerate(rows):
            for j, y in enumerate(cols):
                out[i, j] = self.distance(x, y)
        return out

    def pairwise_min(self, X: Any, Y: Any) -> np.ndarray:
        """Row-wise minimum of :meth:`pairwise`: ``min_j d(X[i], Y[j])``.

        This is the candidate screening primitive of the streaming
        algorithms — a whole chunk against the current members, keeping
        only each row's nearest distance.  The base implementation
        materialises the full matrix; metrics may override it with a fused
        kernel that skips work which cannot affect the row minima (the
        Euclidean metric defers the square root to the reduced vector).
        Overrides must agree with ``pairwise(X, Y).min(axis=1)`` bitwise so
        screening decisions are independent of the code path.
        """
        return self.pairwise(X, Y).min(axis=1)

    def distances_idx(self, store: Any, row: int, indexer: Any) -> np.ndarray:
        """Distances from store row ``row`` to the store rows in ``indexer``.

        Index-based counterpart of :meth:`distances_to`: both sides are
        sliced straight out of an
        :class:`~repro.data.store.ElementStore`'s contiguous feature
        matrix, so a basic-slice ``indexer`` reaches the kernel with zero
        copies.
        """
        return self.distances_to(store.features[int(row)], store.rows(indexer))

    def pairwise_idx(self, store: Any, rows: Any, cols: Optional[Any] = None) -> np.ndarray:
        """Distance matrix between two sets of store rows.

        Index-based counterpart of :meth:`pairwise` over an
        :class:`~repro.data.store.ElementStore`; ``cols=None`` computes the
        self-distance matrix of ``rows``.
        """
        return self.pairwise(
            store.rows(rows), None if cols is None else store.rows(cols)
        )

    def __call__(self, x: Any, y: Any) -> float:
        """Alias for :meth:`distance` so metrics can be used as callables."""
        return self.distance(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def stack_vectors(elements: Sequence[Any]) -> np.ndarray:
    """Stack the ``vector`` payloads of ``elements`` into one array.

    Rows follow the order of ``elements``; the dtype is whatever
    ``np.asarray`` infers from the payloads (float for numeric vectors,
    object/str for categorical Hamming payloads, int for precomputed-matrix
    indices).  When every element is a view of one
    :class:`~repro.data.store.ElementStore`, the payload matrix is gathered
    with a single vectorized ``features[rows]`` instead of a per-element
    re-stack.  Lives here — the leaf module of the metrics layer — so the
    batch-kernel call sites in ``core`` can import it without creating
    import cycles through the streaming package.
    """
    backing = store_rows_of(elements)
    if backing is not None:
        store, rows = backing
        return store.features[rows]
    return np.asarray([element.vector for element in elements])


def unwrap_metric(metric: Any) -> Any:
    """The innermost metric under any chain of decorators.

    The counting and caching wrappers expose their wrapped metric as
    ``inner``; index-layer code unwraps the chain to reach the raw
    geometric metric whose bound kernels must run *uncounted* (bound
    arithmetic is not a distance evaluation in the paper's cost model).
    """
    while hasattr(metric, "inner"):
        metric = metric.inner
    return metric


class CallableMetric(Metric):
    """Adapter that wraps a plain ``f(x, y) -> float`` callable as a :class:`Metric`.

    Example
    -------
    >>> metric = CallableMetric(lambda x, y: abs(x - y), name="absdiff")
    >>> metric.distance(3, 5)
    2
    """

    def __init__(self, func: Callable[[Any, Any], float], name: str = "callable") -> None:
        if not callable(func):
            raise TypeError("func must be callable")
        self._func = func
        self.name = name

    def distance(self, x: Any, y: Any) -> float:
        """Distance between ``x`` and ``y`` via the wrapped callable."""
        return self._func(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CallableMetric(name={self.name!r})"
