"""Abstract metric interface.

A *metric* in this library is any object with a ``distance(x, y) -> float``
method where ``x`` and ``y`` are the ``vector`` payloads carried by
:class:`repro.streaming.element.Element` (usually one-dimensional numpy
arrays, but a metric implementation may accept any hashable / array-like
payload it understands).

The mathematical requirements — non-negativity, symmetry, identity of
indiscernibles, and the triangle inequality — are not enforced at runtime
for performance reasons; they are verified by the property-based test suite
for every concrete metric shipped with the library.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable


class Metric(ABC):
    """Base class for distance functions between element payloads."""

    #: Human-readable name used in experiment reports.
    name: str = "metric"

    @abstractmethod
    def distance(self, x: Any, y: Any) -> float:
        """Return the distance between two payloads as a ``float``."""

    def __call__(self, x: Any, y: Any) -> float:
        """Alias for :meth:`distance` so metrics can be used as callables."""
        return self.distance(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class CallableMetric(Metric):
    """Adapter that wraps a plain ``f(x, y) -> float`` callable as a :class:`Metric`.

    Example
    -------
    >>> metric = CallableMetric(lambda x, y: abs(x - y), name="absdiff")
    >>> metric.distance(3, 5)
    2
    """

    def __init__(self, func: Callable[[Any, Any], float], name: str = "callable") -> None:
        if not callable(func):
            raise TypeError("func must be callable")
        self._func = func
        self.name = name

    def distance(self, x: Any, y: Any) -> float:
        return self._func(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CallableMetric(name={self.name!r})"
