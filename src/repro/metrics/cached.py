"""Metric decorators: memoisation and distance-evaluation counting.

The paper reports per-element update cost in terms of *distance
computations*; :class:`CountingMetric` lets the harness and the tests verify
the ``O(k log(Delta)/eps)`` accounting empirically.  :class:`CachedMetric`
memoises repeated pairs, which matters for the offline baselines that probe
the same pairs many times.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from repro.metrics.base import Metric


class CountingMetric(Metric):
    """Wraps another metric and counts how many distances were evaluated."""

    def __init__(self, inner: Metric) -> None:
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.calls = 0

    def distance(self, x: Any, y: Any) -> float:
        self.calls += 1
        return self.inner.distance(x, y)

    def reset(self) -> None:
        """Zero the call counter."""
        self.calls = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CountingMetric({self.inner!r}, calls={self.calls})"


class CachedMetric(Metric):
    """Memoises distances keyed on caller-provided hashable identifiers.

    Vector payloads (numpy arrays) are not hashable, so callers that want
    caching pass a ``key`` function mapping a payload to a hashable id — the
    algorithms in this library use the element identifier.  When no key is
    available the metric falls through to the inner metric uncached.
    """

    def __init__(self, inner: Metric, maxsize: Optional[int] = None) -> None:
        self.inner = inner
        self.name = f"cached({inner.name})"
        self.maxsize = maxsize
        self._cache: Dict[Tuple[Hashable, Hashable], float] = {}
        self.hits = 0
        self.misses = 0

    def distance(self, x: Any, y: Any) -> float:
        return self.inner.distance(x, y)

    def distance_keyed(self, key_x: Hashable, x: Any, key_y: Hashable, y: Any) -> float:
        """Distance between payloads ``x``/``y`` memoised under ``(key_x, key_y)``."""
        if key_x == key_y:
            return 0.0
        cache_key = (key_x, key_y) if key_x <= key_y else (key_y, key_x)
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = self.inner.distance(x, y)
        if self.maxsize is None or len(self._cache) < self.maxsize:
            self._cache[cache_key] = value
        return value

    def clear(self) -> None:
        """Drop all memoised entries and reset hit/miss counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)
