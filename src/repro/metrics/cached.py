"""Metric decorators: memoisation and distance-evaluation counting.

The paper reports per-element update cost in terms of *distance
computations*; :class:`CountingMetric` lets the harness and the tests verify
the ``O(k log(Delta)/eps)`` accounting empirically.  :class:`CachedMetric`
memoises repeated pairs, which matters for the offline baselines that probe
the same pairs many times.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

from repro import obs
from repro.metrics.base import Metric

_LOGGER = obs.get_logger("metrics")


class CountingMetric(Metric):
    """Wraps another metric and counts how many distances were evaluated.

    The batch kernels are forwarded to the wrapped metric and each kernel
    invocation is charged the number of scalar distances it evaluates
    (``len(X)`` for :meth:`distances_to`, ``len(X) * len(Y)`` for
    :meth:`pairwise`), so the paper's distance-computation accounting stays
    comparable between the element-at-a-time and the batched code paths.
    """

    def __init__(self, inner: Metric) -> None:
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.calls = 0

    @property
    def supports_batch(self) -> bool:
        """Whether the wrapped metric has vectorized batch kernels."""
        return self.inner.supports_batch

    @property
    def supports_index(self) -> bool:
        """Whether the wrapped metric has the index-layer bound kernels."""
        return self.inner.supports_index

    def box_lower_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Bound arithmetic forwarded **uncounted** — it is geometry, not a distance."""
        return self.inner.box_lower_bounds(Q, lo, hi)

    def box_upper_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Bound arithmetic forwarded **uncounted** — it is geometry, not a distance."""
        return self.inner.box_upper_bounds(Q, lo, hi)

    def distance(self, x: Any, y: Any) -> float:
        """Distance via the wrapped metric; increments the call counter by one."""
        self.calls += 1
        return self.inner.distance(x, y)

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Batched distances via the wrapped metric; counts ``len(X)`` calls."""
        result = self.inner.distances_to(point, X)
        self.calls += int(result.shape[0])
        return result

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Batched distance matrix via the wrapped metric; counts ``len(X) * len(Y)`` calls."""
        result = self.inner.pairwise(X, Y)
        self.calls += int(result.shape[0] * result.shape[1])
        return result

    def pairwise_min(self, X: Any, Y: Any) -> np.ndarray:
        """Fused row-minimum screen via the wrapped metric.

        Charged exactly like the :meth:`pairwise` it replaces —
        ``len(X) * len(Y)`` scalar distances — so screening through the
        fused kernel and screening through the full matrix stay comparable
        in the paper's accounting.
        """
        result = self.inner.pairwise_min(X, Y)
        self.calls += int(result.shape[0]) * int(np.shape(Y)[0])
        return result

    def charge(self, count: int) -> None:
        """Add ``count`` nominal distance evaluations to the counter.

        Used by engine paths that memoise identical distance computations
        (e.g. the columnar ingestion's union screen, which evaluates each
        (chunk element, stored point) pair once and reuses it across every
        guess level containing that point): the *algorithm's* per-level
        cost is charged in full even though the arithmetic ran once, so
        the paper's accounting stays identical across engine paths.
        """
        self.calls += int(count)

    def reset(self) -> None:
        """Zero the call counter."""
        self.calls = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CountingMetric({self.inner!r}, calls={self.calls})"


class CachedMetric(Metric):
    """Memoises distances keyed on caller-provided hashable identifiers.

    Vector payloads (numpy arrays) are not hashable, so callers that want
    caching pass a ``key`` function mapping a payload to a hashable id — the
    algorithms in this library use the element identifier.  When no key is
    available the metric falls through to the inner metric uncached.

    The memo dictionary is **bounded**: once ``maxsize`` entries are cached
    the least-recently-used pair is evicted to admit a new one, so long
    offline-baseline runs (which probe ``O(n·k)`` distinct pairs) hold the
    working set rather than every pair ever seen.  Pass ``maxsize=None``
    for the old unbounded behaviour.  :meth:`stats` reports hit/miss/
    eviction counters and the current occupancy.
    """

    #: Default memo capacity (entries).  A float plus its two-tuple key
    #: costs ~150 bytes, so the default bounds the cache near 150 MB.
    DEFAULT_MAXSIZE = 1 << 20

    def __init__(self, inner: Metric, maxsize: Optional[int] = DEFAULT_MAXSIZE) -> None:
        self.inner = inner
        self.name = f"cached({inner.name})"
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be positive or None, got {maxsize}")
        self.maxsize = maxsize
        self._cache: "OrderedDict[Tuple[Hashable, Hashable], float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def supports_batch(self) -> bool:
        """Whether the wrapped metric has vectorized batch kernels."""
        return self.inner.supports_batch

    @property
    def supports_index(self) -> bool:
        """Whether the wrapped metric has the index-layer bound kernels."""
        return self.inner.supports_index

    def box_lower_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Bound arithmetic forwarded without touching the hit/miss counters.

        An indexed screen that short-circuits through box bounds must not
        look like cache activity: bounds are not pair distances, so they
        neither hit nor miss the memo dictionary.
        """
        return self.inner.box_lower_bounds(Q, lo, hi)

    def box_upper_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Bound arithmetic forwarded without touching the hit/miss counters."""
        return self.inner.box_upper_bounds(Q, lo, hi)

    def distance(self, x: Any, y: Any) -> float:
        """Uncached distance via the wrapped metric (no key available)."""
        return self.inner.distance(x, y)

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Batched distances via the wrapped metric (bypasses the cache)."""
        return self.inner.distances_to(point, X)

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Batched distance matrix via the wrapped metric (bypasses the cache)."""
        return self.inner.pairwise(X, Y)

    def distance_keyed(self, key_x: Hashable, x: Any, key_y: Hashable, y: Any) -> float:
        """Distance between payloads ``x``/``y`` memoised under ``(key_x, key_y)``.

        A cache hit refreshes the pair's recency; a miss computes the
        distance, inserts it, and — at capacity — evicts the least recently
        used pair.
        """
        if key_x == key_y:
            return 0.0
        cache_key = (key_x, key_y) if key_x <= key_y else (key_y, key_x)
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(cache_key)
            return cached
        self.misses += 1
        value = self.inner.distance(x, y)
        if self.maxsize is not None and len(self._cache) >= self.maxsize:
            self._cache.popitem(last=False)
            self.evictions += 1
            if self.evictions == 1:
                _LOGGER.warning(
                    "%s reached capacity (%d entries); evicting least-recently-"
                    "used pairs from here on — repeated probes of evicted pairs "
                    "recompute their distances",
                    self.name,
                    self.maxsize,
                )
        self._cache[cache_key] = value
        return value

    def stats(self) -> Dict[str, float]:
        """Occupancy and effectiveness counters for the memo dictionary.

        Also mirrors the counters into the process-local obs registry as
        ``repro.metric.cache.*`` gauges when tracing is enabled, so a
        traced run's cache effectiveness lands next to its spans.
        """
        lookups = self.hits + self.misses
        data = {
            "size": len(self._cache),
            "capacity": float("inf") if self.maxsize is None else self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
        obs.gauges("repro.metric.cache", data)
        return data

    def clear(self) -> None:
        """Drop all memoised entries and reset hit/miss/eviction counters."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cache)
