"""Metric-space helpers that operate on collections of elements.

The streaming algorithms need (estimates of) ``d_min`` and ``d_max`` to seed
the guess ladder for OPT; the offline baselines and the evaluation harness
need full or partial pairwise-distance computations.  Both live here so the
algorithms themselves stay free of bulk-distance code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.base import Metric, stack_vectors
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import ensure_rng


def pairwise_distances(elements: Sequence[Element], metric: Metric) -> np.ndarray:
    """Full symmetric pairwise-distance matrix for ``elements`` under ``metric``.

    Quadratic in ``len(elements)``; intended for the offline baselines and
    for small exact checks, not for full streams.  Metrics with vectorized
    kernels (``metric.supports_batch``) are evaluated with one
    :meth:`~repro.metrics.base.Metric.pairwise` call; other metrics fall
    back to the scalar loop over the upper triangle.
    """
    n = len(elements)
    if metric.supports_batch and n:
        matrix = metric.pairwise(stack_vectors(elements))
        np.fill_diagonal(matrix, 0.0)
        return matrix
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            d = metric.distance(elements[i].vector, elements[j].vector)
            matrix[i, j] = d
            matrix[j, i] = d
    return matrix


def exact_distance_bounds(elements: Sequence[Element], metric: Metric) -> Tuple[float, float]:
    """Exact ``(d_min, d_max)`` over all pairs of distinct elements.

    ``d_min`` ignores zero distances between duplicate points so that the
    guess ladder stays meaningful for datasets with repeated rows.
    Vectorized metrics are evaluated with one batched pairwise call.
    """
    if len(elements) < 2:
        raise InvalidParameterError("need at least two elements to compute distance bounds")
    if metric.supports_batch:
        matrix = metric.pairwise(stack_vectors(elements))
        upper = matrix[np.triu_indices(len(elements), k=1)]
        d_max = float(upper.max()) if upper.size else 0.0
        positive = upper[upper > 0.0]
        d_min = float(positive.min()) if positive.size else float("inf")
    else:
        d_min = float("inf")
        d_max = 0.0
        for i in range(len(elements)):
            for j in range(i + 1, len(elements)):
                d = metric.distance(elements[i].vector, elements[j].vector)
                if d > d_max:
                    d_max = d
                if 0.0 < d < d_min:
                    d_min = d
    if not np.isfinite(d_min):
        # All points identical: fall back to an arbitrary positive value so
        # downstream code does not divide by zero; any solution is optimal.
        d_min = 1.0
        d_max = max(d_max, 1.0)
    return d_min, d_max


def estimate_distance_bounds(
    elements: Sequence[Element],
    metric: Metric,
    sample_size: int = 64,
    seed: Optional[int] = None,
) -> Tuple[float, float]:
    """Estimate ``(d_min, d_max)`` from a random sample of elements.

    The streaming algorithms only need ``d_min``/``d_max`` up to constant
    factors (errors translate into a slightly longer guess ladder), so a
    small sample suffices.  With ``sample_size`` at least the number of
    elements this reduces to the exact computation.
    """
    if len(elements) < 2:
        raise InvalidParameterError("need at least two elements to estimate distance bounds")
    rng = ensure_rng(seed)
    if len(elements) <= sample_size:
        sample: List[Element] = list(elements)
    else:
        indices = rng.choice(len(elements), size=sample_size, replace=False)
        sample = [elements[int(i)] for i in indices]
    d_min, d_max = exact_distance_bounds(sample, metric)
    # The sample maximum underestimates d_max and the sample minimum
    # overestimates d_min; widen both by a constant factor to be safe.  The
    # ladder length only grows logarithmically in this slack.
    return d_min / 4.0, d_max * 4.0


@dataclass
class MetricSpace:
    """A finite metric space: a list of elements plus a metric.

    This is the offline view of a dataset used by the baselines, the
    brute-force oracles, and the evaluation harness.  Streaming algorithms
    consume a :class:`repro.streaming.stream.DataStream` instead.
    """

    elements: List[Element]
    metric: Metric

    def __post_init__(self) -> None:
        self.elements = list(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterable[Element]:
        return iter(self.elements)

    def distance(self, x: Element, y: Element) -> float:
        """Distance between two elements of the space."""
        return self.metric.distance(x.vector, y.vector)

    def distance_to_set(self, x: Element, subset: Sequence[Element]) -> float:
        """``d(x, S) = min_{y in S} d(x, y)``; ``inf`` for an empty ``S``."""
        if not subset:
            return float("inf")
        if self.metric.supports_batch and len(subset) > 1:
            return float(self.metric.distances_to(x.vector, stack_vectors(subset)).min())
        return min(self.metric.distance(x.vector, y.vector) for y in subset)

    def diversity(self, subset: Sequence[Element]) -> float:
        """``div(S)``: minimum pairwise distance within ``subset``.

        Returns ``inf`` for subsets with fewer than two elements, matching
        the convention that such sets are unconstrained.
        """
        if len(subset) < 2:
            return float("inf")
        if self.metric.supports_batch:
            matrix = self.metric.pairwise(stack_vectors(subset))
            return float(matrix[np.triu_indices(len(subset), k=1)].min())
        best = float("inf")
        for i in range(len(subset)):
            for j in range(i + 1, len(subset)):
                d = self.metric.distance(subset[i].vector, subset[j].vector)
                if d < best:
                    best = d
        return best

    def groups(self) -> List[int]:
        """Sorted list of distinct group labels present in the space."""
        return sorted({element.group for element in self.elements})

    def group_sizes(self) -> dict:
        """Mapping of group label to the number of elements in that group."""
        sizes: dict = {}
        for element in self.elements:
            sizes[element.group] = sizes.get(element.group, 0) + 1
        return sizes

    def subset_by_group(self, group: int) -> List[Element]:
        """All elements belonging to ``group`` in stream order."""
        return [element for element in self.elements if element.group == group]

    def distance_bounds(self, exact: bool = True, seed: Optional[int] = None) -> Tuple[float, float]:
        """``(d_min, d_max)`` for the space, exact or sampled."""
        if exact:
            return exact_distance_bounds(self.elements, self.metric)
        return estimate_distance_bounds(self.elements, self.metric, seed=seed)
