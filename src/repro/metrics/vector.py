"""Concrete metrics over numeric feature vectors.

These cover the three metrics used in the paper's experiments (Euclidean on
Adult and the synthetic blobs, Manhattan on CelebA and Census, angular on
Lyrics) plus a few extra standard metrics that are useful for downstream
users (Chebyshev, general Minkowski, Hamming, cosine distance).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.metrics.base import Metric
from repro.utils.errors import InvalidParameterError


def _as_array(x: Any) -> np.ndarray:
    """Coerce a payload to a 1-D float array without copying when possible."""
    return np.asarray(x, dtype=float)


class EuclideanMetric(Metric):
    """The Euclidean (L2) distance ``sqrt(sum_i (x_i - y_i)^2)``."""

    name = "euclidean"

    def distance(self, x: Any, y: Any) -> float:
        diff = _as_array(x) - _as_array(y)
        return float(math.sqrt(float(np.dot(diff, diff))))


class ManhattanMetric(Metric):
    """The Manhattan (L1) distance ``sum_i |x_i - y_i|``."""

    name = "manhattan"

    def distance(self, x: Any, y: Any) -> float:
        return float(np.abs(_as_array(x) - _as_array(y)).sum())


class ChebyshevMetric(Metric):
    """The Chebyshev (L-infinity) distance ``max_i |x_i - y_i|``."""

    name = "chebyshev"

    def distance(self, x: Any, y: Any) -> float:
        return float(np.abs(_as_array(x) - _as_array(y)).max())


class MinkowskiMetric(Metric):
    """The Minkowski (Lp) distance for a caller-chosen order ``p >= 1``.

    ``p = 1`` and ``p = 2`` reduce to the Manhattan and Euclidean metrics;
    those dedicated classes are faster and should be preferred.
    """

    def __init__(self, p: float) -> None:
        if not (p >= 1):
            raise InvalidParameterError(f"Minkowski order p must be >= 1, got {p}")
        self.p = float(p)
        self.name = f"minkowski(p={self.p:g})"

    def distance(self, x: Any, y: Any) -> float:
        diff = np.abs(_as_array(x) - _as_array(y))
        return float(np.power(np.power(diff, self.p).sum(), 1.0 / self.p))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MinkowskiMetric(p={self.p!r})"


class AngularMetric(Metric):
    """The angular distance ``arccos(cos_similarity(x, y))`` in radians.

    This is the metric used for the Lyrics topic vectors in the paper; it is
    a true metric (unlike raw cosine *similarity*), bounded by ``pi`` in
    general and by ``pi / 2`` for non-negative vectors such as topic
    distributions.
    """

    name = "angular"

    def distance(self, x: Any, y: Any) -> float:
        ax, ay = _as_array(x), _as_array(y)
        norm_x = float(np.linalg.norm(ax))
        norm_y = float(np.linalg.norm(ay))
        if norm_x == 0.0 or norm_y == 0.0:
            # The angle is undefined for the zero vector; by convention two
            # zero vectors coincide and a zero vs. non-zero pair is maximally
            # separated.  This keeps the identity of indiscernibles intact.
            return 0.0 if norm_x == norm_y else math.pi / 2.0
        cosine = float(np.dot(ax, ay)) / (norm_x * norm_y)
        cosine = min(1.0, max(-1.0, cosine))
        return float(math.acos(cosine))


class CosineDistanceMetric(Metric):
    """Cosine distance ``1 - cos_similarity(x, y)``.

    Included for completeness; note that cosine distance violates the
    triangle inequality in general, so the approximation guarantees of the
    algorithms formally require :class:`AngularMetric` instead.  It is still
    useful in practice and the algorithms run unchanged.
    """

    name = "cosine"

    def distance(self, x: Any, y: Any) -> float:
        ax, ay = _as_array(x), _as_array(y)
        norm_x = float(np.linalg.norm(ax))
        norm_y = float(np.linalg.norm(ay))
        if norm_x == 0.0 or norm_y == 0.0:
            return 0.0 if norm_x == norm_y else 1.0
        cosine = float(np.dot(ax, ay)) / (norm_x * norm_y)
        cosine = min(1.0, max(-1.0, cosine))
        return float(1.0 - cosine)


class HammingMetric(Metric):
    """The Hamming distance: number of coordinates in which two vectors differ.

    For binary attribute vectors (e.g. the CelebA labels) the Hamming and
    Manhattan distances coincide; this class also works for categorical
    (non-numeric) sequences.
    """

    name = "hamming"

    def distance(self, x: Any, y: Any) -> float:
        ax, ay = np.asarray(x), np.asarray(y)
        if ax.shape != ay.shape:
            raise InvalidParameterError(
                f"Hamming distance requires equal-length vectors, got {ax.shape} and {ay.shape}"
            )
        return float(np.count_nonzero(ax != ay))


def euclidean() -> EuclideanMetric:
    """Factory for :class:`EuclideanMetric` (keeps call sites short)."""
    return EuclideanMetric()


def manhattan() -> ManhattanMetric:
    """Factory for :class:`ManhattanMetric`."""
    return ManhattanMetric()


def chebyshev() -> ChebyshevMetric:
    """Factory for :class:`ChebyshevMetric`."""
    return ChebyshevMetric()


def minkowski(p: float) -> MinkowskiMetric:
    """Factory for :class:`MinkowskiMetric` of order ``p``."""
    return MinkowskiMetric(p)


def angular() -> AngularMetric:
    """Factory for :class:`AngularMetric`."""
    return AngularMetric()


def cosine() -> CosineDistanceMetric:
    """Factory for :class:`CosineDistanceMetric`."""
    return CosineDistanceMetric()


def hamming() -> HammingMetric:
    """Factory for :class:`HammingMetric`."""
    return HammingMetric()
