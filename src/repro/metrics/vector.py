"""Concrete metrics over numeric feature vectors.

These cover the three metrics used in the paper's experiments (Euclidean on
Adult and the synthetic blobs, Manhattan on CelebA and Census, angular on
Lyrics) plus a few extra standard metrics that are useful for downstream
users (Chebyshev, general Minkowski, Hamming, cosine distance).

Every metric here implements the batch kernels ``distances_to(point, X)``
and ``pairwise(X, Y)`` with NumPy broadcasting and sets
``supports_batch = True``; the kernels agree with the scalar ``distance``
to floating-point round-off (the property tests pin this to ``1e-9``).
Pairwise kernels that materialise an ``(n, m, d)`` difference tensor are
chunked along the first axis so memory stays bounded for large stacks.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Optional, Tuple

import numpy as np

from repro.metrics.base import Metric
from repro.utils.errors import InvalidParameterError

#: Float budget for the temporary ``(chunk, m, d)`` tensors built by the
#: broadcast pairwise kernels (~32 MB of float64 per chunk).
_CHUNK_BUDGET = 4_000_000


def _as_array(x: Any) -> np.ndarray:
    """Coerce a payload to a 1-D float array without copying when possible."""
    return np.asarray(x, dtype=float)


def _as_point(x: Any) -> np.ndarray:
    """Coerce a single payload to a flat 1-D float array for broadcasting."""
    return np.asarray(x, dtype=float).ravel()


def _as_batch(X: Any) -> np.ndarray:
    """Coerce a stack of payloads to a 2-D float array of shape ``(n, d)``.

    A 1-D input is interpreted as ``n`` scalar payloads (``d = 1``), which
    keeps the batch kernels consistent with the scalar path's acceptance of
    plain numbers as payloads.
    """
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 0:
        return arr.reshape(1, 1)
    if arr.ndim == 1:
        return arr.reshape(-1, 1)
    return arr


def _row_chunks(A: np.ndarray, cols: int) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(start, rows)`` slices of ``A`` sized to the chunk budget."""
    per_row = max(1, cols * A.shape[1])
    step = max(1, _CHUNK_BUDGET // per_row)
    for start in range(0, A.shape[0], step):
        yield start, A[start : start + step]


def _box_gaps(Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Per-coordinate distance from each query to the box ``[lo, hi]``.

    Zero along coordinates where the query lies inside the box; otherwise
    the one-dimensional gap to the nearer face.  The Minkowski-family
    norm of these gaps is the exact distance from the query to the box,
    hence a valid lower bound on the distance to any point inside it.
    """
    Q = _as_batch(Q)
    return np.maximum(np.maximum(lo - Q, Q - hi), 0.0)


def _box_spans(Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Per-coordinate distance from each query to the farther box face.

    The Minkowski-family norm of these spans upper-bounds the distance
    from the query to every point inside ``[lo, hi]`` (each coordinate of
    any box point differs from the query by at most the span).
    """
    Q = _as_batch(Q)
    return np.maximum(np.abs(Q - lo), np.abs(hi - Q))


class EuclideanMetric(Metric):
    """The Euclidean (L2) distance ``sqrt(sum_i (x_i - y_i)^2)``."""

    name = "euclidean"
    supports_batch = True
    supports_index = True

    def box_lower_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Euclidean distance from each query to the box ``[lo, hi]``."""
        gaps = _box_gaps(Q, lo, hi)
        return np.sqrt(np.einsum("ij,ij->i", gaps, gaps))

    def box_upper_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Euclidean distance from each query to the farthest box corner."""
        spans = _box_spans(Q, lo, hi)
        return np.sqrt(np.einsum("ij,ij->i", spans, spans))

    def distance(self, x: Any, y: Any) -> float:
        """Scalar Euclidean distance between payloads ``x`` and ``y``."""
        diff = _as_array(x) - _as_array(y)
        return float(math.sqrt(float(np.dot(diff, diff))))

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Euclidean distances from ``point`` to every row of the stack ``X``."""
        diff = _as_batch(X) - _as_point(point)
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Euclidean distance matrix between the stacks ``X`` and ``Y`` (or ``X, X``)."""
        A = _as_batch(X)
        B = A if Y is None else _as_batch(Y)
        out = np.empty((A.shape[0], B.shape[0]), dtype=float)
        for start, rows in _row_chunks(A, B.shape[0]):
            diff = rows[:, None, :] - B[None, :, :]
            out[start : start + rows.shape[0]] = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        return out

    def pairwise_min(self, X: Any, Y: Any) -> np.ndarray:
        """Fused ``pairwise(X, Y).min(axis=1)`` deferring the square root.

        The row minimum of the squared distances identifies the same entry
        as the row minimum of the distances (``sqrt`` is monotone and
        correctly rounded), so taking ``sqrt`` only of the reduced vector
        is bitwise identical to reducing the full distance matrix — while
        skipping ``n·m - n`` square roots per screen.
        """
        A = _as_batch(X)
        B = _as_batch(Y)
        out = np.empty(A.shape[0], dtype=float)
        for start, rows in _row_chunks(A, B.shape[0]):
            diff = rows[:, None, :] - B[None, :, :]
            out[start : start + rows.shape[0]] = np.einsum("ijk,ijk->ij", diff, diff).min(
                axis=1
            )
        return np.sqrt(out, out=out)


class ManhattanMetric(Metric):
    """The Manhattan (L1) distance ``sum_i |x_i - y_i|``."""

    name = "manhattan"
    supports_batch = True
    supports_index = True

    def box_lower_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Manhattan distance from each query to the box ``[lo, hi]``."""
        return _box_gaps(Q, lo, hi).sum(axis=1)

    def box_upper_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Manhattan distance from each query to the farthest box corner."""
        return _box_spans(Q, lo, hi).sum(axis=1)

    def distance(self, x: Any, y: Any) -> float:
        """Scalar Manhattan distance between payloads ``x`` and ``y``."""
        return float(np.abs(_as_array(x) - _as_array(y)).sum())

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Manhattan distances from ``point`` to every row of the stack ``X``."""
        return np.abs(_as_batch(X) - _as_point(point)).sum(axis=1)

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Manhattan distance matrix between the stacks ``X`` and ``Y`` (or ``X, X``)."""
        A = _as_batch(X)
        B = A if Y is None else _as_batch(Y)
        out = np.empty((A.shape[0], B.shape[0]), dtype=float)
        for start, rows in _row_chunks(A, B.shape[0]):
            out[start : start + rows.shape[0]] = np.abs(
                rows[:, None, :] - B[None, :, :]
            ).sum(axis=-1)
        return out


class ChebyshevMetric(Metric):
    """The Chebyshev (L-infinity) distance ``max_i |x_i - y_i|``."""

    name = "chebyshev"
    supports_batch = True
    supports_index = True

    def box_lower_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Chebyshev distance from each query to the box ``[lo, hi]``."""
        return _box_gaps(Q, lo, hi).max(axis=1)

    def box_upper_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Chebyshev distance from each query to the farthest box corner."""
        return _box_spans(Q, lo, hi).max(axis=1)

    def distance(self, x: Any, y: Any) -> float:
        """Scalar Chebyshev distance between payloads ``x`` and ``y``."""
        return float(np.abs(_as_array(x) - _as_array(y)).max())

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Chebyshev distances from ``point`` to every row of the stack ``X``."""
        return np.abs(_as_batch(X) - _as_point(point)).max(axis=1)

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Chebyshev distance matrix between the stacks ``X`` and ``Y`` (or ``X, X``)."""
        A = _as_batch(X)
        B = A if Y is None else _as_batch(Y)
        out = np.empty((A.shape[0], B.shape[0]), dtype=float)
        for start, rows in _row_chunks(A, B.shape[0]):
            out[start : start + rows.shape[0]] = np.abs(
                rows[:, None, :] - B[None, :, :]
            ).max(axis=-1)
        return out


class MinkowskiMetric(Metric):
    """The Minkowski (Lp) distance for a caller-chosen order ``p >= 1``.

    ``p = 1`` and ``p = 2`` reduce to the Manhattan and Euclidean metrics;
    those dedicated classes are faster and should be preferred.
    """

    supports_batch = True
    supports_index = True

    def box_lower_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Minkowski distance from each query to the box ``[lo, hi]``."""
        gaps = _box_gaps(Q, lo, hi)
        return np.power(np.power(gaps, self.p).sum(axis=1), 1.0 / self.p)

    def box_upper_bounds(self, Q: Any, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Minkowski distance from each query to the farthest box corner."""
        spans = _box_spans(Q, lo, hi)
        return np.power(np.power(spans, self.p).sum(axis=1), 1.0 / self.p)

    def __init__(self, p: float) -> None:
        if not (p >= 1):
            raise InvalidParameterError(f"Minkowski order p must be >= 1, got {p}")
        self.p = float(p)
        self.name = f"minkowski(p={self.p:g})"

    def distance(self, x: Any, y: Any) -> float:
        """Scalar Minkowski distance of order ``p`` between ``x`` and ``y``."""
        diff = np.abs(_as_array(x) - _as_array(y))
        return float(np.power(np.power(diff, self.p).sum(), 1.0 / self.p))

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Minkowski distances from ``point`` to every row of the stack ``X``."""
        diff = np.abs(_as_batch(X) - _as_point(point))
        return np.power(np.power(diff, self.p).sum(axis=1), 1.0 / self.p)

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Minkowski distance matrix between the stacks ``X`` and ``Y`` (or ``X, X``)."""
        A = _as_batch(X)
        B = A if Y is None else _as_batch(Y)
        out = np.empty((A.shape[0], B.shape[0]), dtype=float)
        for start, rows in _row_chunks(A, B.shape[0]):
            diff = np.abs(rows[:, None, :] - B[None, :, :])
            out[start : start + rows.shape[0]] = np.power(
                np.power(diff, self.p).sum(axis=-1), 1.0 / self.p
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MinkowskiMetric(p={self.p!r})"


class AngularMetric(Metric):
    """The angular distance ``arccos(cos_similarity(x, y))`` in radians.

    This is the metric used for the Lyrics topic vectors in the paper; it is
    a true metric (unlike raw cosine *similarity*), bounded by ``pi`` in
    general and by ``pi / 2`` for non-negative vectors such as topic
    distributions.

    The angle is evaluated with Kahan's chord formula
    ``2 * atan2(|x^ - y^|, |x^ + y^|)`` over the normalized vectors rather
    than ``arccos`` of the cosine: ``arccos`` amplifies a one-ulp rounding
    error to ~1e-8 for near-parallel vectors, while the chord formula is
    well-conditioned over the whole range — which is what lets the scalar
    path and the batch kernels agree to 1e-9 on every input.
    """

    name = "angular"
    supports_batch = True

    def distance(self, x: Any, y: Any) -> float:
        """Scalar angular distance (radians) between payloads ``x`` and ``y``."""
        ax, ay = _as_array(x), _as_array(y)
        norm_x = float(np.linalg.norm(ax))
        norm_y = float(np.linalg.norm(ay))
        if norm_x == 0.0 or norm_y == 0.0:
            # The angle is undefined for the zero vector; by convention two
            # zero vectors coincide and a zero vs. non-zero pair is maximally
            # separated.  This keeps the identity of indiscernibles intact.
            return 0.0 if norm_x == norm_y else math.pi / 2.0
        ux, uy = ax / norm_x, ay / norm_y
        chord = float(np.linalg.norm(ux - uy))
        anti_chord = float(np.linalg.norm(ux + uy))
        return float(2.0 * math.atan2(chord, anti_chord))

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Angular distances from ``point`` to every row of the stack ``X``."""
        A = _as_batch(X)
        p = _as_point(point)
        norms = np.linalg.norm(A, axis=1)
        pnorm = float(np.linalg.norm(p))
        if pnorm == 0.0:
            return np.where(norms == 0.0, 0.0, math.pi / 2.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            U = A / norms[:, None]
        up = p / pnorm
        diff = U - up
        plus = U + up
        chord = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        anti_chord = np.sqrt(np.einsum("ij,ij->i", plus, plus))
        result = 2.0 * np.arctan2(chord, anti_chord)
        result[norms == 0.0] = math.pi / 2.0
        return result

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Angular distance matrix between the stacks ``X`` and ``Y`` (or ``X, X``)."""
        A = _as_batch(X)
        B = A if Y is None else _as_batch(Y)
        norms_a = np.linalg.norm(A, axis=1)
        norms_b = np.linalg.norm(B, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            U = A / norms_a[:, None]
            V = B / norms_b[:, None]
        out = np.empty((A.shape[0], B.shape[0]), dtype=float)
        for start, rows in _row_chunks(U, B.shape[0]):
            diff = rows[:, None, :] - V[None, :, :]
            plus = rows[:, None, :] + V[None, :, :]
            chord = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
            anti_chord = np.sqrt(np.einsum("ijk,ijk->ij", plus, plus))
            out[start : start + rows.shape[0]] = 2.0 * np.arctan2(chord, anti_chord)
        zero_a = norms_a == 0.0
        zero_b = norms_b == 0.0
        if zero_a.any() or zero_b.any():
            either_zero = zero_a[:, None] | zero_b[None, :]
            both_zero = zero_a[:, None] & zero_b[None, :]
            out = np.where(either_zero, math.pi / 2.0, out)
            out = np.where(both_zero, 0.0, out)
        return out


class CosineDistanceMetric(Metric):
    """Cosine distance ``1 - cos_similarity(x, y)``.

    Included for completeness; note that cosine distance violates the
    triangle inequality in general, so the approximation guarantees of the
    algorithms formally require :class:`AngularMetric` instead.  It is still
    useful in practice and the algorithms run unchanged.
    """

    name = "cosine"
    supports_batch = True

    def distance(self, x: Any, y: Any) -> float:
        """Scalar cosine distance between payloads ``x`` and ``y``."""
        ax, ay = _as_array(x), _as_array(y)
        norm_x = float(np.linalg.norm(ax))
        norm_y = float(np.linalg.norm(ay))
        if norm_x == 0.0 or norm_y == 0.0:
            return 0.0 if norm_x == norm_y else 1.0
        cosine = float(np.dot(ax, ay)) / (norm_x * norm_y)
        cosine = min(1.0, max(-1.0, cosine))
        return float(1.0 - cosine)

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Cosine distances from ``point`` to every row of the stack ``X``."""
        A = _as_batch(X)
        p = _as_point(point)
        norms = np.linalg.norm(A, axis=1)
        pnorm = float(np.linalg.norm(p))
        if pnorm == 0.0:
            return np.where(norms == 0.0, 0.0, 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            cosine = (A @ p) / (norms * pnorm)
        result = 1.0 - np.clip(cosine, -1.0, 1.0)
        result[norms == 0.0] = 1.0
        return result

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Cosine distance matrix between the stacks ``X`` and ``Y`` (or ``X, X``)."""
        A = _as_batch(X)
        B = A if Y is None else _as_batch(Y)
        norms_a = np.linalg.norm(A, axis=1)
        norms_b = np.linalg.norm(B, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            cosine = (A @ B.T) / np.outer(norms_a, norms_b)
        result = 1.0 - np.clip(cosine, -1.0, 1.0)
        zero_a = norms_a == 0.0
        zero_b = norms_b == 0.0
        if zero_a.any() or zero_b.any():
            either_zero = zero_a[:, None] | zero_b[None, :]
            both_zero = zero_a[:, None] & zero_b[None, :]
            result = np.where(either_zero, 1.0, result)
            result = np.where(both_zero, 0.0, result)
        if Y is None:
            np.fill_diagonal(result, 0.0)
        return result


class HammingMetric(Metric):
    """The Hamming distance: number of coordinates in which two vectors differ.

    For binary attribute vectors (e.g. the CelebA labels) the Hamming and
    Manhattan distances coincide; this class also works for categorical
    (non-numeric) sequences.
    """

    name = "hamming"
    supports_batch = True

    @staticmethod
    def _raw_batch(X: Any) -> np.ndarray:
        """Stack payloads without numeric coercion (categorical data allowed)."""
        arr = np.asarray(X)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        return arr

    def distance(self, x: Any, y: Any) -> float:
        """Scalar Hamming distance (count of differing coordinates)."""
        ax, ay = np.asarray(x), np.asarray(y)
        if ax.shape != ay.shape:
            raise InvalidParameterError(
                f"Hamming distance requires equal-length vectors, got {ax.shape} and {ay.shape}"
            )
        return float(np.count_nonzero(ax != ay))

    def distances_to(self, point: Any, X: Any) -> np.ndarray:
        """Hamming distances from ``point`` to every row of the stack ``X``."""
        A = self._raw_batch(X)
        p = np.asarray(point).ravel()
        if A.shape[1] != p.shape[0]:
            raise InvalidParameterError(
                f"Hamming distance requires equal-length vectors, got ({A.shape[1]},) "
                f"and {p.shape}"
            )
        return (A != p).sum(axis=1).astype(float)

    def pairwise(self, X: Any, Y: Optional[Any] = None) -> np.ndarray:
        """Hamming distance matrix between the stacks ``X`` and ``Y`` (or ``X, X``)."""
        A = self._raw_batch(X)
        B = A if Y is None else self._raw_batch(Y)
        if A.shape[1] != B.shape[1]:
            raise InvalidParameterError(
                f"Hamming distance requires equal-length vectors, got ({A.shape[1]},) "
                f"and ({B.shape[1]},)"
            )
        out = np.empty((A.shape[0], B.shape[0]), dtype=float)
        for start, rows in _row_chunks(A, B.shape[0]):
            out[start : start + rows.shape[0]] = (
                rows[:, None, :] != B[None, :, :]
            ).sum(axis=-1)
        return out


def euclidean() -> EuclideanMetric:
    """Factory for :class:`EuclideanMetric` (keeps call sites short)."""
    return EuclideanMetric()


def manhattan() -> ManhattanMetric:
    """Factory for :class:`ManhattanMetric`."""
    return ManhattanMetric()


def chebyshev() -> ChebyshevMetric:
    """Factory for :class:`ChebyshevMetric`."""
    return ChebyshevMetric()


def minkowski(p: float) -> MinkowskiMetric:
    """Factory for :class:`MinkowskiMetric` of order ``p``."""
    return MinkowskiMetric(p)


def angular() -> AngularMetric:
    """Factory for :class:`AngularMetric`."""
    return AngularMetric()


def cosine() -> CosineDistanceMetric:
    """Factory for :class:`CosineDistanceMetric`."""
    return CosineDistanceMetric()


def hamming() -> HammingMetric:
    """Factory for :class:`HammingMetric`."""
    return HammingMetric()
