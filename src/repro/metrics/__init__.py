"""Distance metrics and metric-space utilities.

Every algorithm in the library touches the data only through a
:class:`~repro.metrics.base.Metric`, so swapping the distance function (as
the paper does across its four datasets) never requires touching algorithm
code.
"""

from repro.metrics.base import Metric, CallableMetric, stack_vectors
from repro.metrics.vector import (
    EuclideanMetric,
    ManhattanMetric,
    ChebyshevMetric,
    MinkowskiMetric,
    AngularMetric,
    CosineDistanceMetric,
    HammingMetric,
    euclidean,
    manhattan,
    chebyshev,
    minkowski,
    angular,
    cosine,
    hamming,
)
from repro.metrics.cached import CachedMetric, CountingMetric
from repro.metrics.matrix import PrecomputedMetric
from repro.metrics.space import (
    MetricSpace,
    pairwise_distances,
    estimate_distance_bounds,
)

__all__ = [
    "Metric",
    "CallableMetric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "AngularMetric",
    "CosineDistanceMetric",
    "HammingMetric",
    "euclidean",
    "manhattan",
    "chebyshev",
    "minkowski",
    "angular",
    "cosine",
    "hamming",
    "CachedMetric",
    "CountingMetric",
    "PrecomputedMetric",
    "MetricSpace",
    "pairwise_distances",
    "estimate_distance_bounds",
    "stack_vectors",
]
