"""Argument-validation helpers shared across the package.

These helpers raise :class:`repro.utils.errors.InvalidParameterError` with a
uniform message format so the tests can assert on error behaviour and users
get actionable diagnostics.
"""

from __future__ import annotations

from typing import Any, Sized

from repro.utils.errors import InvalidParameterError


def require(condition: bool, message: str) -> None:
    """Raise :class:`InvalidParameterError` with ``message`` unless ``condition``."""
    if not condition:
        raise InvalidParameterError(message)


def require_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise InvalidParameterError(f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return int(value)


def require_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise InvalidParameterError(f"{name} must be a non-negative integer, got {value!r}")
    if value < 0:
        raise InvalidParameterError(f"{name} must be non-negative, got {value}")
    return int(value)


def require_in_open_interval(value: Any, low: float, high: float, name: str) -> float:
    """Validate ``low < value < high`` and return ``value`` as ``float``."""
    try:
        numeric = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if not (low < numeric < high):
        raise InvalidParameterError(
            f"{name} must lie in the open interval ({low}, {high}), got {numeric}"
        )
    return numeric


def require_non_empty(value: Sized, name: str) -> Sized:
    """Validate that a sized container is non-empty and return it."""
    if len(value) == 0:
        raise InvalidParameterError(f"{name} must not be empty")
    return value
