"""Lightweight wall-clock timers used by the algorithms and the harness.

The paper reports *average update time* (stream-processing time divided by
the number of elements) and *post-processing time* separately, so the
algorithms need a timer that can account for named stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


@dataclass
class Timer:
    """A simple start/stop wall-clock timer.

    The timer can be re-started; elapsed time accumulates across runs.
    """

    elapsed: float = 0.0
    _started_at: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Start (or resume) the timer.  Starting twice is an error."""
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and return the total elapsed time so far."""
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._started_at is not None

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        """Context manager form: ``with timer.measure(): ...``."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


class StageTimer:
    """Accumulates elapsed wall-clock time for named stages.

    Example
    -------
    >>> stages = StageTimer()
    >>> with stages.stage("stream"):
    ...     pass
    >>> with stages.stage("postprocess"):
    ...     pass
    >>> sorted(stages.totals())
    ['postprocess', 'stream']
    """

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[Timer]:
        """Measure one stage; nested/different stages can interleave freely."""
        timer = self._timers.setdefault(name, Timer())
        with timer.measure():
            yield timer

    def elapsed(self, name: str) -> float:
        """Total seconds recorded for stage ``name`` (0.0 if never entered)."""
        timer = self._timers.get(name)
        return timer.elapsed if timer is not None else 0.0

    def totals(self) -> Dict[str, float]:
        """Mapping of stage name to accumulated seconds."""
        return {name: timer.elapsed for name, timer in self._timers.items()}

    def total(self) -> float:
        """Sum of all stages."""
        return sum(timer.elapsed for timer in self._timers.values())
