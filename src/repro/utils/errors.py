"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch a single base class at an
application boundary while still being able to distinguish specific
failure modes programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied a parameter outside the documented domain.

    Raised, for example, when ``epsilon`` is not in the open interval
    ``(0, 1)`` or when a solution size ``k`` is not a positive integer.
    """


class InfeasibleConstraintError(ReproError, ValueError):
    """A fairness constraint cannot be satisfied by the given dataset.

    Raised when a group quota exceeds the number of elements available in
    that group, or when the quotas reference groups that never occur in
    the stream.
    """


class EmptyStreamError(ReproError, ValueError):
    """An algorithm was asked to run on a stream that produced no elements."""


class CheckpointError(InvalidParameterError):
    """A session checkpoint could not be written or restored.

    Raised by :meth:`repro.api.session.SessionBase.checkpoint` and
    :func:`repro.resume` whenever the checkpoint file is missing,
    unreadable, truncated, not a pickle, or not a session checkpoint at
    all.  The offending path is always part of the message (and available
    as :attr:`path`), so a serving layer juggling thousands of checkpoint
    files can report exactly which one went bad.

    Subclasses :class:`InvalidParameterError` so existing callers that
    caught the previous error type keep working.
    """

    def __init__(self, path, reason: str) -> None:
        self.path = str(path)
        self.reason = reason
        super().__init__(f"checkpoint {self.path}: {reason}")


class NoFeasibleSolutionError(ReproError, RuntimeError):
    """The algorithm terminated without finding any feasible fair solution.

    This can happen for adversarial inputs where no guess ``mu`` yields a
    candidate that can be balanced or augmented into a fair set.  Callers
    typically handle this by re-running with a smaller ``epsilon`` or by
    falling back to an offline baseline.
    """
