"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch a single base class at an
application boundary while still being able to distinguish specific
failure modes programmatically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied a parameter outside the documented domain.

    Raised, for example, when ``epsilon`` is not in the open interval
    ``(0, 1)`` or when a solution size ``k`` is not a positive integer.
    """


class InfeasibleConstraintError(ReproError, ValueError):
    """A fairness constraint cannot be satisfied by the given dataset.

    Raised when a group quota exceeds the number of elements available in
    that group, or when the quotas reference groups that never occur in
    the stream.
    """


class EmptyStreamError(ReproError, ValueError):
    """An algorithm was asked to run on a stream that produced no elements."""


class NoFeasibleSolutionError(ReproError, RuntimeError):
    """The algorithm terminated without finding any feasible fair solution.

    This can happen for adversarial inputs where no guess ``mu`` yields a
    candidate that can be balanced or augmented into a fair set.  Callers
    typically handle this by re-running with a smaller ``epsilon`` or by
    falling back to an offline baseline.
    """
