"""Shared utilities: errors, RNG handling, timers, and validation helpers."""

from repro.utils.errors import (
    ReproError,
    InvalidParameterError,
    InfeasibleConstraintError,
    CheckpointError,
    EmptyStreamError,
    NoFeasibleSolutionError,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Timer, StageTimer
from repro.utils.validation import (
    require,
    require_positive_int,
    require_in_open_interval,
    require_non_empty,
)

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InfeasibleConstraintError",
    "CheckpointError",
    "EmptyStreamError",
    "NoFeasibleSolutionError",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "StageTimer",
    "require",
    "require_positive_int",
    "require_in_open_interval",
    "require_non_empty",
]
