"""Random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be
``None``, an integer, or an existing :class:`numpy.random.Generator`.  The
helpers here normalise those three cases so the rest of the code base never
calls ``numpy.random.default_rng`` directly with ad-hoc conventions.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for entropy-based seeding, an ``int`` for reproducible
        seeding, an existing ``Generator`` (returned unchanged), or a
        ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Useful when an experiment needs one generator per repetition so that
    repetitions remain reproducible independently of each other.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seeds from the provided generator.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: Optional[int], salt: int) -> Optional[int]:
    """Combine ``seed`` with ``salt`` deterministically; keep ``None`` as ``None``."""
    if seed is None:
        return None
    return (int(seed) * 1_000_003 + int(salt)) % (2**63 - 1)
