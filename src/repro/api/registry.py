"""Pluggable algorithm registry: one namespace for every solver in the library.

Every algorithm family the library ships — the paper's streaming algorithms,
the offline baselines, and the parallel / coreset / window extensions — is
registered here under a canonical name with declared
:class:`Capabilities` metadata (streaming or offline, group-count limits,
batch-ingestion support, session support, accepted options).  The
registration is decorator-based::

    @register_algorithm(
        "SFDM2",
        kind="streaming",
        aliases=("sfdm2",),
        description="...",
        capabilities=Capabilities(kind="streaming", streaming=True, ...),
    )
    def _run_sfdm2(context: RunContext) -> RunResult:
        ...

and everything downstream — :func:`repro.solve`, the experiment harness,
and the command-line interface — dispatches through the registry instead of
hand-built per-family closures.  Third-party algorithms plug in the same
way: decorate a runner, and it becomes addressable by name everywhere.

The registry module sits at the *bottom* of the API layer: it depends only
on the error types, so any algorithm module can import it without cycles.
The built-in registrations live in :mod:`repro.api.runners`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.utils.errors import InvalidParameterError

#: A runner takes a resolved :class:`RunContext` and returns a RunResult.
AlgorithmRunner = Callable[["RunContext"], Any]

#: The algorithm kinds the registry recognises (informational, used by
#: queries and the CLI listing; new kinds may be introduced by plugins).
KINDS = ("streaming", "offline", "parallel", "coreset", "window")


@dataclass(frozen=True)
class Capabilities:
    """Declared capability metadata of one registered algorithm.

    Attributes
    ----------
    kind:
        Family label (``"streaming"``, ``"offline"``, ``"parallel"``,
        ``"coreset"``, ``"window"``, or a plugin-defined kind).
    streaming:
        Whether the algorithm is order-sensitive (consumes a one-pass
        stream; the harness varies permutation seeds for such algorithms).
    constrained:
        Whether the algorithm consumes a :class:`FairnessConstraint`
        (``False`` for the unconstrained GMM / StreamingDM).
    max_groups:
        Largest supported number of groups (``None`` = unlimited).
    batch:
        Whether the vectorized ``batch_size`` ingestion option applies.
    store:
        Whether the algorithm consumes columnar
        :class:`~repro.data.store.ElementStore` sources natively.
    parallel:
        Whether the algorithm distributes work over shards/backends.
    sessions:
        Whether :func:`repro.open_session` can drive the algorithm
        incrementally (long-lived ingestion with mid-stream queries).
    constraint_kinds:
        Quota rules the algorithm is meaningful under; purely
        informational (shown by ``repro --list-algorithms``).
    options:
        Option names the runner recognises; anything else passed through
        :func:`repro.solve` or the harness is rejected eagerly.
    """

    kind: str
    streaming: bool
    constrained: bool = True
    max_groups: Optional[int] = None
    batch: bool = False
    store: bool = True
    parallel: bool = False
    sessions: bool = False
    constraint_kinds: Tuple[str, ...] = ("equal", "proportional")
    options: Tuple[str, ...] = ()

    def supports_groups(self, num_groups: int) -> bool:
        """Whether a problem with ``num_groups`` groups is within limits."""
        return self.max_groups is None or num_groups <= self.max_groups

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly representation (used by the CLI listing)."""
        return {
            "kind": self.kind,
            "streaming": self.streaming,
            "constrained": self.constrained,
            "max_groups": self.max_groups,
            "batch": self.batch,
            "store": self.store,
            "parallel": self.parallel,
            "sessions": self.sessions,
            "constraint_kinds": list(self.constraint_kinds),
            "options": list(self.options),
        }


@dataclass
class RunContext:
    """The resolved problem a registered runner executes on.

    Built by :func:`repro.solve` (from user data) and by the experiment
    harness (from a :class:`~repro.datasets.spec.DatasetSpec`); runners only
    ever see this one shape, which is what makes every calling convention in
    the library uniform.

    Attributes
    ----------
    metric:
        The distance metric of the problem.
    constraint:
        The fairness constraint, or ``None`` for unconstrained problems.
    k:
        The solution size (always set; equals ``constraint.total_size``
        for constrained problems).
    epsilon:
        Guess-ladder resolution for the streaming algorithms.
    seed:
        Stream-permutation / tie-breaking seed (``None`` = canonical order).
    options:
        Algorithm-specific options, already validated against the entry's
        declared option names.
    """

    metric: Any
    k: int
    constraint: Optional[Any] = None
    epsilon: float = 0.1
    seed: Optional[int] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    #: Offline view: the full element list in canonical order.
    _elements: Optional[Sequence[Any]] = None
    #: Streaming view: zero-argument callable producing a one-pass stream.
    _stream_factory: Optional[Callable[[], Iterable[Any]]] = None
    #: Number of elements, when known up front.
    size: Optional[int] = None

    @classmethod
    def from_dataset(
        cls,
        dataset: Any,
        constraint: Optional[Any],
        epsilon: float = 0.1,
        seed: Optional[int] = None,
        k: Optional[int] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> "RunContext":
        """Context over a :class:`~repro.datasets.spec.DatasetSpec`-like object.

        The offline view is ``dataset.elements`` and the streaming view is
        ``dataset.stream(seed=seed)`` — exactly the conventions direct
        callers use, so registry dispatch is byte-identical to direct
        invocation.
        """
        if k is None:
            if constraint is None:
                raise InvalidParameterError(
                    "a RunContext needs k when no constraint is given"
                )
            k = constraint.total_size
        return cls(
            metric=dataset.metric,
            k=int(k),
            constraint=constraint,
            epsilon=epsilon,
            seed=seed,
            options=dict(options) if options else {},
            _elements=dataset.elements,
            _stream_factory=lambda: dataset.stream(seed=seed),
            size=dataset.size,
        )

    @property
    def elements(self) -> Sequence[Any]:
        """The full element list (offline algorithms' input)."""
        if self._elements is None:
            raise InvalidParameterError(
                "this problem has no offline element view; "
                "offline algorithms need materialised elements"
            )
        return self._elements

    def stream(self) -> Iterable[Any]:
        """A fresh one-pass stream (streaming algorithms' input)."""
        if self._stream_factory is not None:
            return self._stream_factory()
        return list(self.elements)

    def require_constraint(self) -> Any:
        """The fairness constraint; raises for unconstrained problems."""
        if self.constraint is None:
            raise InvalidParameterError(
                "this algorithm needs a fairness constraint; pass groups=/constraint= "
                "(or choose an unconstrained algorithm such as 'StreamingDM' or 'GMM')"
            )
        return self.constraint

    def option(self, name: str, default: Any = None) -> Any:
        """One option value, with ``None`` treated as absent."""
        value = self.options.get(name, default)
        return default if value is None else value


@dataclass(frozen=True)
class AlgorithmInfo:
    """Public, immutable snapshot of one registry entry."""

    name: str
    description: str
    capabilities: Capabilities
    aliases: Tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        """The entry's family label (shortcut for ``capabilities.kind``)."""
        return self.capabilities.kind


@dataclass
class RegisteredAlgorithm:
    """One registry entry: a runner plus its declared metadata."""

    name: str
    runner: AlgorithmRunner
    capabilities: Capabilities
    description: str = ""
    aliases: Tuple[str, ...] = ()
    #: Optional eager option validator (called with the options mapping
    #: before any run starts, so bad values fail loudly at spec time).
    validator: Optional[Callable[[Mapping[str, Any]], None]] = None
    #: Optional factory building a live session: ``factory(context) ->
    #: session``.  Only set for algorithms with ``capabilities.sessions``.
    session_factory: Optional[Callable[["RunContext"], Any]] = None

    def run(self, context: RunContext) -> Any:
        """Execute the runner on a resolved context."""
        return self.runner(context)

    def supports(self, constraint: Any) -> bool:
        """Whether this algorithm can run under ``constraint``."""
        return self.capabilities.supports_groups(constraint.num_groups)

    def validate_options(self, options: Mapping[str, Any]) -> Dict[str, Any]:
        """Check ``options`` eagerly; returns the cleaned mapping.

        ``None`` values are dropped (treated as "use the default"), unknown
        names raise, and the entry's custom validator — which checks value
        ranges, backend names, and the like — runs on the survivors.
        """
        cleaned = {key: value for key, value in options.items() if value is not None}
        unknown = sorted(set(cleaned) - set(self.capabilities.options))
        if unknown:
            raise InvalidParameterError(
                f"{self.name} does not accept option(s) {', '.join(map(repr, unknown))}; "
                f"recognised: {', '.join(self.capabilities.options) or '(none)'}"
            )
        if self.validator is not None:
            self.validator(cleaned)
        return cleaned

    def info(self) -> AlgorithmInfo:
        """The public snapshot of this entry."""
        return AlgorithmInfo(
            name=self.name,
            description=self.description,
            capabilities=self.capabilities,
            aliases=self.aliases,
        )


_REGISTRY: Dict[str, RegisteredAlgorithm] = {}
#: Lower-cased name/alias -> canonical name.
_LOOKUP: Dict[str, str] = {}

_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load the built-in registrations on first registry access.

    Lets callers import any registry-consuming module (the harness, the
    CLI) directly — without going through the ``repro`` package — and
    still see the full built-in catalogue.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.api.runners  # noqa: F401  (registers the built-ins)


def register_algorithm(
    name: str,
    *,
    kind: str,
    capabilities: Optional[Capabilities] = None,
    description: str = "",
    aliases: Sequence[str] = (),
    validator: Optional[Callable[[Mapping[str, Any]], None]] = None,
    session_factory: Optional[Callable[[RunContext], Any]] = None,
    replace: bool = False,
    **capability_kwargs: Any,
) -> Callable[[AlgorithmRunner], AlgorithmRunner]:
    """Decorator registering a runner under ``name`` with its capabilities.

    Parameters
    ----------
    name:
        Canonical algorithm name (lookup is case-insensitive).
    kind:
        Family label; also becomes ``capabilities.kind`` when the
        capabilities are given as keyword shorthand.
    capabilities:
        Full :class:`Capabilities` object; alternatively pass its fields
        directly as keyword arguments (``streaming=True, max_groups=2,
        ...``) and they are assembled here.
    description:
        One-line human-readable summary (falls back to the runner's
        docstring summary line).
    aliases:
        Extra lookup names (e.g. the lower-case short form).
    validator:
        Eager option validator; see
        :meth:`RegisteredAlgorithm.validate_options`.
    session_factory:
        Factory for long-lived sessions (algorithms with
        ``sessions=True``).
    replace:
        Allow re-registering an existing name (used by tests and plugins
        that shadow a built-in); the default is to fail loudly.
    """
    if capabilities is None:
        capabilities = Capabilities(kind=kind, **capability_kwargs)
    elif capability_kwargs:
        raise InvalidParameterError(
            "pass either a Capabilities object or capability keywords, not both"
        )

    def _decorate(runner: AlgorithmRunner) -> AlgorithmRunner:
        summary = description
        if not summary and runner.__doc__:
            summary = runner.__doc__.strip().splitlines()[0]
        entry = RegisteredAlgorithm(
            name=name,
            runner=runner,
            capabilities=capabilities,
            description=summary,
            aliases=tuple(aliases),
            validator=validator,
            session_factory=session_factory,
        )
        _register(entry, replace=replace)
        return runner

    return _decorate


def _register(entry: RegisteredAlgorithm, replace: bool = False) -> None:
    """Insert ``entry`` into the registry, maintaining the lookup table.

    ``replace`` only permits shadowing an entry of the *same* canonical
    name — a name or alias that currently resolves to a different entry is
    always a collision, otherwise a replacement could silently hijack
    (and, on teardown, orphan) another algorithm's lookups.
    """
    keys = [entry.name.lower(), *(alias.lower() for alias in entry.aliases)]
    for key in keys:
        existing = _LOOKUP.get(key)
        if existing is not None and existing != entry.name:
            raise InvalidParameterError(
                f"algorithm name {key!r} is already registered (by {existing!r})"
            )
    if not replace and entry.name in _REGISTRY:
        raise InvalidParameterError(
            f"algorithm {entry.name!r} is already registered; "
            f"pass replace=True to shadow it"
        )
    _REGISTRY[entry.name] = entry
    for key in keys:
        _LOOKUP[key] = entry.name


def unregister_algorithm(name: str) -> None:
    """Remove an entry (primarily for tests and plugin teardown)."""
    entry = _REGISTRY.pop(get_algorithm(name).name)
    for key, canonical in list(_LOOKUP.items()):
        if canonical == entry.name:
            del _LOOKUP[key]


def get_algorithm(name: str) -> RegisteredAlgorithm:
    """The registry entry for ``name`` (case-insensitive, aliases resolve).

    Raises
    ------
    InvalidParameterError
        For unknown names, listing what is available.
    """
    _ensure_builtins()
    canonical = _LOOKUP.get(str(name).lower())
    if canonical is None:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; registered: {', '.join(algorithm_names())}"
        )
    return _REGISTRY[canonical]


def has_algorithm(name: str) -> bool:
    """Whether ``name`` (or an alias of it) is registered."""
    _ensure_builtins()
    return str(name).lower() in _LOOKUP


def algorithm_names(kind: Optional[str] = None) -> List[str]:
    """Canonical registered names, in registration order, optionally by kind."""
    _ensure_builtins()
    return [
        entry.name
        for entry in _REGISTRY.values()
        if kind is None or entry.capabilities.kind == kind
    ]


def algorithms(kind: Optional[str] = None) -> List[AlgorithmInfo]:
    """Public snapshots of every registered algorithm, optionally by kind.

    This is the ``repro.algorithms()`` helper: the programmatic counterpart
    of ``repro --list-algorithms``.
    """
    _ensure_builtins()
    return [
        entry.info()
        for entry in _REGISTRY.values()
        if kind is None or entry.capabilities.kind == kind
    ]


def query(
    *,
    kind: Optional[str] = None,
    streaming: Optional[bool] = None,
    sessions: Optional[bool] = None,
    num_groups: Optional[int] = None,
    constrained: Optional[bool] = None,
) -> List[RegisteredAlgorithm]:
    """Registry entries matching every given capability filter."""
    _ensure_builtins()
    matches = []
    for entry in _REGISTRY.values():
        caps = entry.capabilities
        if kind is not None and caps.kind != kind:
            continue
        if streaming is not None and caps.streaming != streaming:
            continue
        if sessions is not None and caps.sessions != sessions:
            continue
        if constrained is not None and caps.constrained != constrained:
            continue
        if num_groups is not None and not caps.supports_groups(num_groups):
            continue
        matches.append(entry)
    return matches
