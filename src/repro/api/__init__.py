"""Unified API layer: algorithm registry, ``solve`` façade, and sessions.

Importing this package registers every built-in algorithm (see
:mod:`repro.api.runners`) and exposes the three public surfaces:

* the **registry** — :func:`register_algorithm`, :func:`get_algorithm`,
  :func:`algorithm_names`, :func:`algorithms` — one namespace in which
  every streaming, offline, parallel, coreset, and window algorithm
  declares its capabilities, and through which all dispatch (harness, CLI,
  ``solve``) flows;
* the **façade** — :func:`solve` with its typed :class:`SolveSpec` — one
  call for any data shape and any registered algorithm, returning the
  same :class:`~repro.core.result.RunResult` a direct invocation would;
* the **sessions** — :func:`open_session`, :func:`resume`,
  :class:`StreamingSession`, :class:`WindowSession` — long-lived
  incremental ingestion with mid-stream queries and checkpoint/resume.
"""

from repro.api.registry import (
    AlgorithmInfo,
    Capabilities,
    RegisteredAlgorithm,
    RunContext,
    algorithm_names,
    algorithms,
    get_algorithm,
    has_algorithm,
    query,
    register_algorithm,
    unregister_algorithm,
)
from repro.api import runners as _runners  # noqa: F401  (populates the registry)
from repro.api.session import (
    SessionBase,
    StreamingSession,
    WindowSession,
    resume,
)
from repro.api.solve import SolveSpec, open_session, solve

__all__ = [
    "AlgorithmInfo",
    "Capabilities",
    "RegisteredAlgorithm",
    "RunContext",
    "SessionBase",
    "SolveSpec",
    "StreamingSession",
    "WindowSession",
    "algorithm_names",
    "algorithms",
    "get_algorithm",
    "has_algorithm",
    "open_session",
    "query",
    "register_algorithm",
    "resume",
    "solve",
    "unregister_algorithm",
]
