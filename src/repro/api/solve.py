"""The unified entry point: ``repro.solve(data, k, ...)`` and sessions.

One call covers every algorithm in the registry and every data shape the
library understands::

    import repro

    # raw arrays
    result = repro.solve(features, k=10, groups=labels)

    # a registry dataset, a specific algorithm, extra options
    dataset = repro.load_dataset("adult-sex")
    result = repro.solve(dataset, k=20, algorithm="SFDM2", batch_size=1024)

    # long-lived ingestion
    session = repro.open_session(k=10, groups=[0, 1], algorithm="SFDM2")
    session.offer_rows(rows, groups=row_groups)
    answer = session.solution()

``solve`` resolves the data (arrays, :class:`~repro.data.store.ElementStore`,
:class:`~repro.streaming.stream.DataStream`, element lists, or
:class:`~repro.datasets.spec.DatasetSpec`), builds or validates the fairness
constraint, picks or validates the algorithm against the registry's declared
capabilities, and invokes the registered runner on a resolved
:class:`~repro.api.registry.RunContext` — returning the **same**
:class:`~repro.core.result.RunResult` (byte-identical solution, identical
distance accounting) a direct call to the underlying algorithm would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import numpy as np

from repro import obs
from repro.api.registry import RegisteredAlgorithm, RunContext, get_algorithm
from repro.data.store import ElementStore
from repro.datasets.spec import DatasetSpec
from repro.fairness.constraints import (
    FairnessConstraint,
    equal_representation,
    proportional_representation,
)
from repro.metrics.base import Metric
from repro.metrics.vector import (
    angular,
    chebyshev,
    cosine,
    euclidean,
    hamming,
    manhattan,
)
from repro.streaming.stream import DataStream, stream_from_arrays
from repro.utils.errors import InvalidParameterError

#: Metric factories addressable by name in ``solve(metric="...")``.
_METRIC_FACTORIES = {
    "euclidean": euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
    "angular": angular,
    "cosine": cosine,
    "hamming": hamming,
}


@dataclass
class SolveSpec:
    """Typed configuration of one :func:`solve` call (or one session).

    Attributes
    ----------
    data:
        The problem data — a :class:`~repro.datasets.spec.DatasetSpec`, an
        :class:`~repro.data.store.ElementStore`, a
        :class:`~repro.streaming.stream.DataStream`, a sequence of
        :class:`~repro.data.element.Element`, or a numeric ``(n, d)`` array
        (with ``groups`` supplying the labels).  ``None`` is allowed for
        sessions, which ingest data incrementally.
    k:
        Solution size.  Optional when an explicit ``constraint`` carries it.
    groups:
        Group labels.  For array data: one integer per row.  For sessions
        without data: the collection of group labels the constraint should
        cover.
    algorithm:
        Registry name (case-insensitive, aliases allowed) or ``"auto"``:
        unconstrained problems pick StreamingDM, two-group problems SFDM1,
        anything else SFDM2.
    metric:
        A :class:`~repro.metrics.base.Metric`, a factory name
        (``"euclidean"``, ``"manhattan"``, ``"chebyshev"``, ``"angular"``,
        ``"cosine"``, ``"hamming"``), or ``None`` — which uses the
        dataset's own metric when the data is a ``DatasetSpec`` and
        Euclidean otherwise.
    constraint:
        Explicit :class:`~repro.fairness.constraints.FairnessConstraint`;
        overrides the ``fairness`` rule.
    fairness:
        Quota rule used to build the constraint from the data's group
        sizes: ``"equal"`` or ``"proportional"``.
    epsilon:
        Guess-ladder resolution for the streaming algorithms.
    seed:
        Stream permutation seed (also the run seed of seeded algorithms).
    options:
        Algorithm-specific options (``batch_size``, ``shards``,
        ``window``, ...), validated eagerly against the registry entry's
        declared option names.
    trace:
        Optional tracing sink spec — a :class:`repro.obs.Sink` instance,
        ``"stderr"``, ``"memory"``, or a JSONL file path.  For ``solve``
        the tracer is scoped to the call (the previous tracer
        configuration is restored afterwards); for sessions it configures
        the process-wide tracer, since the session outlives the call.
        ``None`` (the default) leaves tracing exactly as configured.
    """

    data: Any = None
    k: Optional[int] = None
    groups: Any = None
    algorithm: str = "auto"
    metric: Union[Metric, str, None] = None
    constraint: Optional[FairnessConstraint] = None
    fairness: str = "equal"
    epsilon: float = 0.1
    seed: Optional[int] = None
    options: Dict[str, Any] = field(default_factory=dict)
    trace: Any = None


@dataclass
class _ResolvedData:
    """Uniform view of whatever ``SolveSpec.data`` was."""

    elements: Any
    stream_factory: Any
    size: int
    group_sizes: Dict[int, int]
    metric: Optional[Metric] = None


def _resolve_metric(spec: SolveSpec, data_metric: Optional[Metric]) -> Metric:
    """The metric the run will use (explicit > dataset's own > Euclidean)."""
    metric = spec.metric
    if metric is None:
        return data_metric if data_metric is not None else euclidean()
    if isinstance(metric, str):
        factory = _METRIC_FACTORIES.get(metric.lower())
        if factory is None:
            raise InvalidParameterError(
                f"unknown metric {metric!r}; named metrics: "
                f"{', '.join(sorted(_METRIC_FACTORIES))}"
            )
        return factory()
    if isinstance(metric, Metric):
        return metric
    raise InvalidParameterError(
        f"metric must be a Metric, a metric name, or None, got {type(metric).__name__}"
    )


def _resolve_data(spec: SolveSpec) -> _ResolvedData:
    """Normalise ``spec.data`` into elements + a one-pass stream factory."""
    data = spec.data
    seed = spec.seed
    if isinstance(data, DatasetSpec):
        return _ResolvedData(
            elements=data.elements,
            stream_factory=lambda: data.stream(seed=seed),
            size=data.size,
            group_sizes=data.group_sizes(),
            metric=data.metric,
        )
    if isinstance(data, ElementStore):
        data = DataStream(store=data, shuffle_seed=seed, name="data")
    elif isinstance(data, np.ndarray) or (
        isinstance(data, (list, tuple))
        and len(data)
        and not hasattr(data[0], "uid")
    ):
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise InvalidParameterError(
                f"array data must have shape (n, d), got ndim={matrix.ndim}"
            )
        groups = spec.groups if spec.groups is not None else [0] * matrix.shape[0]
        data = stream_from_arrays(matrix, groups, name="data", shuffle_seed=seed)
    if isinstance(data, DataStream):
        stream = data if seed is None else data.permuted(seed)
        return _ResolvedData(
            elements=stream.elements(),
            stream_factory=lambda: stream,
            size=len(stream),
            group_sizes=stream.group_sizes(),
        )
    if isinstance(data, (list, tuple)):
        elements = list(data)
        if not elements:
            raise InvalidParameterError("solve() received an empty element list")
        sizes: Dict[int, int] = {}
        for element in elements:
            sizes[element.group] = sizes.get(element.group, 0) + 1
        if seed is None:
            return _ResolvedData(
                elements=elements,
                stream_factory=lambda: list(elements),
                size=len(elements),
                group_sizes=sizes,
            )
        shuffled = DataStream(elements, shuffle_seed=seed, name="data")
        return _ResolvedData(
            elements=elements,
            stream_factory=lambda: shuffled,
            size=len(elements),
            group_sizes=sizes,
        )
    raise InvalidParameterError(
        "solve() accepts a DatasetSpec, ElementStore, DataStream, element "
        f"sequence, or (n, d) array; got {type(data).__name__}"
    )


def _resolve_constraint(
    spec: SolveSpec, group_sizes: Dict[int, int]
) -> FairnessConstraint:
    """Build (or validate) the fairness constraint for the resolved data."""
    if spec.constraint is not None:
        if spec.k is not None and spec.k != spec.constraint.total_size:
            raise InvalidParameterError(
                f"k={spec.k} conflicts with the constraint's total size "
                f"{spec.constraint.total_size}"
            )
        return spec.constraint
    if spec.k is None:
        raise InvalidParameterError("solve() needs k (or an explicit constraint)")
    if not group_sizes:
        raise InvalidParameterError(
            "cannot build a fairness constraint without group labels; "
            "pass groups= or constraint="
        )
    if spec.fairness == "equal":
        return equal_representation(spec.k, list(group_sizes.keys()))
    if spec.fairness == "proportional":
        return proportional_representation(spec.k, group_sizes)
    raise InvalidParameterError(
        f"fairness must be 'equal' or 'proportional', got {spec.fairness!r}"
    )


def _auto_algorithm(spec: SolveSpec, num_groups: int) -> str:
    """The ``algorithm="auto"`` selection rule.

    Unconstrained problems (no groups, no constraint) use the paper's
    Algorithm 1; two-group problems use SFDM1 (its ``(1-eps)/4`` ratio
    beats SFDM2's ``(1-eps)/8`` at ``m = 2``); everything else uses SFDM2.
    """
    if spec.constraint is None and num_groups <= 1:
        return "StreamingDM"
    m = spec.constraint.num_groups if spec.constraint is not None else num_groups
    return "SFDM1" if m == 2 else "SFDM2"


def _resolve_entry(
    spec: SolveSpec, num_groups: int
) -> RegisteredAlgorithm:
    """The registry entry the spec addresses (resolving ``"auto"``)."""
    name = spec.algorithm or "auto"
    if str(name).lower() == "auto":
        name = _auto_algorithm(spec, num_groups)
    return get_algorithm(name)


def solve(data: Any = None, k: Optional[int] = None, **kwargs: Any) -> Any:
    """Solve a (fair) diversity maximization problem with one call.

    Parameters
    ----------
    data:
        The problem data, or a prepared :class:`SolveSpec` (in which case
        every other argument must be omitted).  Accepted shapes: dataset
        spec, element store, data stream, element sequence, or a numeric
        ``(n, d)`` array with ``groups=`` labels.
    k:
        Solution size (optional when ``constraint`` carries it).
    **kwargs:
        The remaining :class:`SolveSpec` fields (``groups``, ``algorithm``,
        ``metric``, ``constraint``, ``fairness``, ``epsilon``, ``seed``),
        plus any algorithm-specific options (``batch_size``, ``shards``,
        ``backend``, ``num_parts``, ``window``, ...), which are validated
        eagerly against the chosen algorithm's declared capabilities.

    Returns
    -------
    RunResult
        Exactly what a direct invocation of the chosen algorithm returns —
        byte-identical solution, identical distance accounting.
    """
    if isinstance(data, SolveSpec):
        if k is not None or kwargs:
            raise InvalidParameterError(
                "pass either a SolveSpec or keyword arguments, not both"
            )
        spec = data
    else:
        spec = _spec_from_kwargs(data, k, kwargs)
    if spec.data is None:
        raise InvalidParameterError(
            "solve() needs data; use open_session() for incremental ingestion"
        )

    resolved = _resolve_data(spec)
    entry = _resolve_entry(spec, len(resolved.group_sizes))
    options = entry.validate_options(spec.options)

    constraint: Optional[FairnessConstraint] = None
    if entry.capabilities.constrained:
        constraint = _resolve_constraint(spec, resolved.group_sizes)
        if not entry.supports(constraint):
            raise InvalidParameterError(
                f"{entry.name} does not support m={constraint.num_groups} groups"
            )
    elif spec.constraint is not None:
        constraint = spec.constraint

    k_value = spec.k if spec.k is not None else (
        constraint.total_size if constraint is not None else None
    )
    if k_value is None:
        raise InvalidParameterError("solve() needs k (or an explicit constraint)")

    context = RunContext(
        metric=_resolve_metric(spec, resolved.metric),
        k=int(k_value),
        constraint=constraint,
        epsilon=spec.epsilon,
        seed=spec.seed,
        options=options,
        _elements=resolved.elements,
        _stream_factory=resolved.stream_factory,
        size=resolved.size,
    )
    if spec.trace is None:
        return entry.run(context)
    with obs.tracing(spec.trace):
        with obs.span("solve", algorithm=entry.name, k=int(k_value), n=resolved.size):
            return entry.run(context)


def _spec_from_kwargs(data: Any, k: Optional[int], kwargs: Dict[str, Any]) -> SolveSpec:
    """Split ``solve``/``open_session`` keywords into spec fields and options."""
    spec_fields = {
        name: kwargs.pop(name)
        for name in ("groups", "algorithm", "metric", "constraint", "fairness",
                     "epsilon", "seed", "trace")
        if name in kwargs
    }
    explicit_options = kwargs.pop("options", None)
    options = dict(explicit_options) if explicit_options else {}
    options.update(kwargs)  # everything left is an algorithm option
    return SolveSpec(data=data, k=k, options=options, **spec_fields)


def open_session(spec: Optional[SolveSpec] = None, **kwargs: Any) -> Any:
    """Open a long-lived streaming session (see :mod:`repro.api.session`).

    Accepts the same configuration as :func:`solve` — as a
    :class:`SolveSpec` or as keyword arguments — except that ``data`` is
    optional: sessions usually start empty and ingest through
    ``offer``/``offer_batch``/``offer_rows``.  When ``data`` *is* given,
    its elements are offered to the fresh session up front (in the spec's
    stream order).

    For sessions without data, ``groups`` lists the group labels the
    fairness constraint should cover (quotas come from the ``fairness``
    rule over ``k``); pass an explicit ``constraint`` for full control.

    Raises
    ------
    InvalidParameterError
        If the chosen algorithm is not session-capable (its registry entry
        lacks the ``sessions`` capability).
    """
    if spec is None:
        spec = _spec_from_kwargs(kwargs.pop("data", None), kwargs.pop("k", None), kwargs)
    elif kwargs:
        raise InvalidParameterError(
            "pass either a SolveSpec or keyword arguments, not both"
        )

    resolved = _resolve_data(spec) if spec.data is not None else None
    if resolved is not None:
        group_sizes = resolved.group_sizes
    elif spec.groups is not None:
        group_sizes = {int(group): 0 for group in spec.groups}
    else:
        group_sizes = {}

    entry = _resolve_entry(spec, len(group_sizes))
    if not entry.capabilities.sessions or entry.session_factory is None:
        raise InvalidParameterError(
            f"{entry.name} does not support sessions; session-capable "
            f"algorithms declare the 'sessions' capability "
            f"(see repro.algorithms())"
        )
    options = entry.validate_options(spec.options)

    constraint: Optional[FairnessConstraint] = None
    if entry.capabilities.constrained:
        if spec.constraint is not None:
            constraint = _resolve_constraint(spec, group_sizes)
        else:
            if spec.k is None:
                raise InvalidParameterError(
                    "open_session() needs k (or an explicit constraint)"
                )
            if not group_sizes:
                raise InvalidParameterError(
                    "open_session() needs groups= (the labels the constraint "
                    "covers) or constraint= for fair algorithms"
                )
            if spec.fairness == "proportional" and resolved is None:
                raise InvalidParameterError(
                    "proportional quotas need materialised data; sessions "
                    "without data support fairness='equal' or an explicit "
                    "constraint"
                )
            constraint = _resolve_constraint(spec, group_sizes)
        if not entry.supports(constraint):
            raise InvalidParameterError(
                f"{entry.name} does not support m={constraint.num_groups} groups"
            )
    elif spec.constraint is not None:
        constraint = spec.constraint

    k_value = spec.k if spec.k is not None else (
        constraint.total_size if constraint is not None else None
    )
    if k_value is None:
        raise InvalidParameterError(
            "open_session() needs k (or an explicit constraint)"
        )

    context = RunContext(
        metric=_resolve_metric(spec, resolved.metric if resolved else None),
        k=int(k_value),
        constraint=constraint,
        epsilon=spec.epsilon,
        seed=spec.seed,
        options=options,
        _elements=resolved.elements if resolved else None,
        _stream_factory=resolved.stream_factory if resolved else None,
        size=resolved.size if resolved else None,
    )
    if spec.trace is not None:
        # Sessions outlive the call, so the tracer cannot be scoped to it:
        # install the sink process-wide (mirrors the session constructors).
        obs.configure(sink=spec.trace, enabled=True)
    session = entry.session_factory(context)
    if resolved is not None:
        session.offer_batch(context.stream())
    return session
