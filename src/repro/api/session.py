"""Long-lived streaming sessions: ingest indefinitely, query anytime.

The one-shot :meth:`~repro.core.base.StreamingAlgorithm.run` consumes a
finite stream and returns once.  A production server instead needs to keep
ingesting and answer *"what is the best fair solution right now?"* at any
point — which is exactly what a :class:`StreamingSession` provides, for
every streaming-ladder algorithm (SFDM1, SFDM2, StreamingDM), by driving
the same candidate state the one-shot run builds:

* :meth:`~StreamingSession.offer` / :meth:`~StreamingSession.offer_batch` /
  :meth:`~StreamingSession.offer_rows` feed elements (or raw feature rows)
  incrementally, through the identical warmup / scalar / batched ingestion
  rules as ``run()``;
* :meth:`~StreamingSession.solution` extracts the current best solution as a
  full :class:`~repro.core.result.RunResult` **without mutating the
  session** — ingestion continues afterwards exactly as if the query never
  happened, so the final answer (and its distance accounting) is
  byte-identical to an uninterrupted run over the same element order;
* :meth:`~SessionBase.checkpoint` snapshots the live state to disk and
  :func:`resume` restores it — ``checkpoint -> resume -> continue`` yields
  byte-identical solutions and equal distance counts versus never stopping,
  which generalises the windowing layer's block-snapshot idea (its
  algorithms are wrapped by :class:`WindowSession`) to the whole streaming
  family.

Sessions are created through :func:`repro.open_session`, which resolves the
algorithm from the registry and rejects entries without the ``sessions``
capability.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.core.base import StreamingAlgorithm
from repro.core.result import RunResult
from repro.data.element import Element
from repro.metrics.cached import CountingMetric
from repro.metrics.space import exact_distance_bounds
from repro.streaming.stats import StreamStats
from repro.utils.errors import (
    CheckpointError,
    EmptyStreamError,
    InvalidParameterError,
    NoFeasibleSolutionError,
)
from repro.utils.timer import Timer

#: Magic header of session checkpoint payloads.
CHECKPOINT_FORMAT = "repro-session"
#: Bumped whenever the pickled session layout changes incompatibly.
CHECKPOINT_VERSION = 1


class SessionBase:
    """Shared session plumbing: element coercion, uids, and checkpointing.

    Parameters
    ----------
    trace:
        Optional tracing sink spec (a :class:`repro.obs.Sink`,
        ``"stderr"``, ``"memory"``, or a JSONL file path).  Sessions are
        long-lived, so this configures the *process-wide* tracer via
        :func:`repro.obs.configure` rather than scoping it to one call;
        pass ``trace=`` to at most one constructor (the last one wins).
    """

    def __init__(self, trace: Any = None) -> None:
        self._offered = 0
        self._next_uid = 0
        #: Accumulated wall-clock spent ingesting, shared by every session
        #: kind (one :class:`~repro.utils.timer.Timer` instead of ad-hoc
        #: ``perf_counter`` bookkeeping per subclass).
        self._stream_timer = Timer()
        if trace is not None:
            obs.configure(sink=trace, enabled=True)

    @property
    def _stream_seconds(self) -> float:
        """Total wall-clock seconds spent inside ``_offer_many``."""
        return self._stream_timer.elapsed

    # ------------------------------------------------------------------
    # Ingestion surface
    # ------------------------------------------------------------------
    @property
    def elements_offered(self) -> int:
        """Total number of elements this session has ingested."""
        return self._offered

    def offer(self, element: Element) -> None:
        """Ingest one element."""
        self._offer_many([element])

    def offer_batch(self, elements: Iterable[Element]) -> None:
        """Ingest a chunk of elements, in order."""
        chunk = list(elements)
        if chunk:
            self._offer_many(chunk)

    def offer_rows(
        self,
        features: Any,
        groups: Optional[Any] = None,
        uids: Optional[Any] = None,
    ) -> None:
        """Ingest raw feature rows (the server-friendly array entry point).

        Parameters
        ----------
        features:
            Array of shape ``(n, d)`` — or a single ``(d,)`` row.
        groups:
            ``n`` integer group labels (default: group ``0`` for every row).
        uids:
            ``n`` integer identifiers; auto-assigned past the largest uid
            seen so far when omitted.
        """
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2:
            raise InvalidParameterError(
                f"features must be a (n, d) matrix or a single row, got ndim={matrix.ndim}"
            )
        n = matrix.shape[0]
        if groups is None:
            group_list = [0] * n
        else:
            group_list = [int(g) for g in np.asarray(groups).reshape(-1)]
            if len(group_list) != n:
                raise InvalidParameterError(
                    f"got {n} feature rows but {len(group_list)} group labels"
                )
        if uids is None:
            uid_list = list(range(self._next_uid, self._next_uid + n))
        else:
            uid_list = [int(u) for u in np.asarray(uids).reshape(-1)]
            if len(uid_list) != n:
                raise InvalidParameterError(
                    f"got {n} feature rows but {len(uid_list)} uids"
                )
        self.offer_batch(
            Element(uid=uid_list[i], vector=matrix[i], group=group_list[i])
            for i in range(n)
        )

    def _offer_many(self, chunk: List[Element]) -> None:
        """Subclasses ingest an in-order, non-empty chunk here."""
        raise NotImplementedError

    def _track_uids(self, chunk: Sequence[Element]) -> None:
        """Advance the auto-uid watermark past every ingested element."""
        self._offered += len(chunk)
        highest = max(element.uid for element in chunk)
        if highest >= self._next_uid:
            self._next_uid = highest + 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, path: Union[str, os.PathLike]) -> Path:
        """Snapshot the live session state to ``path`` (atomic replace).

        The snapshot contains everything needed to continue byte-identically:
        candidates, pending buffers, and the distance-count watermarks.
        Elements that are views of a columnar store detach on pickling, so
        a checkpoint never drags a whole dataset along.  Restore with
        :func:`repro.resume`.

        The write is crash-safe: the payload goes to a uniquely named
        temporary file in the target directory, is flushed and fsynced,
        and only then atomically replaces ``path``.  An interruption at
        any point — a raising pickler, a killed process — either leaves
        the previous checkpoint untouched or (on a clean failure) removes
        the partial temp file; a truncated payload is never visible under
        ``path``.

        Raises
        ------
        CheckpointError
            If the target directory does not exist / is not writable, or
            the session state cannot be pickled.
        """
        path = Path(path)
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "algorithm": self.algorithm_name,
            "session": self,
        }
        try:
            fd, tmp_name = tempfile.mkstemp(
                prefix=path.name + ".", suffix=".tmp", dir=path.parent
            )
        except OSError as error:
            raise CheckpointError(path, f"cannot create temp file ({error})") from error
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException as error:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - already gone
                pass
            if isinstance(error, (pickle.PicklingError, TypeError, AttributeError, OSError)):
                raise CheckpointError(path, f"cannot write ({error})") from error
            raise
        obs.event(
            "session.checkpoint",
            algorithm=self.algorithm_name,
            path=str(path),
            offered=self._offered,
        )
        return path

    @property
    def algorithm_name(self) -> str:
        """Name of the wrapped algorithm (used in reports and checkpoints)."""
        raise NotImplementedError


def resume(path: Union[str, os.PathLike]) -> SessionBase:
    """Restore a session previously saved with :meth:`SessionBase.checkpoint`.

    The restored session continues exactly where the checkpoint left off:
    feeding it the remaining stream suffix yields byte-identical solutions
    and equal distance counts to a session that was never interrupted.

    Raises
    ------
    CheckpointError
        If ``path`` does not exist, cannot be read, is not a pickle, is
        truncated, or does not contain a repro session checkpoint.  The
        message always names the offending path.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError as error:
        raise CheckpointError(path, "no such file") from error
    except OSError as error:
        raise CheckpointError(path, f"cannot read ({error})") from error
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
            IndexError, MemoryError, ValueError) as error:
        # The pickle module surfaces corrupt/truncated/foreign payloads
        # through any of these; fold them into one typed failure.
        raise CheckpointError(
            path, f"not a readable pickle ({type(error).__name__}: {error})"
        ) from error
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(path, "not a repro session checkpoint")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            path,
            f"version {payload.get('version')!r} is not supported "
            f"(expected {CHECKPOINT_VERSION})",
        )
    session = payload.get("session")
    if not isinstance(session, SessionBase):
        raise CheckpointError(path, "does not contain a session object")
    obs.event(
        "session.resume",
        algorithm=payload["algorithm"],
        path=str(path),
        offered=session.elements_offered,
    )
    return session


class StreamingSession(SessionBase):
    """Incremental driver for one streaming-ladder algorithm.

    Parameters
    ----------
    algorithm:
        A configured :class:`~repro.core.base.StreamingAlgorithm`
        (SFDM1, SFDM2, or StreamingDiversityMaximization).  The session owns
        the run state; the algorithm object itself is never mutated.

    The session reproduces the one-shot ``run()`` behaviour stage by stage:

    * while fewer than ``warmup_size`` elements have arrived (and no
      explicit ``distance_bounds`` were given), elements are buffered and
      the guess ladder does not exist yet;
    * once the warmup fills, bounds are estimated exactly as ``run()``
      estimates them, the ladder and its candidates are built, and the
      buffered prefix is ingested;
    * afterwards, elements flow straight into the candidates — one at a
      time, or through the vectorized batch path when the algorithm was
      configured with a ``batch_size`` (chunk boundaries are aligned to the
      stream start, matching the one-shot chunking).

    :meth:`solution` works on a deep-copied snapshot, so queries are pure:
    the live ingestion schedule — and therefore the distance accounting —
    is unaffected by how often (or whether) the session is queried.
    """

    def __init__(self, algorithm: StreamingAlgorithm, trace: Any = None) -> None:
        super().__init__(trace=trace)
        if not isinstance(algorithm, StreamingAlgorithm):
            raise InvalidParameterError(
                f"StreamingSession drives StreamingAlgorithm instances, "
                f"got {type(algorithm).__name__}"
            )
        self._algorithm = algorithm
        self._counting = algorithm._counting_metric()
        self._stats = StreamStats()
        self._ladder = None
        self._blind = None
        self._specific = None
        self._pending: List[Element] = []
        if algorithm.distance_bounds is not None:
            self._activate(algorithm.distance_bounds)

    # ------------------------------------------------------------------
    @property
    def algorithm_name(self) -> str:
        """Name of the wrapped algorithm."""
        return self._algorithm.name

    @property
    def is_active(self) -> bool:
        """Whether the guess ladder exists yet (warmup complete)."""
        return self._ladder is not None

    @property
    def _batched(self) -> bool:
        """Whether ingestion runs through the vectorized batch path."""
        batch_size = self._algorithm._effective_batch_size
        return batch_size is not None and batch_size > 1 and self._counting.supports_batch

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _offer_many(self, chunk: List[Element]) -> None:
        obs.event(
            "session.offer", algorithm=self._algorithm.name, count=len(chunk)
        )
        with self._stream_timer.measure():
            self._track_uids(chunk)
            if self._ladder is None:
                self._pending.extend(chunk)
                if len(self._pending) >= self._algorithm.warmup_size:
                    self._activate_from_pending()
            elif self._batched:
                self._pending.extend(chunk)
                self._drain(final=False)
            else:
                self._algorithm._ingest_elements(
                    chunk, self._blind, self._specific, self._stats
                )

    def _activate(self, bounds) -> None:
        """Build the guess ladder and its candidates for ``bounds``."""
        self._ladder = self._algorithm._build_ladder(bounds)
        self._blind, self._specific = self._algorithm._make_candidates(
            self._ladder, self._counting
        )
        if self._batched:
            self._stats.extra["batch_size"] = float(self._algorithm._effective_batch_size)

    def _activate_from_pending(self) -> None:
        """Estimate bounds from the buffered warmup and start ingesting.

        Mirrors :meth:`StreamingAlgorithm._resolve_bounds`: the estimate is
        computed on the first ``warmup_size`` buffered elements (all of
        them, when the session is finalised early) and widened by the same
        factor; a single-element stream gets the trivial bounds.
        """
        if not self._pending:
            raise EmptyStreamError(
                f"{self._algorithm.name} session received no elements"
            )
        if len(self._pending) == 1:
            self._activate((1.0, 1.0))
        else:
            warmup = self._pending[: self._algorithm.warmup_size]
            d_min, d_max = exact_distance_bounds(warmup, self._counting)
            self._activate((d_min / 4.0, d_max * 4.0))
        self._drain(final=False)

    def _drain(self, final: bool) -> None:
        """Move pending elements into the candidates.

        In scalar mode everything drains immediately.  In batch mode only
        whole ``batch_size`` chunks drain — the remainder stays pending so
        chunk boundaries always align with the stream start, exactly like
        the one-shot run's chunking — unless ``final`` forces the trailing
        partial chunk out (done only on query snapshots, never on the live
        session).
        """
        if not self._batched:
            if self._pending:
                chunk, self._pending = self._pending, []
                self._algorithm._ingest_elements(
                    chunk, self._blind, self._specific, self._stats
                )
            return
        size = self._algorithm._effective_batch_size
        while len(self._pending) >= size:
            chunk = self._pending[:size]
            del self._pending[:size]
            self._algorithm._ingest_batches(
                chunk, self._blind, self._specific, self._stats, size
            )
        if final and self._pending:
            chunk, self._pending = self._pending, []
            self._algorithm._ingest_batches(
                chunk, self._blind, self._specific, self._stats, size
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def solution(self) -> RunResult:
        """The best solution over everything offered so far, as a RunResult.

        The extraction runs on a deep-copied snapshot of the session, so
        the live state is untouched: pending batch chunks are flushed only
        inside the snapshot, and post-processing distance evaluations are
        charged to the snapshot's counters.  Querying is therefore free of
        side effects — a session queried a thousand times mid-stream ends
        with exactly the accounting of one that was never queried.

        Raises
        ------
        EmptyStreamError
            If nothing was offered yet.
        NoFeasibleSolutionError
            If no (fair) solution can be built from the current state.
        """
        if self._offered == 0:
            raise EmptyStreamError(
                f"{self._algorithm.name} session received no elements"
            )
        with obs.span(
            "session.solution",
            algorithm=self._algorithm.name,
            offered=self._offered,
        ):
            snapshot = copy.deepcopy(self)
            return snapshot._finalize()

    def _finalize(self) -> RunResult:
        """Flush, extract, and package the result (runs on a snapshot)."""
        if self._ladder is None:
            self._activate_from_pending()
        self._drain(final=True)
        stream_calls = self._counting.calls

        timer = Timer()
        with timer.measure():
            best, extract_stats = self._algorithm._extract(
                self._ladder, self._blind, self._specific, self._counting
            )
        stored = len(self._algorithm._stored_elements(self._blind, self._specific))
        stats = self._stats
        stats.extra["num_guesses"] = len(self._ladder)
        stats.extra.update(extract_stats)
        stats.stream_seconds = self._stream_seconds
        stats.postprocess_seconds = timer.elapsed
        stats.stream_distance_computations = stream_calls
        stats.postprocess_distance_computations = self._counting.calls - stream_calls
        stats.record_stored(stored)
        stats.publish(self._algorithm.name)

        if best is None:
            raise NoFeasibleSolutionError(self._algorithm._infeasible_message())
        return RunResult(
            algorithm=self._algorithm.name,
            solution=best,
            stats=stats,
            params=self._algorithm._run_params(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self.is_active else "warming up"
        return (
            f"StreamingSession({self._algorithm.name}, offered={self._offered}, "
            f"{state}, pending={len(self._pending)})"
        )


class WindowSession(SessionBase):
    """Session wrapper around a windowed algorithm.

    Drives any algorithm of the windowing layer — the incremental
    :class:`~repro.windowing.sliding.SlidingWindowFDM` or the
    block-summary baseline
    :class:`~repro.windowing.checkpointed.CheckpointedWindowFDM` — which
    are already incremental (``process`` / ``solution``); this wrapper
    gives them the same surface as :class:`StreamingSession` — ``offer`` /
    ``offer_batch`` / ``offer_rows``, RunResult-producing
    :meth:`solution`, and checkpoint/resume — so servers can treat every
    session-capable algorithm uniformly.
    """

    def __init__(self, algorithm: Any, trace: Any = None) -> None:
        super().__init__(trace=trace)
        required_attrs = (
            "process",
            "solution",
            "stored_elements",
            "window",
            "blocks",
            "constraint",
        )
        for required in required_attrs:
            if not hasattr(algorithm, required):
                raise InvalidParameterError(
                    f"WindowSession drives windowed algorithms exposing "
                    f"{'/'.join(required_attrs)}; "
                    f"{type(algorithm).__name__} lacks {required!r}"
                )
        self._algorithm = algorithm
        self._stats = StreamStats()
        #: Distance evaluations spent inside queries so far (lets repeated
        #: queries split stream vs postprocess accounting correctly when
        #: the algorithm's metric is a counting wrapper).
        self._query_calls = 0

    @property
    def algorithm_name(self) -> str:
        """Name of the wrapped algorithm."""
        return getattr(self._algorithm, "name", type(self._algorithm).__name__)

    @property
    def _counting(self):
        """The algorithm's counting metric, or ``None`` if it has none."""
        metric = getattr(self._algorithm, "metric", None)
        return metric if isinstance(metric, CountingMetric) else None

    def _offer_many(self, chunk: List[Element]) -> None:
        obs.event(
            "session.offer", algorithm=self.algorithm_name, count=len(chunk)
        )
        with self._stream_timer.measure():
            self._track_uids(chunk)
            for element in chunk:
                self._algorithm.process(element)
                self._stats.elements_processed += 1
                self._stats.record_stored(self._algorithm.stored_elements)

    def solution(self) -> RunResult:
        """The current windowed solution as a RunResult.

        Unlike :class:`StreamingSession` this never raises on infeasibility:
        the windowed extractor reports ``solution=None`` (``succeeded`` is
        ``False``) when the live window cannot satisfy the quotas, matching
        the one-shot ``WindowFDM`` runner's behaviour.
        """
        if self._offered == 0:
            raise EmptyStreamError(
                f"{self.algorithm_name} session received no elements"
            )
        counting = self._counting
        calls_before = counting.calls if counting is not None else 0
        timer = Timer()
        with obs.span(
            "session.solution",
            algorithm=self.algorithm_name,
            offered=self._offered,
        ), timer.measure():
            solution = self._algorithm.solution()
        stats = copy.copy(self._stats)
        stats.extra = dict(self._stats.extra)
        stats.stream_seconds = self._stream_seconds
        stats.postprocess_seconds = timer.elapsed
        if counting is not None:
            query_cost = counting.calls - calls_before
            stats.stream_distance_computations = calls_before - self._query_calls
            stats.postprocess_distance_computations = query_cost
            self._query_calls += query_cost
        stats.publish(self.algorithm_name)
        return RunResult(
            algorithm=self.algorithm_name,
            solution=solution,
            stats=stats,
            params={
                "k": self._algorithm.constraint.total_size,
                "window": self._algorithm.window,
                "blocks": self._algorithm.blocks,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowSession({self.algorithm_name}, window={self._algorithm.window}, "
            f"blocks={self._algorithm.blocks}, offered={self._offered})"
        )
