"""Built-in algorithm registrations for the unified API layer.

Every solver family in the library self-registers here with its declared
:class:`~repro.api.registry.Capabilities`.  The adapters are deliberately
thin: each one invokes the underlying algorithm with **exactly** the calling
convention a direct caller would use (same constructor arguments, same
defaults, same stream), so dispatching through the registry is
byte-identical to direct invocation — the registry-driven equivalence test
pins this for every entry.

Importing this module populates the registry; :mod:`repro.api` does so on
package import.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro import obs
from repro.api.registry import RunContext, register_algorithm
from repro.baselines.fair_flow import fair_flow
from repro.baselines.fair_gmm import fair_gmm
from repro.baselines.fair_swap import fair_swap
from repro.baselines.gmm import gmm
from repro.baselines.mwu import mwu_fair
from repro.core.coreset import coreset_fair_diversity
from repro.core.result import RunResult
from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.core.streaming_dm import StreamingDiversityMaximization
from repro.index.tree import INDEX_KINDS
from repro.parallel.backends import resolve_backend
from repro.parallel.driver import ParallelFDM
from repro.parallel.planner import ShardPlanner
from repro.parallel.shm import TRANSPORTS
from repro.parallel.summarize import resolve_summarizer
from repro.metrics.cached import CountingMetric
from repro.streaming.stats import StreamStats
from repro.utils.errors import InvalidParameterError
from repro.windowing import CheckpointedWindowFDM, SlidingWindowFDM
from repro.utils.timer import Timer
from repro.utils.validation import require_positive_int

_LOGGER = obs.get_logger("api")

#: Options shared by every streaming-ladder algorithm.
_STREAMING_OPTIONS = ("batch_size", "warmup_size", "distance_bounds", "index")


def _validate_index(options: Mapping[str, Any]) -> None:
    """Eager membership check for the spatial-index option.

    Metric compatibility (only the Minkowski family has box bounds) is
    checked where the algorithm is built, via
    :func:`repro.index.tree.resolve_index_kind` — the metric is not in
    scope here.
    """
    index = options.get("index")
    if index is not None and index not in INDEX_KINDS:
        raise InvalidParameterError(
            f"index must be one of {INDEX_KINDS}, got {index!r}"
        )


def _validate_streaming(options: Mapping[str, Any]) -> None:
    """Eager checks for the streaming-ladder options."""
    batch_size = options.get("batch_size")
    if batch_size is not None and batch_size < 1:
        raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
    warmup = options.get("warmup_size")
    if warmup is not None and warmup < 2:
        raise InvalidParameterError("warmup_size must be at least 2")
    _validate_index(options)


def _make_streaming_dm(context: RunContext) -> StreamingDiversityMaximization:
    return StreamingDiversityMaximization(
        metric=context.metric,
        k=context.k,
        epsilon=context.epsilon,
        distance_bounds=context.option("distance_bounds"),
        warmup_size=context.option("warmup_size", 64),
        batch_size=context.option("batch_size"),
        index=context.option("index"),
    )


def _make_sfdm1(context: RunContext) -> SFDM1:
    return SFDM1(
        metric=context.metric,
        constraint=context.require_constraint(),
        epsilon=context.epsilon,
        distance_bounds=context.option("distance_bounds"),
        warmup_size=context.option("warmup_size", 64),
        fallback=context.option("fallback", True),
        batch_size=context.option("batch_size"),
        index=context.option("index"),
    )


def _make_sfdm2(context: RunContext) -> SFDM2:
    return SFDM2(
        metric=context.metric,
        constraint=context.require_constraint(),
        epsilon=context.epsilon,
        distance_bounds=context.option("distance_bounds"),
        warmup_size=context.option("warmup_size", 64),
        fallback=context.option("fallback", True),
        greedy_augmentation=context.option("greedy_augmentation", True),
        batch_size=context.option("batch_size"),
        index=context.option("index"),
    )


def _session_for(maker):
    """A session factory wrapping ``maker``'s algorithm in a live session."""

    def _factory(context: RunContext):
        from repro.api.session import StreamingSession

        return StreamingSession(maker(context))

    return _factory


@register_algorithm(
    "StreamingDM",
    kind="streaming",
    aliases=("streaming-dm", "algorithm1"),
    description="Algorithm 1: unconstrained streaming max-min diversity maximization",
    streaming=True,
    constrained=False,
    batch=True,
    sessions=True,
    constraint_kinds=(),
    options=_STREAMING_OPTIONS,
    validator=_validate_streaming,
    session_factory=_session_for(_make_streaming_dm),
)
def _run_streaming_dm(context: RunContext) -> RunResult:
    """Run Algorithm 1 on the context's stream."""
    return _make_streaming_dm(context).run(context.stream())


@register_algorithm(
    "SFDM1",
    kind="streaming",
    aliases=("sfdm1",),
    description="Algorithm 2: (1-eps)/4-approximate streaming fair DM for two groups",
    streaming=True,
    max_groups=2,
    batch=True,
    sessions=True,
    options=_STREAMING_OPTIONS + ("fallback",),
    validator=_validate_streaming,
    session_factory=_session_for(_make_sfdm1),
)
def _run_sfdm1(context: RunContext) -> RunResult:
    """Run SFDM1 on the context's stream."""
    return _make_sfdm1(context).run(context.stream())


@register_algorithm(
    "SFDM2",
    kind="streaming",
    aliases=("sfdm2",),
    description="Algorithm 3: (1-eps)/(3m+2)-approximate streaming fair DM for any m",
    streaming=True,
    batch=True,
    sessions=True,
    options=_STREAMING_OPTIONS + ("fallback", "greedy_augmentation"),
    validator=_validate_streaming,
    session_factory=_session_for(_make_sfdm2),
)
def _run_sfdm2(context: RunContext) -> RunResult:
    """Run SFDM2 on the context's stream."""
    return _make_sfdm2(context).run(context.stream())


@register_algorithm(
    "GMM",
    kind="offline",
    aliases=("gmm",),
    description="Gonzalez farthest-point greedy (unconstrained 1/2-approximation)",
    streaming=False,
    constrained=False,
    constraint_kinds=(),
    options=("index",),
    validator=_validate_index,
)
def _run_gmm(context: RunContext) -> RunResult:
    """Run the offline GMM baseline on the full element list."""
    return gmm(
        context.elements, context.metric, context.k, index=context.option("index")
    )


@register_algorithm(
    "FairSwap",
    kind="offline",
    aliases=("fair-swap",),
    description="Offline 1/4-approximate fair DM via swapping (two groups)",
    streaming=False,
    max_groups=2,
)
def _run_fair_swap(context: RunContext) -> RunResult:
    """Run the offline FairSwap baseline."""
    return fair_swap(context.elements, context.metric, context.require_constraint())


@register_algorithm(
    "FairFlow",
    kind="offline",
    aliases=("fair-flow",),
    description="Offline 1/(3m-1)-approximate fair DM via max-flow (any m)",
    streaming=False,
)
def _run_fair_flow(context: RunContext) -> RunResult:
    """Run the offline FairFlow baseline."""
    return fair_flow(context.elements, context.metric, context.require_constraint())


@register_algorithm(
    "FairGMM",
    kind="offline",
    aliases=("fair-gmm",),
    description="Offline 1/5-approximate fair DM by enumeration (small k and m)",
    streaming=False,
    max_groups=5,
    options=("max_combinations",),
)
def _run_fair_gmm(context: RunContext) -> RunResult:
    """Run the offline FairGMM baseline."""
    return fair_gmm(
        context.elements,
        context.metric,
        context.require_constraint(),
        max_combinations=context.option("max_combinations", 2_000_000),
    )


def _validate_mwu(options: Mapping[str, Any]) -> None:
    """Eager checks for the MWU loop-size options.

    ``epsilon`` and ``seed`` arrive as problem-level :func:`repro.solve`
    arguments (they are SolveSpec fields, not entry options) and are
    range-checked inside :func:`~repro.baselines.mwu.mwu_fair`.
    """
    if "iterations" in options:
        require_positive_int(options["iterations"], "iterations")
    if "rounds" in options:
        require_positive_int(options["rounds"], "rounds")


@register_algorithm(
    "MWU",
    kind="offline",
    aliases=("mwu",),
    description="MWU + LP-rounding quality oracle (near-exact fair DM anchor)",
    streaming=False,
    options=("iterations", "rounds"),
    validator=_validate_mwu,
)
def _run_mwu(context: RunContext) -> RunResult:
    """Run the MWU + LP-rounding quality oracle on the full element list."""
    return mwu_fair(
        context.elements,
        context.metric,
        context.require_constraint(),
        epsilon=context.epsilon,
        iterations=context.option("iterations", 32),
        rounds=context.option("rounds", 8),
        seed=context.seed,
    )


def _validate_coreset(options: Mapping[str, Any]) -> None:
    """Eager checks for the coreset options."""
    if "num_parts" in options:
        require_positive_int(options["num_parts"], "num_parts")
    _validate_index(options)


@register_algorithm(
    "Coreset",
    kind="coreset",
    aliases=("coreset",),
    description="Sequential composable-coreset route (per-group GMM summaries)",
    streaming=False,
    options=("num_parts", "refine_with_swap", "index"),
    validator=_validate_coreset,
)
def _run_coreset(context: RunContext) -> RunResult:
    """Run the composable-coreset route with harness-style accounting."""
    constraint = context.require_constraint()
    num_parts = context.option("num_parts", 4)
    timer = Timer()
    with timer.measure():
        solution = coreset_fair_diversity(
            context.elements,
            context.metric,
            constraint,
            num_parts=num_parts,
            refine_with_swap=context.option("refine_with_swap", True),
            index=context.option("index"),
        )
    size = context.size if context.size is not None else len(context.elements)
    stats = StreamStats(
        elements_processed=size,
        peak_stored_elements=size,
        final_stored_elements=size,
        stream_seconds=timer.elapsed,
    )
    return RunResult(
        algorithm="Coreset",
        solution=solution,
        stats=stats,
        params={"k": constraint.total_size, "num_parts": num_parts},
    )


def _validate_window(options: Mapping[str, Any]) -> None:
    """Eager checks for the window options."""
    if "window" in options:
        require_positive_int(options["window"], "window")
    if "blocks" in options:
        require_positive_int(options["blocks"], "blocks")
    _validate_index(options)


def _make_windowed(
    context: RunContext,
    factory: Any,
    window: Optional[int],
    metric: Optional[Any] = None,
):
    """A windowed algorithm (``factory``) configured from the context's options.

    ``metric`` overrides the context's metric — the one-shot runner passes
    a counting wrapper so the run's distance accounting is reported.
    """
    if window is None:
        raise InvalidParameterError(
            f"{factory.name} needs a window length; pass window= (sessions) or "
            f"provide sized data (runs default to window = dataset size)"
        )
    requested_blocks = context.option("blocks", 8)
    blocks = min(requested_blocks, window)
    if blocks != requested_blocks:
        _LOGGER.warning(
            "%s: blocks=%d exceeds window=%d; clamping to %d (one block per "
            "window element)",
            factory.name,
            requested_blocks,
            window,
            blocks,
        )
    return factory(
        metric=context.metric if metric is None else metric,
        constraint=context.require_constraint(),
        window=window,
        blocks=blocks,
        index=context.option("index"),
    )


def _windowed_session(factory):
    """A session factory wrapping ``factory``'s algorithm in a WindowSession.

    The algorithm gets a counting metric so session queries report real
    distance accounting, mirroring the one-shot runner.
    """

    def _factory(context: RunContext):
        from repro.api.session import WindowSession

        return WindowSession(
            _make_windowed(
                context,
                factory,
                context.option("window", context.size),
                metric=CountingMetric(context.metric),
            )
        )

    return _factory


def _run_windowed(context: RunContext, factory: Any) -> RunResult:
    """One-pass run of a windowed algorithm with full distance accounting."""
    effective_window = context.option("window", context.size)
    counting = CountingMetric(context.metric)
    algorithm = _make_windowed(context, factory, effective_window, metric=counting)
    stats = StreamStats()
    stream_timer = Timer()
    with stream_timer.measure():
        for element in context.stream():
            algorithm.process(element)
            stats.elements_processed += 1
            stats.record_stored(algorithm.stored_elements)
    stream_calls = counting.calls
    post_timer = Timer()
    with post_timer.measure():
        solution = algorithm.solution()
    stats.stream_seconds = stream_timer.elapsed
    stats.postprocess_seconds = post_timer.elapsed
    stats.stream_distance_computations = stream_calls
    stats.postprocess_distance_computations = counting.calls - stream_calls
    return RunResult(
        algorithm=factory.name,
        solution=solution,
        stats=stats,
        params={
            "k": context.require_constraint().total_size,
            "window": effective_window,
            "blocks": algorithm.blocks,
        },
    )


@register_algorithm(
    "WindowFDM",
    kind="window",
    aliases=("window-fdm", "window"),
    description="Checkpointed sliding-window fair DM via per-block GMM summaries",
    streaming=True,
    sessions=True,
    options=("window", "blocks", "index"),
    validator=_validate_window,
    session_factory=_windowed_session(CheckpointedWindowFDM),
)
def _run_window(context: RunContext) -> RunResult:
    """Run the checkpointed windowed baseline on the context's stream."""
    return _run_windowed(context, CheckpointedWindowFDM)


@register_algorithm(
    "SlidingWindowFDM",
    kind="window",
    aliases=("sliding-window", "sliding_window"),
    description="Incremental sliding-window fair DM via retiring per-block coresets",
    streaming=True,
    sessions=True,
    options=("window", "blocks", "index"),
    validator=_validate_window,
    session_factory=_windowed_session(SlidingWindowFDM),
)
def _run_sliding_window(context: RunContext) -> RunResult:
    """Run the incremental sliding-window algorithm on the context's stream."""
    return _run_windowed(context, SlidingWindowFDM)


def _validate_parallel(options: Mapping[str, Any]) -> None:
    """Eager checks for the parallel-engine options (backend, strategy, ...)."""
    shards = options.get("shards", 4)
    if shards not in ("auto", None):
        shards = require_positive_int(shards, "shards")
    else:
        shards = 1
    backend = options.get("backend", "serial")
    if backend != "auto":
        resolve_backend(backend)
    transport = options.get("transport", "auto")
    if transport not in TRANSPORTS:
        raise InvalidParameterError(
            f"transport must be one of {', '.join(TRANSPORTS)}, got {transport!r}"
        )
    ShardPlanner(shards, strategy=options.get("strategy", "stratified"))
    resolve_summarizer(options.get("summarizer", "gmm"))
    if "summary_size" in options:
        require_positive_int(options["summary_size"], "summary_size")


@register_algorithm(
    "ParallelFDM",
    kind="parallel",
    aliases=("parallel-fdm", "parallel"),
    description="Sharded fair DM with pluggable serial/thread/process backends",
    streaming=True,
    parallel=True,
    options=(
        "shards",
        "backend",
        "strategy",
        "summarizer",
        "summary_size",
        "transport",
        "refine_with_swap",
    ),
    validator=_validate_parallel,
)
def _run_parallel(context: RunContext) -> RunResult:
    """Run the sharded parallel engine on the context's stream."""
    algorithm = ParallelFDM(
        metric=context.metric,
        constraint=context.require_constraint(),
        shards=context.option("shards", 4),
        backend=context.option("backend", "serial"),
        strategy=context.option("strategy", "stratified"),
        summarizer=context.option("summarizer", "gmm"),
        summary_size=context.option("summary_size"),
        transport=context.option("transport", "auto"),
        refine_with_swap=context.option("refine_with_swap", True),
        seed=context.seed,
    )
    return algorithm.run(context.stream())
