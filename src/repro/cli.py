"""Command-line interface for running fair diversity maximization experiments.

Examples
--------
Run SFDM2 on the Adult (race) surrogate with k = 20::

    python -m repro run --dataset adult-race --algorithm SFDM2 -k 20

Run SFDM2 with the vectorized batch ingestion path on a large stream::

    python -m repro run --dataset synthetic-m2 --algorithm SFDM2 -k 20 \
        --n 50000 --batch-size 1024

Run the sharded parallel engine over four worker processes::

    python -m repro run --dataset synthetic-m2 --algorithm ParallelFDM -k 20 \
        --n 100000 --shards 4 --backend process

Maintain a fair solution over a sliding window of the most recent 5 000
elements::

    python -m repro run --dataset synthetic-m2 --algorithm SlidingWindowFDM \
        -k 20 --n 50000 --window 5000 --blocks 8

Compare every applicable algorithm on a synthetic stream and save a CSV::

    python -m repro compare --dataset synthetic-m10 -k 20 --output results.csv

List the available datasets, or the registered algorithms with their
capabilities::

    python -m repro datasets
    python -m repro --list-algorithms
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional, Sequence

from repro import obs
from repro.api.registry import algorithm_names, algorithms, get_algorithm
from repro.datasets.registry import dataset_names, load_dataset
from repro.evaluation.harness import (
    ExperimentConfig,
    algorithm_spec,
    default_algorithms,
    extended_algorithms,
    run_algorithm,
    run_experiment,
)
from repro.evaluation.reporting import format_table, records_to_rows, write_csv
from repro.parallel.backends import backend_names
from repro.parallel.shm import TRANSPORTS
from repro.utils.errors import ReproError


def format_algorithm_table() -> str:
    """The registry catalogue as a fixed-width table (``--list-algorithms``)."""
    rows = []
    for info in algorithms():
        caps = info.capabilities
        flags = [
            flag
            for flag, enabled in (
                ("batch", caps.batch),
                ("sessions", caps.sessions),
                ("parallel", caps.parallel),
            )
            if enabled
        ]
        rows.append(
            {
                "algorithm": info.name,
                "kind": caps.kind,
                "groups": "any" if caps.max_groups is None else f"<= {caps.max_groups}",
                "constraint": "fair" if caps.constrained else "none",
                "capabilities": ",".join(flags) or "-",
                "description": info.description,
            }
        )
    columns = ["algorithm", "kind", "groups", "constraint", "capabilities", "description"]
    return format_table(rows, columns=columns, title="registered algorithms")


class _ListAlgorithmsAction(argparse.Action):
    """``repro --list-algorithms``: print the registry catalogue and exit."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(format_algorithm_table())
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming fair diversity maximization (ICDE 2022 reproduction)",
    )
    parser.add_argument(
        "--list-algorithms",
        action=_ListAlgorithmsAction,
        help="print the registered algorithms with kinds and capabilities, then exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list available datasets")
    datasets_parser.set_defaults(func=_cmd_datasets)

    algorithms_parser = subparsers.add_parser(
        "algorithms", help="list registered algorithms and their capabilities"
    )
    algorithms_parser.set_defaults(func=_cmd_algorithms)

    run_parser = subparsers.add_parser("run", help="run one algorithm on one dataset")
    _add_common_arguments(run_parser)
    run_parser.add_argument(
        "--algorithm",
        choices=tuple(algorithm_names()),
        default="SFDM2",
        help="algorithm to run, by registry name (default: SFDM2)",
    )
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="run every applicable algorithm on one dataset"
    )
    _add_common_arguments(compare_parser)
    compare_parser.add_argument(
        "--include-fair-gmm",
        action="store_true",
        help="also run the enumeration-based FairGMM baseline (small k/m only)",
    )
    compare_parser.add_argument(
        "--include-extended",
        action="store_true",
        help=(
            "also run the extended suite (Coreset, WindowFDM, SlidingWindowFDM "
            "with --window/--blocks, and ParallelFDM with --shards/--backend)"
        ),
    )
    compare_parser.add_argument("--output", help="write the result rows to this CSV file")
    compare_parser.set_defaults(func=_cmd_compare)

    serve_parser = subparsers.add_parser(
        "serve", help="run the multi-tenant HTTP/JSON session server"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8747,
        help="TCP port; 0 picks an ephemeral port (default 8747)",
    )
    serve_parser.add_argument(
        "--state-dir",
        default="serving-state",
        help="directory for eviction/drain checkpoints (default ./serving-state)",
    )
    serve_parser.add_argument(
        "--max-sessions",
        type=int,
        default=10_000,
        help="total named sessions admitted, live + evicted (default 10000)",
    )
    serve_parser.add_argument(
        "--max-live",
        type=int,
        default=256,
        help="sessions resident in memory before LRU eviction (default 256)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="queued rows that force an immediate flush (default 256)",
    )
    serve_parser.add_argument(
        "--flush-ms",
        type=float,
        default=20.0,
        help="deadline before a partial offer queue flushes anyway (default 20)",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=8_192,
        help="per-session queued-row bound; beyond it offers get 429 (default 8192)",
    )
    serve_parser.add_argument(
        "--default-algorithm",
        choices=tuple(algorithm_names()),
        default="SFDM2",
        help="algorithm when a create request names none (default SFDM2)",
    )
    serve_parser.add_argument(
        "--trace",
        action="store_true",
        help="emit hierarchical span traces to stderr while serving",
    )
    serve_parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write span traces as JSON lines to PATH (implies tracing)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    return parser


def _shards_arg(value: str):
    """``--shards`` parser: a positive integer or the literal ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        required=True,
        help=f"dataset name (one of: {', '.join(dataset_names())})",
    )
    parser.add_argument("-k", type=int, default=20, help="solution size (default 20)")
    parser.add_argument("--epsilon", type=float, default=0.1, help="guess-ladder epsilon")
    parser.add_argument("--n", type=int, default=None, help="override the dataset size")
    parser.add_argument("--seed", type=int, default=42, help="base RNG seed")
    parser.add_argument(
        "--fairness",
        choices=("equal", "proportional"),
        default="equal",
        help="quota rule (default: equal representation)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=1, help="stream permutations to average over"
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "chunk size for the vectorized batch ingestion path of SFDM1/SFDM2 "
            "(default: element-at-a-time updates)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=_shards_arg,
        default=4,
        help=(
            "shard count for the ParallelFDM engine, or 'auto' to let the "
            "execution planner size it (default 4)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=tuple(backend_names()) + ("auto",),
        default="serial",
        help=(
            "execution backend for the ParallelFDM shards; 'auto' picks one "
            "from the input size and CPU count (default: serial)"
        ),
    )
    parser.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="auto",
        help=(
            "how ParallelFDM ships shards to process workers: shared memory, "
            "pickle, or auto-degrade (default: auto); solutions are identical "
            "either way"
        ),
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help=(
            "window length for the windowed algorithms (WindowFDM, "
            "SlidingWindowFDM); default: the whole stream"
        ),
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=8,
        help="number of blocks the window is divided into (default 8)",
    )
    parser.add_argument(
        "--index",
        choices=("kd", "ball", "none", "auto"),
        default=None,
        help=(
            "spatial index for the candidate screens and farthest-point "
            "rounds; solutions are identical, distance evaluations drop "
            "(default: brute-force kernels)"
        ),
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help=(
            "MWU iterations (oracle calls + weight updates) per distance "
            "guess for the MWU quality oracle (default 32)"
        ),
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help=(
            "randomized-rounding attempts per distance guess for the MWU "
            "quality oracle (default 8)"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="emit hierarchical span traces to stderr while the command runs",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write span traces as JSON lines to PATH (implies tracing)",
    )


_COLUMNS = [
    "dataset",
    "algorithm",
    "k",
    "m",
    "fairness",
    "diversity",
    "total_seconds",
    "stored_elements",
]


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    dataset = load_dataset(args.dataset, n=args.n, seed=args.seed)
    return ExperimentConfig(
        dataset=dataset,
        k=args.k,
        epsilon=args.epsilon,
        fairness=args.fairness,
        repetitions=args.repetitions,
        base_seed=args.seed,
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name in dataset_names():
        print(name)
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    print(format_algorithm_table())
    return 0


def _options_for(args: argparse.Namespace, name: str) -> dict:
    """The CLI flags that apply to algorithm ``name``, per its capabilities.

    Flags the entry does not declare (e.g. ``--shards`` for SFDM2) are
    dropped — every flag has a sensible default, so filtering by declared
    option names keeps ``repro run`` forgiving while ``repro.solve`` stays
    strict.
    """
    accepted = get_algorithm(name).capabilities.options
    flag_values = {
        "batch_size": args.batch_size,
        "shards": args.shards,
        "backend": args.backend,
        "transport": args.transport,
        "window": args.window,
        "blocks": args.blocks,
        "index": args.index,
        "iterations": args.iterations,
        "rounds": args.rounds,
    }
    return {key: value for key, value in flag_values.items() if key in accepted}


def _cmd_run(args: argparse.Namespace) -> int:
    config = _make_config(args)
    spec = algorithm_spec(args.algorithm, **_options_for(args, args.algorithm))
    record = run_algorithm(spec, config)
    rows = records_to_rows([record], columns=_COLUMNS)
    print(format_table(rows, columns=_COLUMNS, title=f"{args.algorithm} on {args.dataset}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _make_config(args)
    algorithms = default_algorithms(
        include_fair_gmm=args.include_fair_gmm,
        batch_size=args.batch_size,
        index=args.index,
    )
    if args.include_extended:
        algorithms += extended_algorithms(
            shards=args.shards,
            backend=args.backend,
            window=args.window,
            blocks=args.blocks,
        )
    records = run_experiment([config], algorithms=algorithms)
    rows = records_to_rows(records, columns=_COLUMNS)
    print(format_table(rows, columns=_COLUMNS, title=f"comparison on {args.dataset}"))
    if args.output:
        path = write_csv(rows, args.output, columns=_COLUMNS)
        print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import ManagerConfig, run_server

    config = ManagerConfig(
        state_dir=args.state_dir,
        max_sessions=args.max_sessions,
        max_live=args.max_live,
        max_batch=args.max_batch,
        flush_ms=args.flush_ms,
        max_queue=args.max_queue,
        default_algorithm=args.default_algorithm,
    )
    return run_server(config, host=args.host, port=args.port)


def _trace_scope(args: argparse.Namespace):
    """The tracing context the parsed flags ask for (no-op by default).

    ``--trace-out PATH`` routes spans to a JSONL file; ``--trace`` alone
    renders them on stderr.  Commands without the common flags (e.g.
    ``datasets``) simply never set the attributes.
    """
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        return obs.tracing(trace_out)
    if getattr(args, "trace", False):
        return obs.tracing("stderr")
    return contextlib.nullcontext()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _trace_scope(args):
            return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
