"""Command-line interface for running fair diversity maximization experiments.

Examples
--------
Run SFDM2 on the Adult (race) surrogate with k = 20::

    python -m repro run --dataset adult-race --algorithm SFDM2 -k 20

Run SFDM2 with the vectorized batch ingestion path on a large stream::

    python -m repro run --dataset synthetic-m2 --algorithm SFDM2 -k 20 \
        --n 50000 --batch-size 1024

Run the sharded parallel engine over four worker processes::

    python -m repro run --dataset synthetic-m2 --algorithm ParallelFDM -k 20 \
        --n 100000 --shards 4 --backend process

Compare every applicable algorithm on a synthetic stream and save a CSV::

    python -m repro compare --dataset synthetic-m10 -k 20 --output results.csv

List the available datasets::

    python -m repro datasets
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.datasets.registry import dataset_names, load_dataset
from repro.evaluation.harness import (
    ExperimentConfig,
    default_algorithms,
    extended_algorithms,
    run_algorithm,
    run_experiment,
)
from repro.evaluation.reporting import format_table, records_to_rows, write_csv
from repro.parallel.backends import backend_names
from repro.utils.errors import ReproError

_ALGORITHM_CHOICES = (
    "SFDM1",
    "SFDM2",
    "GMM",
    "FairSwap",
    "FairFlow",
    "FairGMM",
    "Coreset",
    "WindowFDM",
    "ParallelFDM",
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Streaming fair diversity maximization (ICDE 2022 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list available datasets")
    datasets_parser.set_defaults(func=_cmd_datasets)

    run_parser = subparsers.add_parser("run", help="run one algorithm on one dataset")
    _add_common_arguments(run_parser)
    run_parser.add_argument(
        "--algorithm",
        choices=_ALGORITHM_CHOICES,
        default="SFDM2",
        help="algorithm to run (default: SFDM2)",
    )
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = subparsers.add_parser(
        "compare", help="run every applicable algorithm on one dataset"
    )
    _add_common_arguments(compare_parser)
    compare_parser.add_argument(
        "--include-fair-gmm",
        action="store_true",
        help="also run the enumeration-based FairGMM baseline (small k/m only)",
    )
    compare_parser.add_argument(
        "--include-extended",
        action="store_true",
        help=(
            "also run the extended suite (Coreset, WindowFDM, and ParallelFDM "
            "with --shards/--backend)"
        ),
    )
    compare_parser.add_argument("--output", help="write the result rows to this CSV file")
    compare_parser.set_defaults(func=_cmd_compare)

    return parser


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        required=True,
        help=f"dataset name (one of: {', '.join(dataset_names())})",
    )
    parser.add_argument("-k", type=int, default=20, help="solution size (default 20)")
    parser.add_argument("--epsilon", type=float, default=0.1, help="guess-ladder epsilon")
    parser.add_argument("--n", type=int, default=None, help="override the dataset size")
    parser.add_argument("--seed", type=int, default=42, help="base RNG seed")
    parser.add_argument(
        "--fairness",
        choices=("equal", "proportional"),
        default="equal",
        help="quota rule (default: equal representation)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=1, help="stream permutations to average over"
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "chunk size for the vectorized batch ingestion path of SFDM1/SFDM2 "
            "(default: element-at-a-time updates)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for the ParallelFDM engine (default 4)",
    )
    parser.add_argument(
        "--backend",
        choices=tuple(backend_names()),
        default="serial",
        help="execution backend for the ParallelFDM shards (default: serial)",
    )


_COLUMNS = [
    "dataset",
    "algorithm",
    "k",
    "m",
    "fairness",
    "diversity",
    "total_seconds",
    "stored_elements",
]


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    dataset = load_dataset(args.dataset, n=args.n, seed=args.seed)
    return ExperimentConfig(
        dataset=dataset,
        k=args.k,
        epsilon=args.epsilon,
        fairness=args.fairness,
        repetitions=args.repetitions,
        base_seed=args.seed,
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    for name in dataset_names():
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _make_config(args)
    algorithms = default_algorithms(
        include_fair_gmm=True, batch_size=args.batch_size
    ) + extended_algorithms(shards=args.shards, backend=args.backend)
    spec = next((s for s in algorithms if s.name == args.algorithm), None)
    if spec is None:
        print(f"unknown algorithm {args.algorithm}", file=sys.stderr)
        return 2
    record = run_algorithm(spec, config)
    rows = records_to_rows([record], columns=_COLUMNS)
    print(format_table(rows, columns=_COLUMNS, title=f"{args.algorithm} on {args.dataset}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _make_config(args)
    algorithms = default_algorithms(
        include_fair_gmm=args.include_fair_gmm, batch_size=args.batch_size
    )
    if args.include_extended:
        algorithms += extended_algorithms(shards=args.shards, backend=args.backend)
    records = run_experiment([config], algorithms=algorithms)
    rows = records_to_rows(records, columns=_COLUMNS)
    print(format_table(rows, columns=_COLUMNS, title=f"comparison on {args.dataset}"))
    if args.output:
        path = write_csv(rows, args.output, columns=_COLUMNS)
        print(f"wrote {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
