"""Synthetic datasets used for the paper's scalability experiments.

The paper's synthetic workload is: ten 2-D Gaussian isotropic blobs with
random centres in ``[-10, 10]^2`` and identity covariance, points assigned
to groups uniformly at random, Euclidean distance, ``n`` from ``10^3`` to
``10^7`` and ``m`` from 2 to 20.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.spec import DatasetSpec
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive_int


def synthetic_blobs(
    n: int,
    m: int = 2,
    num_blobs: int = 10,
    dimensions: int = 2,
    center_range: float = 10.0,
    cluster_std: float = 1.0,
    seed: Optional[int] = None,
) -> DatasetSpec:
    """Gaussian-blob dataset matching the paper's synthetic workload.

    Parameters
    ----------
    n:
        Total number of points.
    m:
        Number of sensitive groups; points are assigned to groups uniformly
        at random, independent of their position.
    num_blobs:
        Number of Gaussian components (10 in the paper).
    dimensions:
        Dimensionality of the points (2 in the paper).
    center_range:
        Blob centres are drawn uniformly from ``[-center_range, center_range]^d``.
    cluster_std:
        Standard deviation of each isotropic blob (1 in the paper).
    seed:
        RNG seed for reproducibility.
    """
    n = require_positive_int(n, "n")
    m = require_positive_int(m, "m")
    num_blobs = require_positive_int(num_blobs, "num_blobs")
    dimensions = require_positive_int(dimensions, "dimensions")
    rng = ensure_rng(seed)
    centers = rng.uniform(-center_range, center_range, size=(num_blobs, dimensions))
    assignments = rng.integers(0, num_blobs, size=n)
    points = centers[assignments] + rng.normal(0.0, cluster_std, size=(n, dimensions))
    groups = rng.integers(0, m, size=n)
    elements = [
        Element(uid=i, vector=points[i], group=int(groups[i])) for i in range(n)
    ]
    return DatasetSpec(
        name=f"synthetic-blobs(n={n},m={m})",
        elements=elements,
        metric=EuclideanMetric(),
        notes=(
            f"{num_blobs} Gaussian blobs in [-{center_range},{center_range}]^{dimensions}, "
            f"std={cluster_std}, groups uniform at random"
        ),
    )


def uniform_points(
    n: int,
    m: int = 1,
    dimensions: int = 2,
    low: float = 0.0,
    high: float = 1.0,
    seed: Optional[int] = None,
) -> DatasetSpec:
    """Uniform random points in a box — used for the illustrative figures.

    Figure 1 (max-sum vs max-min) and Figure 2 (fair vs unconstrained) of
    the paper use points spread over the unit square; this generator
    reproduces that setting and doubles as a simple fixture for tests.
    """
    n = require_positive_int(n, "n")
    m = require_positive_int(m, "m")
    dimensions = require_positive_int(dimensions, "dimensions")
    rng = ensure_rng(seed)
    points = rng.uniform(low, high, size=(n, dimensions))
    groups = rng.integers(0, m, size=n)
    elements = [
        Element(uid=i, vector=points[i], group=int(groups[i])) for i in range(n)
    ]
    return DatasetSpec(
        name=f"uniform(n={n},m={m})",
        elements=elements,
        metric=EuclideanMetric(),
        notes=f"uniform points in [{low},{high}]^{dimensions}, groups uniform at random",
    )
