"""Value object bundling a generated dataset with its metric and metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.data.store import ElementStore
from repro.metrics.base import Metric
from repro.metrics.space import MetricSpace
from repro.data.element import Element
from repro.streaming.stream import DataStream


@dataclass
class DatasetSpec:
    """A fully materialised dataset ready to be streamed or used offline.

    Attributes
    ----------
    name:
        Dataset identifier used in reports (e.g. ``"adult-sex"``).
    elements:
        The generated elements in canonical order.
    metric:
        The distance metric the paper uses for this dataset.
    group_names:
        Optional mapping from group label to a human-readable name.
    notes:
        Free-text description of how the data was generated (surrogate
        parameters, scaling decisions, …).
    """

    name: str
    elements: List[Element]
    metric: Metric
    group_names: Dict[int, str] = field(default_factory=dict)
    notes: str = ""
    _store: Optional[ElementStore] = field(default=None, init=False, repr=False, compare=False)
    _store_resolved: bool = field(default=False, init=False, repr=False, compare=False)

    @property
    def size(self) -> int:
        """Number of elements ``n``."""
        return len(self.elements)

    @property
    def num_groups(self) -> int:
        """Number of distinct groups ``m``."""
        return len({element.group for element in self.elements})

    def group_sizes(self) -> Dict[int, int]:
        """Mapping of group label to element count."""
        sizes: Dict[int, int] = {}
        for element in self.elements:
            sizes[element.group] = sizes.get(element.group, 0) + 1
        return sizes

    def columnar(self) -> Optional[ElementStore]:
        """The dataset as a columnar :class:`ElementStore`, built lazily once.

        ``None`` when the payloads are not uniformly numeric (ragged or
        categorical data stays on the object path).
        """
        if not self._store_resolved:
            self._store = ElementStore.try_from_elements(self.elements)
            self._store_resolved = True
        return self._store

    def stream(self, seed: Optional[int] = None) -> DataStream:
        """A one-pass stream over the dataset, shuffled with ``seed`` if given.

        Numeric datasets stream from the columnar store (zero-copy row
        views, store-aware ingestion); others stream the element list.  The
        element order — and therefore every algorithm's output — is
        identical either way.
        """
        store = self.columnar()
        if store is not None:
            return DataStream(store=store, shuffle_seed=seed, name=self.name)
        return DataStream(self.elements, shuffle_seed=seed, name=self.name)

    def space(self) -> MetricSpace:
        """The offline :class:`MetricSpace` view used by baselines and oracles."""
        return MetricSpace(self.elements, self.metric)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetSpec(name={self.name!r}, n={self.size}, m={self.num_groups}, "
            f"metric={self.metric.name})"
        )
