"""Value object bundling a generated dataset with its metric and metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.base import Metric
from repro.metrics.space import MetricSpace
from repro.streaming.element import Element
from repro.streaming.stream import DataStream


@dataclass
class DatasetSpec:
    """A fully materialised dataset ready to be streamed or used offline.

    Attributes
    ----------
    name:
        Dataset identifier used in reports (e.g. ``"adult-sex"``).
    elements:
        The generated elements in canonical order.
    metric:
        The distance metric the paper uses for this dataset.
    group_names:
        Optional mapping from group label to a human-readable name.
    notes:
        Free-text description of how the data was generated (surrogate
        parameters, scaling decisions, …).
    """

    name: str
    elements: List[Element]
    metric: Metric
    group_names: Dict[int, str] = field(default_factory=dict)
    notes: str = ""

    @property
    def size(self) -> int:
        """Number of elements ``n``."""
        return len(self.elements)

    @property
    def num_groups(self) -> int:
        """Number of distinct groups ``m``."""
        return len({element.group for element in self.elements})

    def group_sizes(self) -> Dict[int, int]:
        """Mapping of group label to element count."""
        sizes: Dict[int, int] = {}
        for element in self.elements:
            sizes[element.group] = sizes.get(element.group, 0) + 1
        return sizes

    def stream(self, seed: Optional[int] = None) -> DataStream:
        """A one-pass stream over the dataset, shuffled with ``seed`` if given."""
        return DataStream(self.elements, shuffle_seed=seed, name=self.name)

    def space(self) -> MetricSpace:
        """The offline :class:`MetricSpace` view used by baselines and oracles."""
        return MetricSpace(self.elements, self.metric)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetSpec(name={self.name!r}, n={self.size}, m={self.num_groups}, "
            f"metric={self.metric.name})"
        )
