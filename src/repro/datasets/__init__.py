"""Dataset generators and surrogates for the paper's evaluation datasets.

Because the original datasets (Adult, CelebA, Census, Lyrics) cannot be
downloaded in this environment, each is represented by a synthetic
*surrogate* that reproduces the statistics that matter to the algorithms:
the number of points, the feature dimensionality, the distance metric, and
the number and skew of the sensitive groups.  See DESIGN.md §2.3 for the
substitution rationale.
"""

from repro.datasets.spec import DatasetSpec
from repro.datasets.synthetic import synthetic_blobs, uniform_points
from repro.datasets.surrogates import (
    adult_surrogate,
    celeba_surrogate,
    census_surrogate,
    lyrics_surrogate,
)
from repro.datasets.registry import DATASETS, load_dataset, dataset_names

__all__ = [
    "DatasetSpec",
    "synthetic_blobs",
    "uniform_points",
    "adult_surrogate",
    "celeba_surrogate",
    "census_surrogate",
    "lyrics_surrogate",
    "DATASETS",
    "load_dataset",
    "dataset_names",
]
