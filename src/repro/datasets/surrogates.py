"""Synthetic surrogates for the four real-world datasets used in the paper.

The original datasets cannot be downloaded in this offline environment, so
each surrogate reproduces the characteristics the algorithms actually see:

* the number of points ``n`` (scaled down by default so laptop runs finish
  quickly; pass a larger ``n`` to approach the paper's sizes),
* the feature dimensionality and value distribution style,
* the distance metric,
* the number of sensitive groups and their size skew.

Group-assignment skews follow the figures reported in the paper (Adult: 67%
male, 87% White; CelebA: roughly balanced sex and a 78/22 young/not-young
split; Census: roughly balanced sex, seven age buckets; Lyrics: a
long-tailed genre distribution over 15 genres).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.spec import DatasetSpec
from repro.metrics.vector import AngularMetric, EuclideanMetric, ManhattanMetric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError
from repro.utils.rng import ensure_rng
from repro.utils.validation import require_positive_int


def _sample_group_labels(
    rng: np.random.Generator, n: int, probabilities: Sequence[float]
) -> np.ndarray:
    """Sample ``n`` group labels from a categorical distribution."""
    probabilities = np.asarray(probabilities, dtype=float)
    probabilities = probabilities / probabilities.sum()
    return rng.choice(len(probabilities), size=n, p=probabilities)


def _combine_groups(primary: np.ndarray, secondary: np.ndarray, secondary_count: int) -> np.ndarray:
    """Cross two group labelings into a joint labeling (paper's sex+race etc.)."""
    return primary * secondary_count + secondary


_ADULT_SEX_PROBS = [0.67, 0.33]  # male / female
_ADULT_RACE_PROBS = [0.855, 0.096, 0.031, 0.010, 0.008]  # White, Black, API, AIE, Other

_CELEBA_SEX_PROBS = [0.584, 0.416]  # female / male
_CELEBA_AGE_PROBS = [0.773, 0.227]  # young / not young

_CENSUS_SEX_PROBS = [0.512, 0.488]
_CENSUS_AGE_PROBS = [0.13, 0.15, 0.16, 0.15, 0.13, 0.14, 0.14]  # seven age buckets

_LYRICS_GENRE_PROBS = [
    0.22, 0.15, 0.12, 0.10, 0.08, 0.07, 0.06, 0.05, 0.04, 0.03, 0.025, 0.02, 0.015, 0.01, 0.01,
]


def _gaussian_mixture_features(
    rng: np.random.Generator,
    n: int,
    dimensions: int,
    num_components: int,
    spread: float,
    standardize: bool,
) -> np.ndarray:
    """Draw features from a random Gaussian mixture, optionally z-scored."""
    centers = rng.uniform(-spread, spread, size=(num_components, dimensions))
    scales = rng.uniform(0.5, 1.5, size=num_components)
    assignments = rng.integers(0, num_components, size=n)
    features = centers[assignments] + rng.normal(
        0.0, 1.0, size=(n, dimensions)
    ) * scales[assignments][:, None]
    if standardize:
        mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        features = (features - mean) / std
    return features


def adult_surrogate(
    n: int = 5_000,
    group_by: str = "sex",
    seed: Optional[int] = None,
) -> DatasetSpec:
    """Surrogate for the Adult census-income dataset.

    The paper uses 48 842 records with 6 z-scored numeric attributes under
    the Euclidean metric, grouped by sex (m=2), race (m=5), or both (m=10).

    Parameters
    ----------
    n:
        Number of records to generate (default 5 000; pass 48 842 for a
        paper-scale run).
    group_by:
        ``"sex"``, ``"race"``, or ``"sex+race"``.
    """
    n = require_positive_int(n, "n")
    rng = ensure_rng(seed)
    features = _gaussian_mixture_features(
        rng, n, dimensions=6, num_components=8, spread=2.0, standardize=True
    )
    sex = _sample_group_labels(rng, n, _ADULT_SEX_PROBS)
    race = _sample_group_labels(rng, n, _ADULT_RACE_PROBS)
    if group_by == "sex":
        groups = sex
        names = {0: "male", 1: "female"}
    elif group_by == "race":
        groups = race
        names = {0: "white", 1: "black", 2: "asian-pac", 3: "amer-indian", 4: "other"}
    elif group_by == "sex+race":
        groups = _combine_groups(sex, race, len(_ADULT_RACE_PROBS))
        names = {}
    else:
        raise InvalidParameterError(
            f"group_by must be 'sex', 'race', or 'sex+race', got {group_by!r}"
        )
    elements = [
        Element(uid=i, vector=features[i], group=int(groups[i])) for i in range(n)
    ]
    return DatasetSpec(
        name=f"adult-{group_by}",
        elements=elements,
        metric=EuclideanMetric(),
        group_names=names,
        notes=(
            "Surrogate for UCI Adult: Gaussian-mixture features in R^6 (z-scored), "
            "Euclidean metric, group skew matching the real dataset "
            "(67% male, 85.5% White)."
        ),
    )


def celeba_surrogate(
    n: int = 5_000,
    group_by: str = "sex",
    seed: Optional[int] = None,
) -> DatasetSpec:
    """Surrogate for the CelebA face-attribute dataset.

    The paper uses 202 599 images described by 41 binary class labels under
    the Manhattan metric, grouped by sex (m=2), age (m=2), or both (m=4).
    The surrogate draws correlated Bernoulli attribute vectors: a latent
    2-D style vector tilts each attribute's probability so attributes are
    not independent (which keeps the distance distribution realistic).
    """
    n = require_positive_int(n, "n")
    rng = ensure_rng(seed)
    num_attributes = 41
    latent = rng.normal(0.0, 1.0, size=(n, 2))
    loadings = rng.normal(0.0, 1.0, size=(2, num_attributes))
    base_logit = rng.normal(-0.5, 1.0, size=num_attributes)
    logits = latent @ loadings + base_logit
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    features = (rng.uniform(size=(n, num_attributes)) < probabilities).astype(float)
    sex = _sample_group_labels(rng, n, _CELEBA_SEX_PROBS)
    age = _sample_group_labels(rng, n, _CELEBA_AGE_PROBS)
    if group_by == "sex":
        groups = sex
        names = {0: "female", 1: "male"}
    elif group_by == "age":
        groups = age
        names = {0: "young", 1: "not-young"}
    elif group_by == "sex+age":
        groups = _combine_groups(sex, age, len(_CELEBA_AGE_PROBS))
        names = {0: "female/young", 1: "female/not-young", 2: "male/young", 3: "male/not-young"}
    else:
        raise InvalidParameterError(
            f"group_by must be 'sex', 'age', or 'sex+age', got {group_by!r}"
        )
    elements = [
        Element(uid=i, vector=features[i], group=int(groups[i])) for i in range(n)
    ]
    return DatasetSpec(
        name=f"celeba-{group_by}",
        elements=elements,
        metric=ManhattanMetric(),
        group_names=names,
        notes=(
            "Surrogate for CelebA: 41 correlated binary attributes, Manhattan metric, "
            "sex and age skew matching the real label distribution."
        ),
    )


def census_surrogate(
    n: int = 10_000,
    group_by: str = "sex",
    seed: Optional[int] = None,
) -> DatasetSpec:
    """Surrogate for the 1990 US Census dataset.

    The paper uses 2 426 116 records with 25 normalized numeric attributes
    under the Manhattan metric, grouped by sex (m=2), age (m=7), or both
    (m=14).  The default ``n`` is scaled down to 10 000 so the offline
    baselines remain runnable; the streaming algorithms are insensitive to
    ``n`` by design.
    """
    n = require_positive_int(n, "n")
    rng = ensure_rng(seed)
    features = _gaussian_mixture_features(
        rng, n, dimensions=25, num_components=12, spread=1.5, standardize=True
    )
    sex = _sample_group_labels(rng, n, _CENSUS_SEX_PROBS)
    age = _sample_group_labels(rng, n, _CENSUS_AGE_PROBS)
    if group_by == "sex":
        groups = sex
        names = {0: "male", 1: "female"}
    elif group_by == "age":
        groups = age
        names = {i: f"age-bucket-{i}" for i in range(len(_CENSUS_AGE_PROBS))}
    elif group_by == "sex+age":
        groups = _combine_groups(sex, age, len(_CENSUS_AGE_PROBS))
        names = {}
    else:
        raise InvalidParameterError(
            f"group_by must be 'sex', 'age', or 'sex+age', got {group_by!r}"
        )
    elements = [
        Element(uid=i, vector=features[i], group=int(groups[i])) for i in range(n)
    ]
    return DatasetSpec(
        name=f"census-{group_by}",
        elements=elements,
        metric=ManhattanMetric(),
        group_names=names,
        notes=(
            "Surrogate for US Census 1990: Gaussian-mixture features in R^25 "
            "(normalized), Manhattan metric, sex/age group structure (m=2/7/14)."
        ),
    )


def lyrics_surrogate(
    n: int = 5_000,
    num_topics: int = 50,
    num_genres: int = 15,
    seed: Optional[int] = None,
) -> DatasetSpec:
    """Surrogate for the musiXmatch Lyrics dataset.

    The paper represents each of 122 448 songs by a 50-dimensional LDA topic
    distribution under the angular metric, with 15 genre groups.  The
    surrogate draws topic vectors from genre-specific Dirichlet
    distributions (each genre concentrates on a few topics), which matches
    both the simplex geometry and the fact that genres occupy different
    regions of topic space.
    """
    n = require_positive_int(n, "n")
    num_topics = require_positive_int(num_topics, "num_topics")
    num_genres = require_positive_int(num_genres, "num_genres")
    rng = ensure_rng(seed)
    genre_probs = np.asarray(_LYRICS_GENRE_PROBS[:num_genres], dtype=float)
    if len(genre_probs) < num_genres:
        extra = np.full(num_genres - len(genre_probs), genre_probs.min())
        genre_probs = np.concatenate([genre_probs, extra])
    genres = _sample_group_labels(rng, n, genre_probs)
    # Each genre gets its own sparse Dirichlet concentration vector.
    concentrations = np.full((num_genres, num_topics), 0.05)
    for genre in range(num_genres):
        favourite_topics = rng.choice(num_topics, size=5, replace=False)
        concentrations[genre, favourite_topics] = 2.0
    features = np.empty((n, num_topics))
    for genre in range(num_genres):
        mask = genres == genre
        count = int(mask.sum())
        if count:
            features[mask] = rng.dirichlet(concentrations[genre], size=count)
    elements = [
        Element(uid=i, vector=features[i], group=int(genres[i])) for i in range(n)
    ]
    return DatasetSpec(
        name="lyrics-genre",
        elements=elements,
        metric=AngularMetric(),
        group_names={i: f"genre-{i}" for i in range(num_genres)},
        notes=(
            "Surrogate for musiXmatch lyrics: genre-specific Dirichlet topic vectors "
            "on the 50-simplex, angular metric, long-tailed 15-genre distribution."
        ),
    )
