"""Registry mapping paper dataset/group-setting names to generator calls.

The evaluation harness and the benchmarks look datasets up by the names used
in the paper's Table II (e.g. ``"adult-sex"``, ``"census-age"``) so that the
experiment code reads like the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.datasets.spec import DatasetSpec
from repro.datasets.surrogates import (
    adult_surrogate,
    celeba_surrogate,
    census_surrogate,
    lyrics_surrogate,
)
from repro.datasets.synthetic import synthetic_blobs
from repro.utils.errors import InvalidParameterError

DatasetFactory = Callable[..., DatasetSpec]

#: Name -> factory for every dataset/group setting in the paper's Table II,
#: plus the synthetic workloads.  Factories accept ``n`` and ``seed``.
DATASETS: Dict[str, DatasetFactory] = {
    "adult-sex": lambda n=5_000, seed=None: adult_surrogate(n=n, group_by="sex", seed=seed),
    "adult-race": lambda n=5_000, seed=None: adult_surrogate(n=n, group_by="race", seed=seed),
    "adult-sex+race": lambda n=5_000, seed=None: adult_surrogate(
        n=n, group_by="sex+race", seed=seed
    ),
    "celeba-sex": lambda n=5_000, seed=None: celeba_surrogate(n=n, group_by="sex", seed=seed),
    "celeba-age": lambda n=5_000, seed=None: celeba_surrogate(n=n, group_by="age", seed=seed),
    "celeba-sex+age": lambda n=5_000, seed=None: celeba_surrogate(
        n=n, group_by="sex+age", seed=seed
    ),
    "census-sex": lambda n=10_000, seed=None: census_surrogate(n=n, group_by="sex", seed=seed),
    "census-age": lambda n=10_000, seed=None: census_surrogate(n=n, group_by="age", seed=seed),
    "census-sex+age": lambda n=10_000, seed=None: census_surrogate(
        n=n, group_by="sex+age", seed=seed
    ),
    "lyrics-genre": lambda n=5_000, seed=None: lyrics_surrogate(n=n, seed=seed),
    "synthetic-m2": lambda n=10_000, seed=None: synthetic_blobs(n=n, m=2, seed=seed),
    "synthetic-m10": lambda n=10_000, seed=None: synthetic_blobs(n=n, m=10, seed=seed),
}


def dataset_names() -> List[str]:
    """All registered dataset names in registry order."""
    return list(DATASETS.keys())


def load_dataset(name: str, n: Optional[int] = None, seed: Optional[int] = None) -> DatasetSpec:
    """Instantiate the dataset registered under ``name``.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    n:
        Override the default number of elements (``None`` keeps the
        registry default for that dataset).
    seed:
        RNG seed forwarded to the generator.
    """
    factory = DATASETS.get(name)
    if factory is None:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    if n is None:
        return factory(seed=seed)
    return factory(n=n, seed=seed)
