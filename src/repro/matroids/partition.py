"""Partition matroids, including the fairness matroid over element groups."""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Mapping

from repro.matroids.base import Matroid
from repro.fairness.constraints import FairnessConstraint
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError


class PartitionMatroid(Matroid):
    """A partition matroid: at most ``capacity[b]`` items from each block ``b``.

    Parameters
    ----------
    ground_set:
        The items.
    block_of:
        Function mapping an item to its block label.  Items mapping to a
        block without an entry in ``capacities`` get capacity 0 (they can
        never be added) unless ``default_capacity`` overrides that.
    capacities:
        Mapping from block label to the maximum number of items allowed.
    default_capacity:
        Capacity used for blocks missing from ``capacities``.
    """

    def __init__(
        self,
        ground_set: Iterable[Hashable],
        block_of: Callable[[Hashable], Hashable],
        capacities: Mapping[Hashable, int],
        default_capacity: int = 0,
    ) -> None:
        super().__init__(ground_set)
        if default_capacity < 0:
            raise InvalidParameterError("default_capacity must be non-negative")
        for block, capacity in capacities.items():
            if capacity < 0:
                raise InvalidParameterError(f"capacity for block {block!r} must be non-negative")
        self._block_of = block_of
        self._capacities: Dict[Hashable, int] = dict(capacities)
        self._default_capacity = int(default_capacity)

    def capacity(self, block: Hashable) -> int:
        """Capacity of ``block`` (the default for unknown blocks)."""
        return self._capacities.get(block, self._default_capacity)

    def block(self, item: Hashable) -> Hashable:
        """Block label of ``item``."""
        return self._block_of(item)

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        """Whether every block's capacity accommodates its members of ``subset``."""
        subset = set(subset)
        if not subset <= self.ground_set:
            return False
        counts: Dict[Hashable, int] = {}
        for item in subset:
            block = self._block_of(item)
            counts[block] = counts.get(block, 0) + 1
            if counts[block] > self.capacity(block):
                return False
        return True

    def block_counts(self, subset: Iterable[Hashable]) -> Dict[Hashable, int]:
        """Number of items of ``subset`` in each block (only blocks present)."""
        counts: Dict[Hashable, int] = {}
        for item in subset:
            block = self._block_of(item)
            counts[block] = counts.get(block, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionMatroid(|V|={len(self.ground_set)}, "
            f"blocks={len(self._capacities)}, default={self._default_capacity})"
        )


def matroid_from_constraint(
    elements: Iterable[Element], constraint: FairnessConstraint
) -> PartitionMatroid:
    """The fairness matroid ``M_1`` of the paper over concrete elements.

    The ground set is the given elements, blocks are their sensitive groups,
    and block capacities are the constraint's quotas.  Elements whose group
    is not covered by the constraint receive capacity zero, so they can
    never enter an independent set.
    """
    return PartitionMatroid(
        ground_set=elements,
        block_of=lambda element: element.group,
        capacities=constraint.quotas,
        default_capacity=0,
    )
