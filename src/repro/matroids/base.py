"""Abstract matroid interface.

A matroid ``M = (V, I)`` is described here by its *independence oracle*:
:meth:`Matroid.is_independent` answers whether a given subset of the ground
set belongs to ``I``.  All higher-level routines (rank computation, basis
extension, matroid intersection) are built on top of that single oracle, so
a new matroid type only needs to implement independence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable, Iterable, List, Set


class Matroid(ABC):
    """A matroid over a finite ground set of hashable items."""

    def __init__(self, ground_set: Iterable[Hashable]) -> None:
        self._ground_set: FrozenSet[Hashable] = frozenset(ground_set)

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        """The ground set ``V``."""
        return self._ground_set

    @abstractmethod
    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        """Whether ``subset`` (a subset of the ground set) is independent."""

    # ------------------------------------------------------------------
    # Derived operations (valid for any matroid given a correct oracle)
    # ------------------------------------------------------------------
    def can_add(self, subset: Set[Hashable], item: Hashable) -> bool:
        """Whether ``subset + {item}`` is independent (``item`` not in ``subset``)."""
        if item in subset:
            return False
        return self.is_independent(set(subset) | {item})

    def rank(self, subset: Iterable[Hashable]) -> int:
        """The rank of ``subset``: size of a largest independent subset of it.

        Computed greedily, which is correct for matroids by the exchange
        property.
        """
        independent: Set[Hashable] = set()
        for item in subset:
            if self.can_add(independent, item):
                independent.add(item)
        return len(independent)

    def max_independent_subset(self, subset: Iterable[Hashable]) -> Set[Hashable]:
        """A maximal independent subset of ``subset`` built greedily."""
        independent: Set[Hashable] = set()
        for item in subset:
            if self.can_add(independent, item):
                independent.add(item)
        return independent

    def extend_to_basis(self, independent: Set[Hashable]) -> Set[Hashable]:
        """Extend an independent set to a basis (maximal independent set)."""
        result = set(independent)
        for item in self._ground_set:
            if item not in result and self.can_add(result, item):
                result.add(item)
        return result

    def full_rank(self) -> int:
        """The rank of the whole matroid (size of any basis)."""
        return self.rank(self._ground_set)

    def restricted(self, items: Iterable[Hashable]) -> "RestrictedMatroid":
        """The restriction of this matroid to ``items``."""
        return RestrictedMatroid(self, items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(|V|={len(self._ground_set)})"


class RestrictedMatroid(Matroid):
    """The restriction ``M | T`` of a matroid ``M`` to a subset ``T`` of its ground set.

    Independence in the restriction is independence in the original matroid;
    only the ground set shrinks.
    """

    def __init__(self, parent: Matroid, items: Iterable[Hashable]) -> None:
        items = frozenset(items)
        missing: List[Hashable] = [item for item in items if item not in parent.ground_set]
        if missing:
            raise ValueError(f"items not in the parent ground set: {missing[:5]!r}")
        super().__init__(items)
        self._parent = parent

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        """Independence in the parent matroid, restricted to this ground set."""
        subset = set(subset)
        if not subset <= self.ground_set:
            return False
        return self._parent.is_independent(subset)
