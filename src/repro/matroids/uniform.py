"""The uniform matroid ``U_{k,n}``: sets of size at most ``k`` are independent."""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.matroids.base import Matroid
from repro.utils.validation import require_non_negative_int


class UniformMatroid(Matroid):
    """A uniform matroid of rank ``k`` over an arbitrary ground set.

    The unconstrained diversity maximization problem's cardinality
    constraint ``|S| = k`` is the basis condition of this matroid; it is
    also handy in tests as the simplest possible matroid.
    """

    def __init__(self, ground_set: Iterable[Hashable], k: int) -> None:
        super().__init__(ground_set)
        self.k = require_non_negative_int(k, "k")

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        """Whether ``subset`` is within the ground set and has at most ``k`` items."""
        subset = set(subset)
        if not subset <= self.ground_set:
            return False
        return len(subset) <= self.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformMatroid(|V|={len(self.ground_set)}, k={self.k})"
