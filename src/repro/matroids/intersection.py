"""Maximum-cardinality matroid intersection (Cunningham's algorithm).

Given two matroids ``M1 = (V, I1)`` and ``M2 = (V, I2)`` over the same
ground set, a *common independent set* is a set independent in both.  The
paper's Algorithm 4 finds a maximum-cardinality common independent set by
repeatedly augmenting along shortest paths in the *augmentation graph*
(also called the exchange graph) of Definition 2:

* source ``a`` has an edge to every ``x`` that can be added under ``M1``;
* every ``x`` that can be added under ``M2`` has an edge to sink ``b``;
* an edge ``y -> x`` (``y`` in ``S``, ``x`` outside) exists when ``x``
  cannot be added under ``M1`` but swapping ``y`` for ``x`` keeps ``M1``
  independence;
* an edge ``x -> y`` exists when ``x`` cannot be added under ``M2`` but
  swapping ``y`` for ``x`` keeps ``M2`` independence.

Augmenting along a *shortest* ``a``-``b`` path increases ``|S|`` by one and
keeps ``S`` common independent; when no path exists ``S`` is maximum (by the
matroid-intersection min-max theorem).

The paper warms the search up by first adding elements that are immediately
addable in both matroids (each such element corresponds to a length-two path
``a -> x -> b``), ordered to maximize diversity; that greedy phase lives in
:func:`greedy_common_independent` and accepts an arbitrary priority function
so the caller (SFDM2) can plug in "distance to the current solution".
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.matroids.base import Matroid
from repro.utils.errors import InvalidParameterError


class AugmentationGraph:
    """The exchange graph of Definition 2 for a common independent set ``S``.

    The graph is materialised as adjacency lists over the ground set plus
    the two artificial terminals, exposed as the string sentinels
    ``AugmentationGraph.SOURCE`` and ``AugmentationGraph.SINK`` (the ground
    set holds arbitrary hashables, so sentinel objects avoid collisions by
    being private singletons).
    """

    SOURCE = object()
    SINK = object()

    def __init__(self, m1: Matroid, m2: Matroid, current: Set[Hashable]) -> None:
        if m1.ground_set != m2.ground_set:
            raise InvalidParameterError("both matroids must share the same ground set")
        if not (m1.is_independent(current) and m2.is_independent(current)):
            raise InvalidParameterError("current set must be independent in both matroids")
        self.m1 = m1
        self.m2 = m2
        self.current = set(current)
        self._adjacency: Dict[Hashable, List[Hashable]] = {}
        self._build()

    def _add_edge(self, u: Hashable, v: Hashable) -> None:
        self._adjacency.setdefault(u, []).append(v)

    def _build(self) -> None:
        ground = self.m1.ground_set
        outside = [x for x in ground if x not in self.current]
        inside = list(self.current)
        for x in outside:
            with_x = self.current | {x}
            addable_1 = self.m1.is_independent(with_x)
            addable_2 = self.m2.is_independent(with_x)
            if addable_1:
                self._add_edge(self.SOURCE, x)
            if addable_2:
                self._add_edge(x, self.SINK)
            if not addable_1:
                for y in inside:
                    if self.m1.is_independent(with_x - {y}):
                        self._add_edge(y, x)
            if not addable_2:
                for y in inside:
                    if self.m2.is_independent(with_x - {y}):
                        self._add_edge(x, y)

    def neighbors(self, node: Hashable) -> List[Hashable]:
        """Outgoing neighbours of ``node`` (empty list if none)."""
        return list(self._adjacency.get(node, []))

    def shortest_augmenting_path(self) -> Optional[List[Hashable]]:
        """A shortest source-to-sink path (excluding the terminals), or ``None``.

        Breadth-first search; ties are broken by insertion order of the
        adjacency lists, which makes the routine deterministic for a given
        ground-set iteration order.
        """
        parents: Dict[Hashable, Hashable] = {}
        visited = {self.SOURCE}
        queue = deque([self.SOURCE])
        while queue:
            node = queue.popleft()
            for neighbor in self._adjacency.get(node, []):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                parents[neighbor] = node
                if neighbor is self.SINK:
                    path: List[Hashable] = []
                    walk = self.SINK
                    while walk is not self.SOURCE:
                        walk = parents[walk]
                        if walk is not self.SOURCE:
                            path.append(walk)
                    path.reverse()
                    return path
                queue.append(neighbor)
        return None


def greedy_common_independent(
    m1: Matroid,
    m2: Matroid,
    initial: Iterable[Hashable] = (),
    priority: Optional[Callable[[Hashable, Set[Hashable]], float]] = None,
    target_size: Optional[int] = None,
) -> Set[Hashable]:
    """Grow a common independent set by adding directly-addable elements.

    Starting from ``initial`` (which must already be common independent),
    repeatedly add an element that keeps the set independent in *both*
    matroids, until no such element exists.  When ``priority`` is given, the
    addable element maximizing ``priority(x, current)`` is chosen at each
    step — SFDM2 passes the distance to the current solution here so the
    greedy phase also maximizes diversity, mirroring GMM.

    This corresponds to lines 1–7 of the paper's Algorithm 4 and returns a
    set that may still be non-maximum; run :func:`matroid_intersection` on
    the result to finish the job.
    """
    current: Set[Hashable] = set(initial)
    if not (m1.is_independent(current) and m2.is_independent(current)):
        raise InvalidParameterError("initial set must be independent in both matroids")
    candidates = [x for x in m1.ground_set if x not in current]
    while target_size is None or len(current) < target_size:
        addable = [
            x
            for x in candidates
            if x not in current
            and m1.is_independent(current | {x})
            and m2.is_independent(current | {x})
        ]
        if not addable:
            return current
        if priority is None:
            chosen = addable[0]
        else:
            chosen = max(addable, key=lambda x: priority(x, current))
        current.add(chosen)
    return current


def matroid_intersection(
    m1: Matroid,
    m2: Matroid,
    initial: Iterable[Hashable] = (),
    priority: Optional[Callable[[Hashable, Set[Hashable]], float]] = None,
    target_size: Optional[int] = None,
) -> Set[Hashable]:
    """Maximum-cardinality common independent set of two matroids.

    Parameters
    ----------
    m1, m2:
        The matroids; they must share the same ground set.
    initial:
        A common independent set to start from (defaults to the empty set).
        Starting from a larger set saves augmentation rounds; correctness
        does not depend on it because Cunningham's algorithm augments any
        common independent set to a maximum one.
    priority:
        Optional priority used during the greedy warm-start phase (see
        :func:`greedy_common_independent`).
    target_size:
        If given, stop as soon as the set reaches this size (used by SFDM2,
        which only needs a set of size ``k``).

    Returns
    -------
    set
        A common independent set of maximum cardinality (or of
        ``target_size`` if that is reached first).
    """
    current = greedy_common_independent(
        m1, m2, initial=initial, priority=priority, target_size=target_size
    )
    while target_size is None or len(current) < target_size:
        graph = AugmentationGraph(m1, m2, current)
        path = graph.shortest_augmenting_path()
        if path is None:
            break
        # Augment: elements outside S on the path enter, elements of S leave.
        for item in path:
            if item in current:
                current.remove(item)
            else:
                current.add(item)
    return current


def is_common_independent(m1: Matroid, m2: Matroid, subset: Iterable[Hashable]) -> bool:
    """Convenience check used by tests: independent in both matroids."""
    subset = set(subset)
    return m1.is_independent(subset) and m2.is_independent(subset)


def intersection_upper_bound(m1: Matroid, m2: Matroid) -> int:
    """A cheap upper bound on the maximum common independent set size.

    The true optimum is ``min_{A ⊆ V} rank1(A) + rank2(V \\ A)``; evaluating
    that exactly is exponential, but ``A = ∅`` and ``A = V`` give the easy
    bound ``min(rank1(V), rank2(V))`` which is what the tests use to verify
    optimality on partition matroids (where the bound is tight whenever a
    perfect system of representatives exists).
    """
    return min(m1.full_rank(), m2.full_rank())
