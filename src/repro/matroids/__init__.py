"""Matroid abstractions and the matroid-intersection machinery.

The fairness constraint is a partition matroid; SFDM2's post-processing
intersects it with a second partition matroid defined over distance-based
clusters.  This subpackage provides both matroids and Cunningham's
augmenting-path algorithm for maximum-cardinality matroid intersection
(Algorithm 4 in the paper).
"""

from repro.matroids.base import Matroid
from repro.matroids.uniform import UniformMatroid
from repro.matroids.partition import PartitionMatroid, matroid_from_constraint
from repro.matroids.cluster import ClusterMatroid
from repro.matroids.intersection import (
    AugmentationGraph,
    matroid_intersection,
    greedy_common_independent,
)

__all__ = [
    "Matroid",
    "UniformMatroid",
    "PartitionMatroid",
    "matroid_from_constraint",
    "ClusterMatroid",
    "AugmentationGraph",
    "matroid_intersection",
    "greedy_common_independent",
]
