"""The cluster matroid ``M_2`` used by SFDM2's post-processing.

SFDM2 groups the stored elements into clusters such that elements in
*different* clusters are far apart (at least ``mu / (m + 1)``); restricting
a solution to at most one element per cluster therefore lower-bounds its
diversity.  "At most one element from each cluster" is exactly a partition
matroid whose blocks are the clusters; this module provides a small wrapper
that also remembers the cluster structure for inspection and testing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence

from repro.matroids.partition import PartitionMatroid
from repro.utils.errors import InvalidParameterError


class ClusterMatroid(PartitionMatroid):
    """Partition matroid with capacity one per cluster.

    Parameters
    ----------
    clusters:
        A partition of the ground set: a sequence of disjoint, non-empty
        collections of items.  Every item must belong to exactly one
        cluster.
    """

    def __init__(self, clusters: Sequence[Iterable[Hashable]]) -> None:
        cluster_lists: List[List[Hashable]] = [list(cluster) for cluster in clusters]
        if any(len(cluster) == 0 for cluster in cluster_lists):
            raise InvalidParameterError("clusters must be non-empty")
        membership: Dict[Hashable, int] = {}
        for index, cluster in enumerate(cluster_lists):
            for item in cluster:
                if item in membership:
                    raise InvalidParameterError(
                        f"item {item!r} appears in more than one cluster"
                    )
                membership[item] = index
        super().__init__(
            ground_set=membership.keys(),
            block_of=membership.__getitem__,
            capacities={index: 1 for index in range(len(cluster_lists))},
            default_capacity=0,
        )
        self._clusters = cluster_lists
        self._membership = membership

    @property
    def clusters(self) -> List[List[Hashable]]:
        """The clusters as provided (copies of the lists)."""
        return [list(cluster) for cluster in self._clusters]

    @property
    def num_clusters(self) -> int:
        """Number of clusters ``l`` (the rank of the matroid)."""
        return len(self._clusters)

    def cluster_of(self, item: Hashable) -> int:
        """Index of the cluster containing ``item``."""
        return self._membership[item]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClusterMatroid(|V|={len(self.ground_set)}, clusters={self.num_clusters})"
