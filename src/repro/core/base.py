"""Shared plumbing for the streaming algorithms.

All three streaming algorithms (Algorithm 1, SFDM1, SFDM2) share the same
skeleton: estimate or accept distance bounds, build the guess ladder,
maintain per-guess candidates while consuming the stream once, then
post-process and select the best candidate.  :class:`StreamingAlgorithm`
hosts the common pieces (bounds handling, counting metric, stats plumbing,
and the element-at-a-time vs. batched stream ingestion) so the algorithm
classes read close to the paper's pseudocode.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.candidate import Candidate
from repro.core.guesses import GuessLadder
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.metrics.space import exact_distance_bounds
from repro.streaming.element import Element
from repro.streaming.stats import StreamStats
from repro.streaming.stream import iter_batches
from repro.utils.errors import EmptyStreamError, InvalidParameterError
from repro.utils.timer import StageTimer
from repro.utils.validation import require_in_open_interval


class StreamingAlgorithm:
    """Base class holding the pieces common to all streaming FDM algorithms.

    Parameters
    ----------
    metric:
        The distance metric of the underlying metric space.
    epsilon:
        Guess-ladder resolution in ``(0, 1)``.
    distance_bounds:
        Optional ``(d_min, d_max)``.  When omitted, bounds are estimated
        from the first ``warmup_size`` stream elements (which are buffered
        and then processed normally, so the algorithm remains one-pass).
    warmup_size:
        Number of elements buffered for bound estimation when
        ``distance_bounds`` is not supplied.
    batch_size:
        When set (and the metric has vectorized kernels), the stream is
        consumed in chunks of this many elements and every guess level
        screens each chunk with one batched min-distance computation
        instead of per-element Python loops.  ``None`` (default) keeps the
        paper's element-at-a-time updates.  The accepted candidates — and
        therefore the final solution — are the same in both modes; batching
        only changes how the arithmetic is scheduled.  Metrics without
        vectorized kernels (e.g. custom callables) silently fall back to
        the scalar path.
    """

    #: Overridden by subclasses; used in reports.
    name = "streaming-algorithm"

    def __init__(
        self,
        metric: Metric,
        epsilon: float = 0.1,
        distance_bounds: Optional[Tuple[float, float]] = None,
        warmup_size: int = 64,
        batch_size: Optional[int] = None,
    ) -> None:
        self.metric = metric
        self.epsilon = require_in_open_interval(epsilon, 0.0, 1.0, "epsilon")
        if distance_bounds is not None:
            d_min, d_max = distance_bounds
            if not (0 < d_min <= d_max):
                raise InvalidParameterError(
                    f"distance_bounds must satisfy 0 < d_min <= d_max, got {distance_bounds}"
                )
        self.distance_bounds = distance_bounds
        if warmup_size < 2:
            raise InvalidParameterError("warmup_size must be at least 2")
        self.warmup_size = int(warmup_size)
        if batch_size is not None and batch_size < 1:
            raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = None if batch_size is None else int(batch_size)

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def _counting_metric(self) -> CountingMetric:
        """A fresh counting wrapper around the user metric for one run."""
        return CountingMetric(self.metric)

    def _resolve_bounds(
        self, stream: Iterable[Element], metric: Metric
    ) -> Tuple[Tuple[float, float], List[Element], Iterator[Element]]:
        """Return ``(bounds, buffered_prefix, remaining_iterator)`` for ``stream``.

        When explicit bounds were supplied the prefix is empty and the whole
        stream is "remaining".  Otherwise the first ``warmup_size`` elements
        are buffered, exact bounds are computed on them, and both the buffer
        and the rest of the stream are handed back so every element is still
        processed exactly once.
        """
        iterator = iter(stream)
        if self.distance_bounds is not None:
            return self.distance_bounds, [], iterator
        buffered: List[Element] = []
        for element in iterator:
            buffered.append(element)
            if len(buffered) >= self.warmup_size:
                break
        if not buffered:
            raise EmptyStreamError(f"{self.name} received an empty stream")
        if len(buffered) == 1:
            # A single element: any positive bounds work, the ladder is trivial.
            return (1.0, 1.0), buffered, iterator
        d_min, d_max = exact_distance_bounds(buffered, metric)
        # Widen the estimate: the sample minimum overestimates the global
        # d_min and the sample maximum underestimates the global d_max.
        return (d_min / 4.0, d_max * 4.0), buffered, iterator

    def _build_ladder(self, bounds: Tuple[float, float]) -> GuessLadder:
        """Guess ladder for the resolved bounds."""
        d_min, d_max = bounds
        return GuessLadder(d_min=d_min, d_max=d_max, epsilon=self.epsilon)

    @staticmethod
    def _chain(prefix: List[Element], rest: Iterator[Element]) -> Iterator[Element]:
        """Iterate the buffered prefix and then the remaining stream."""
        for element in prefix:
            yield element
        for element in rest:
            yield element

    # ------------------------------------------------------------------
    # Stream ingestion (element-at-a-time or batched)
    # ------------------------------------------------------------------
    def _ingest(
        self,
        elements: Iterable[Element],
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        stats: StreamStats,
        metric: Metric,
    ) -> None:
        """Feed the stream into every guess level's candidates.

        Parameters
        ----------
        elements:
            The one-pass element sequence (warmup prefix already chained).
        blind:
            One group-blind candidate per guess level.
        specific:
            Per-level mapping from group label to the group-specific
            candidate, or ``None`` for the unconstrained Algorithm 1.
        stats:
            Run statistics; ``elements_processed`` is advanced here.
        metric:
            The (counting) metric — consulted for batch-kernel support.

        Dispatches to the batched path when ``batch_size`` is set and the
        metric has vectorized kernels, otherwise to the scalar path.  Both
        paths produce identical candidate contents because candidates are
        mutually independent and each one sees the elements in stream order.
        """
        if self.batch_size is not None and self.batch_size > 1 and metric.supports_batch:
            stats.extra["batch_size"] = float(self.batch_size)
            self._ingest_batches(elements, blind, specific, stats)
        else:
            self._ingest_elements(elements, blind, specific, stats)

    @staticmethod
    def _ingest_elements(
        elements: Iterable[Element],
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        stats: StreamStats,
    ) -> None:
        """The paper's element-at-a-time update loop (lines 4–8)."""
        levels = len(blind)
        for element in elements:
            stats.elements_processed += 1
            for index in range(levels):
                blind[index].offer(element)
                if specific is not None:
                    candidate = specific[index].get(element.group)
                    if candidate is not None:
                        candidate.offer(element)

    def _ingest_batches(
        self,
        elements: Iterable[Element],
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        stats: StreamStats,
    ) -> None:
        """Vectorized update loop: one batched screen per chunk and guess level.

        Each chunk's payloads are stacked once (and pre-split by group once,
        for the group-specific candidates) so the per-level work reduces to
        a handful of NumPy kernel calls on the already-stacked matrices.
        """
        levels = len(blind)
        for chunk in iter_batches(elements, self.batch_size):
            stats.elements_processed += len(chunk)
            vectors = np.asarray([element.vector for element in chunk])
            by_group: Dict[int, Tuple[List[Element], np.ndarray]] = {}
            if specific is not None:
                indices_by_group: Dict[int, List[int]] = {}
                for i, element in enumerate(chunk):
                    indices_by_group.setdefault(element.group, []).append(i)
                by_group = {
                    group: ([chunk[i] for i in indices], vectors[indices])
                    for group, indices in indices_by_group.items()
                }
            for index in range(levels):
                blind[index].offer_batch(chunk, vectors)
                if specific is not None:
                    per_group = specific[index]
                    for group, (sub_elements, sub_vectors) in by_group.items():
                        candidate = per_group.get(group)
                        if candidate is not None:
                            candidate.offer_batch(sub_elements, sub_vectors)

    @staticmethod
    def _new_stats() -> Tuple[StreamStats, StageTimer]:
        """Fresh stats object and stage timer for one run."""
        return StreamStats(), StageTimer()

    @staticmethod
    def _finalize_stats(
        stats: StreamStats,
        stages: StageTimer,
        counting: CountingMetric,
        stream_calls: int,
        stored_elements: int,
    ) -> None:
        """Copy timer and counter values into ``stats`` after a run."""
        stats.stream_seconds = stages.elapsed("stream")
        stats.postprocess_seconds = stages.elapsed("postprocess")
        stats.stream_distance_computations = stream_calls
        stats.postprocess_distance_computations = counting.calls - stream_calls
        stats.record_stored(stored_elements)
