"""Shared plumbing for the streaming algorithms.

All three streaming algorithms (Algorithm 1, SFDM1, SFDM2) share the same
skeleton: estimate or accept distance bounds, build the guess ladder,
maintain per-guess candidates while consuming the stream once, then
post-process and select the best candidate.  :class:`StreamingAlgorithm`
hosts the common pieces (bounds handling, counting metric, stats plumbing,
and the element-at-a-time vs. batched stream ingestion) so the algorithm
classes read close to the paper's pseudocode.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.candidate import Candidate
from repro.core.guesses import GuessLadder
from repro.core.result import RunResult
from repro.core.solution import Solution
from repro.data.store import ElementStore, store_rows_of
from repro.index.tree import resolve_index_kind
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.metrics.space import exact_distance_bounds
from repro.data.element import Element
from repro.streaming.stats import StreamStats
from repro.streaming.stream import iter_batches
from repro.utils.errors import (
    EmptyStreamError,
    InvalidParameterError,
    NoFeasibleSolutionError,
)
from repro.utils.timer import StageTimer
from repro.utils.validation import require_in_open_interval

#: The candidate state one run (or one live session) of a streaming
#: algorithm maintains: one group-blind candidate per guess level, plus —
#: for the fair algorithms — one group-specific candidate per (level,
#: group) pair (``None`` for the unconstrained Algorithm 1).
CandidateState = Tuple[List[Candidate], Optional[List[Dict[int, Candidate]]]]

#: Chunk size used by the store ingestion path when an index is requested
#: but no explicit ``batch_size`` was given: the indexed screen works on
#: chunks, so the scalar element-at-a-time path would never engage it.
#: Solutions are identical across chunk sizes (the store-equivalence suite
#: pins this), so the default only affects scheduling.
DEFAULT_INDEX_BATCH = 128


class IngestPlan:
    """A resolved one-pass element source, columnar when possible.

    Produced by :meth:`StreamingAlgorithm._resolve_bounds` and consumed by
    :meth:`StreamingAlgorithm._ingest`.  Exactly one of two shapes:

    * **store-backed** — ``store`` is an :class:`ElementStore` and
      ``order`` the row iteration order (``None`` for canonical order);
      the batched ingestion then runs on store row-ranges with no
      per-element Python work;
    * **object-backed** — ``store`` is ``None`` and the source is the
      buffered warmup ``prefix`` chained with the ``rest`` iterator, as in
      the original object path.
    """

    __slots__ = ("store", "order", "prefix", "rest")

    def __init__(
        self,
        store: Optional[ElementStore] = None,
        order: Optional[np.ndarray] = None,
        prefix: Optional[List[Element]] = None,
        rest: Optional[Iterator[Element]] = None,
    ) -> None:
        self.store = store
        self.order = order
        self.prefix = prefix if prefix is not None else []
        self.rest = rest if rest is not None else iter(())

    def __len__(self) -> int:
        if self.store is None:
            raise TypeError("object-backed ingest plans have no known length")
        return len(self.store) if self.order is None else int(self.order.shape[0])

    def row(self, position: int) -> int:
        """Absolute store row at iteration ``position`` (store-backed only)."""
        return position if self.order is None else int(self.order[position])

    def elements(self) -> Iterator[Element]:
        """The one-pass element sequence, whichever shape the plan has."""
        if self.store is not None:
            return self.store.iter_elements(self.order)
        return StreamingAlgorithm._chain(self.prefix, self.rest)


def _plan_for_stream(stream: Iterable[Element]) -> Optional[IngestPlan]:
    """A store-backed :class:`IngestPlan` for ``stream``, or ``None``.

    Recognises three columnar sources: a bare :class:`ElementStore`, a
    stream exposing ``store_plan()`` (a store-backed
    :class:`~repro.streaming.stream.DataStream`, which resolves its shuffle
    permutation here), and a concrete sequence whose elements are all views
    of one store.  Generators and object-element sequences fall through to
    the object path.
    """
    if isinstance(stream, ElementStore):
        return IngestPlan(store=stream)
    store_plan = getattr(stream, "store_plan", None)
    if store_plan is not None:
        resolved = store_plan()
        if resolved is not None:
            store, order = resolved
            return IngestPlan(store=store, order=order)
        return None
    if isinstance(stream, (list, tuple)):
        backing = store_rows_of(stream)
        if backing is not None:
            store, rows = backing
            return IngestPlan(store=store, order=rows)
    return None


class StreamingAlgorithm:
    """Base class holding the pieces common to all streaming FDM algorithms.

    Parameters
    ----------
    metric:
        The distance metric of the underlying metric space.
    epsilon:
        Guess-ladder resolution in ``(0, 1)``.
    distance_bounds:
        Optional ``(d_min, d_max)``.  When omitted, bounds are estimated
        from the first ``warmup_size`` stream elements (which are buffered
        and then processed normally, so the algorithm remains one-pass).
    warmup_size:
        Number of elements buffered for bound estimation when
        ``distance_bounds`` is not supplied.
    batch_size:
        When set (and the metric has vectorized kernels), the stream is
        consumed in chunks of this many elements and every guess level
        screens each chunk with one batched min-distance computation
        instead of per-element Python loops.  ``None`` (default) keeps the
        paper's element-at-a-time updates.  The accepted candidates — and
        therefore the final solution — are the same in both modes; batching
        only changes how the arithmetic is scheduled.  Metrics without
        vectorized kernels (e.g. custom callables) silently fall back to
        the scalar path.
    index:
        Spatial-index kind for the candidate screens: ``"kd"`` or
        ``"ball"`` build a :class:`repro.index.tree.SpatialIndex` over the
        union members and prune provably irrelevant distance evaluations;
        ``"auto"`` picks ``"kd"`` when the metric supports box bounds and
        falls back to the brute screens otherwise; ``None``/``"none"``
        (default) keeps the brute screens.  Indexed runs produce
        bit-identical solutions on fewer (never more) counted distance
        evaluations — the differential suite
        (``tests/property/test_index_equivalence.py``) pins both claims.
        When an index is active and ``batch_size`` is ``None``, the stream
        is chunked at :data:`DEFAULT_INDEX_BATCH` so the columnar screens
        (where the index lives) engage.
    """

    #: Overridden by subclasses; used in reports.
    name = "streaming-algorithm"

    def __init__(
        self,
        metric: Metric,
        epsilon: float = 0.1,
        distance_bounds: Optional[Tuple[float, float]] = None,
        warmup_size: int = 64,
        batch_size: Optional[int] = None,
        index: Optional[str] = None,
    ) -> None:
        self.metric = metric
        self.epsilon = require_in_open_interval(epsilon, 0.0, 1.0, "epsilon")
        if distance_bounds is not None:
            d_min, d_max = distance_bounds
            if not (0 < d_min <= d_max):
                raise InvalidParameterError(
                    f"distance_bounds must satisfy 0 < d_min <= d_max, got {distance_bounds}"
                )
        self.distance_bounds = distance_bounds
        if warmup_size < 2:
            raise InvalidParameterError("warmup_size must be at least 2")
        self.warmup_size = int(warmup_size)
        if batch_size is not None and batch_size < 1:
            raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = None if batch_size is None else int(batch_size)
        self.index = index
        self._index_kind = resolve_index_kind(index, metric)

    @property
    def _effective_batch_size(self) -> Optional[int]:
        """The chunk size ingestion actually runs at.

        ``batch_size`` when given; otherwise :data:`DEFAULT_INDEX_BATCH`
        when a spatial index is active (the indexed screens live on the
        columnar chunked path); otherwise ``None`` (scalar updates).
        """
        if self.batch_size is not None:
            return self.batch_size
        if self._index_kind is not None:
            return DEFAULT_INDEX_BATCH
        return None

    # ------------------------------------------------------------------
    # Template run: resolve bounds, build candidates, ingest, extract
    # ------------------------------------------------------------------
    def run(self, stream: Iterable[Element]) -> RunResult:
        """Consume ``stream`` in one pass and return the best solution found.

        The skeleton is shared by every streaming algorithm: resolve the
        distance bounds (buffering a warmup prefix when they are not
        given), build the guess ladder and its candidates
        (:meth:`_make_candidates`), feed the stream through the ingestion
        engine, and post-process the candidates into the best solution
        (:meth:`_extract`).  Subclasses supply only the two hooks plus
        their parameter/report metadata — the same hooks the long-lived
        session API (:mod:`repro.api.session`) drives incrementally.

        Raises
        ------
        NoFeasibleSolutionError
            If no candidate state admits a (fair) solution.
        """
        with obs.span("run", algorithm=self.name) as run_span:
            counting = self._counting_metric()
            stats, stages = self._new_stats()
            with stages.stage("stream"), obs.span("ingest", algorithm=self.name):
                bounds, plan = self._resolve_bounds(stream, counting)
                ladder = self._build_ladder(bounds)
                blind, specific = self._make_candidates(ladder, counting)
                self._ingest(plan, blind, specific, stats, counting)
            stream_calls = counting.calls

            with stages.stage("postprocess"), obs.span("postprocess", algorithm=self.name):
                best, extract_stats = self._extract(ladder, blind, specific, counting)

            stored = len(self._stored_elements(blind, specific))
            stats.extra["num_guesses"] = len(ladder)
            stats.extra.update(extract_stats)
            self._finalize_stats(stats, stages, counting, stream_calls, stored)
            stats.publish(self.name)
            run_span.set(
                elements=stats.elements_processed,
                distance_evaluations=counting.calls,
                stored=stored,
            )

            if best is None:
                raise NoFeasibleSolutionError(self._infeasible_message())
            return RunResult(
                algorithm=self.name,
                solution=best,
                stats=stats,
                params=self._run_params(),
            )

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _make_candidates(self, ladder: GuessLadder, metric: Metric) -> CandidateState:
        """Fresh candidates for every guess level (one run's mutable state)."""
        raise NotImplementedError

    def _extract(
        self,
        ladder: GuessLadder,
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        metric: Metric,
    ) -> Tuple[Optional[Solution], Dict[str, float]]:
        """Post-process the candidate state into ``(best solution, extra stats)``.

        ``best`` is ``None`` when no (fair) solution could be built; the
        extra-stats mapping is merged into ``stats.extra``.  Extraction
        must not mutate the candidates: the session API calls it on live
        state to answer queries mid-stream.
        """
        raise NotImplementedError

    def _infeasible_message(self) -> str:
        """Error message when no feasible solution was found."""
        return (
            f"{self.name} could not build a solution; the stream may not "
            f"contain enough suitable elements"
        )

    def _run_params(self) -> Dict[str, Any]:
        """The parameter mapping recorded in the :class:`RunResult`."""
        return {"epsilon": self.epsilon}

    @staticmethod
    def _stored_elements(
        blind: List[Candidate], specific: Optional[List[Dict[int, Candidate]]]
    ) -> List[Element]:
        """All distinct elements currently held by any candidate."""
        seen: Dict[int, Element] = {}
        for candidate in blind:
            for element in candidate:
                seen.setdefault(element.uid, element)
        if specific is not None:
            for per_group in specific:
                for candidate in per_group.values():
                    for element in candidate:
                        seen.setdefault(element.uid, element)
        return list(seen.values())

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def _counting_metric(self) -> CountingMetric:
        """A fresh counting wrapper around the user metric for one run."""
        return CountingMetric(self.metric)

    def _resolve_bounds(
        self, stream: Iterable[Element], metric: Metric
    ) -> Tuple[Tuple[float, float], IngestPlan]:
        """Return ``(bounds, ingest_plan)`` for ``stream``.

        Columnar sources (see :func:`_plan_for_stream`) resolve to a
        store-backed plan whose warmup prefix is sliced from the store in
        iteration order; other sources buffer the first ``warmup_size``
        elements off the iterator exactly as before.  Either way every
        element is still processed exactly once, the bound estimate is
        computed on the same warmup elements, and explicit
        ``distance_bounds`` skip the warmup entirely.
        """
        plan = _plan_for_stream(stream)
        if plan is not None:
            total = len(plan)
            if self.distance_bounds is not None:
                return self.distance_bounds, plan
            if total == 0:
                raise EmptyStreamError(f"{self.name} received an empty stream")
            if total == 1:
                # A single element: any positive bounds work, the ladder is trivial.
                return (1.0, 1.0), plan
            warmup = [
                plan.store.element(plan.row(position))
                for position in range(min(self.warmup_size, total))
            ]
            d_min, d_max = exact_distance_bounds(warmup, metric)
            return (d_min / 4.0, d_max * 4.0), plan

        iterator = iter(stream)
        if self.distance_bounds is not None:
            return self.distance_bounds, IngestPlan(rest=iterator)
        buffered: List[Element] = []
        for element in iterator:
            buffered.append(element)
            if len(buffered) >= self.warmup_size:
                break
        if not buffered:
            raise EmptyStreamError(f"{self.name} received an empty stream")
        if len(buffered) == 1:
            # A single element: any positive bounds work, the ladder is trivial.
            return (1.0, 1.0), IngestPlan(prefix=buffered, rest=iterator)
        d_min, d_max = exact_distance_bounds(buffered, metric)
        # Widen the estimate: the sample minimum overestimates the global
        # d_min and the sample maximum underestimates the global d_max.
        return (d_min / 4.0, d_max * 4.0), IngestPlan(prefix=buffered, rest=iterator)

    def _build_ladder(self, bounds: Tuple[float, float]) -> GuessLadder:
        """Guess ladder for the resolved bounds."""
        d_min, d_max = bounds
        return GuessLadder(d_min=d_min, d_max=d_max, epsilon=self.epsilon)

    @staticmethod
    def _chain(prefix: List[Element], rest: Iterator[Element]) -> Iterator[Element]:
        """Iterate the buffered prefix and then the remaining stream."""
        for element in prefix:
            yield element
        for element in rest:
            yield element

    # ------------------------------------------------------------------
    # Stream ingestion (element-at-a-time or batched)
    # ------------------------------------------------------------------
    def _ingest(
        self,
        plan: IngestPlan,
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        stats: StreamStats,
        metric: Metric,
    ) -> None:
        """Feed the stream into every guess level's candidates.

        Parameters
        ----------
        plan:
            The resolved one-pass source from :meth:`_resolve_bounds`.
        blind:
            One group-blind candidate per guess level.
        specific:
            Per-level mapping from group label to the group-specific
            candidate, or ``None`` for the unconstrained Algorithm 1.
        stats:
            Run statistics; ``elements_processed`` is advanced here.
        metric:
            The (counting) metric — consulted for batch-kernel support.

        Dispatches to the columnar row-range path for store-backed plans in
        batch mode, to the object batch path for object-backed plans in
        batch mode, and to the scalar path otherwise.  All paths produce
        identical candidate contents (and charge identical distance
        counts) because candidates are mutually independent and each one
        sees the elements in stream order.
        """
        size = self._effective_batch_size
        batched = size is not None and size > 1 and metric.supports_batch
        if batched:
            stats.extra["batch_size"] = float(size)
        if self._index_kind is not None and batched and plan.store is not None:
            # Only the columnar screens route through the index; the object
            # batch path keeps the per-candidate kernels.
            stats.index_kind = self._index_kind
        if plan.store is not None and batched:
            self._ingest_store(plan, blind, specific, stats, metric, size)
        elif batched:
            self._ingest_batches(plan.elements(), blind, specific, stats, size)
        else:
            self._ingest_elements(plan.elements(), blind, specific, stats)

    @staticmethod
    def _ingest_elements(
        elements: Iterable[Element],
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        stats: StreamStats,
    ) -> None:
        """The paper's element-at-a-time update loop (lines 4–8)."""
        levels = len(blind)
        for element in elements:
            stats.elements_processed += 1
            for index in range(levels):
                blind[index].offer(element)
                if specific is not None:
                    candidate = specific[index].get(element.group)
                    if candidate is not None:
                        candidate.offer(element)

    def _ingest_batches(
        self,
        elements: Iterable[Element],
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        stats: StreamStats,
        size: int,
    ) -> None:
        """Vectorized update loop: one batched screen per chunk and guess level.

        Each chunk's payloads are stacked once (and pre-split by group once,
        for the group-specific candidates) so the per-level work reduces to
        a handful of NumPy kernel calls on the already-stacked matrices.
        """
        levels = len(blind)
        for chunk in iter_batches(elements, size):
            stats.elements_processed += len(chunk)
            with obs.span("ingest.chunk", size=len(chunk)):
                self._offer_chunk(chunk, blind, specific, levels)

    @staticmethod
    def _offer_chunk(
        chunk: List[Element],
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        levels: int,
    ) -> None:
        """Offer one object-path chunk to every guess level's candidates."""
        vectors = np.asarray([element.vector for element in chunk])
        by_group: Dict[int, Tuple[List[Element], np.ndarray]] = {}
        if specific is not None:
            indices_by_group: Dict[int, List[int]] = {}
            for i, element in enumerate(chunk):
                indices_by_group.setdefault(element.group, []).append(i)
            by_group = {
                group: ([chunk[i] for i in indices], vectors[indices])
                for group, indices in indices_by_group.items()
            }
        for index in range(levels):
            blind[index].offer_batch(chunk, vectors)
            if specific is not None:
                per_group = specific[index]
                for group, (sub_elements, sub_vectors) in by_group.items():
                    candidate = per_group.get(group)
                    if candidate is not None:
                        candidate.offer_batch(sub_elements, sub_vectors)

    def _make_screen(self, candidates: List[Candidate]) -> "_UnionScreen":
        """One chunk screen over ``candidates``: indexed when requested.

        The indexed variant lives in :mod:`repro.index.screen` and is
        imported lazily — the index package imports :class:`_UnionScreen`
        from this module, so a top-level import would be circular.
        """
        if self._index_kind is not None:
            from repro.index.screen import IndexedScreen

            return IndexedScreen(candidates, kind=self._index_kind)
        return _UnionScreen(candidates)

    def _ingest_store(
        self,
        plan: IngestPlan,
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        stats: StreamStats,
        metric: Metric,
        size: int,
    ) -> None:
        """Columnar update loop: store row-ranges, no per-element Python work.

        Mirrors :meth:`_ingest_batches` decision-for-decision (same chunk
        boundaries, same per-candidate screens, same in-chunk resolution —
        so identical candidates and identical distance counts) while
        removing everything the object path pays per element or per guess
        level:

        * chunks are contiguous feature-matrix slices (zero-copy in
          canonical order, one vectorized gather per chunk under a shuffle
          permutation);
        * group splitting is a mask over the ``groups`` column computed
          once per chunk;
        * the per-level member screens are collapsed into one memoised
          union screen per chunk (see :class:`_UnionScreen`);
        * candidates that have reached capacity are dropped from the loop
          instead of being re-offered a chunk they must refuse.
        """
        store, order = plan.store, plan.order
        features, group_column = store.features, store.groups
        total = len(plan)
        blind_screen = self._make_screen(
            [candidate for candidate in blind if not candidate.is_full]
        )
        group_screens: Dict[int, _UnionScreen] = {}
        if specific is not None:
            by_group: Dict[int, List[Candidate]] = {}
            for per_group in specific:
                for group, candidate in per_group.items():
                    if not candidate.is_full:
                        by_group.setdefault(group, []).append(candidate)
            group_screens = {
                group: self._make_screen(candidates)
                for group, candidates in by_group.items()
            }
        for start in range(0, total, size):
            stop = min(start + size, total)
            stats.elements_processed += stop - start
            if blind_screen.exhausted and not group_screens:
                continue
            with obs.span("ingest.chunk", start=start, size=stop - start):
                if order is None:
                    rows = np.arange(start, stop, dtype=np.int64)
                    vectors = features[start:stop]
                    codes = group_column[start:stop]
                else:
                    rows = order[start:stop]
                    vectors = features[rows]
                    codes = group_column[rows]

                if not blind_screen.exhausted:
                    blind_screen.process(metric, store, rows, vectors)
                if group_screens:
                    drained = []
                    for group, screen in group_screens.items():
                        member_positions = np.nonzero(codes == group)[0]
                        if member_positions.size == 0:
                            continue
                        screen.process(
                            metric,
                            store,
                            rows[member_positions],
                            vectors[member_positions],
                        )
                        if screen.exhausted:
                            drained.append(group)
                    for group in drained:
                        del group_screens[group]

    @staticmethod
    def _new_stats() -> Tuple[StreamStats, StageTimer]:
        """Fresh stats object and stage timer for one run."""
        return StreamStats(), StageTimer()

    @staticmethod
    def _finalize_stats(
        stats: StreamStats,
        stages: StageTimer,
        counting: CountingMetric,
        stream_calls: int,
        stored_elements: int,
    ) -> None:
        """Copy timer and counter values into ``stats`` after a run."""
        stats.stream_seconds = stages.elapsed("stream")
        stats.postprocess_seconds = stages.elapsed("postprocess")
        stats.stream_distance_computations = stream_calls
        stats.postprocess_distance_computations = counting.calls - stream_calls
        stats.record_stored(stored_elements)


class _UnionScreen:
    """Memoised multi-candidate screen over one chunk of store rows.

    Screens every chunk against each candidate's *pre-chunk* members —
    exactly what per-candidate ``offer_batch`` calls would use, since a
    candidate's screen never depends on another candidate's members.
    Adjacent guess levels store heavily overlapping member sets (the union
    of all members is ~3x smaller than their per-level sum), so the chunk
    is evaluated against the **union** of the members once and each level's
    row minima are reduced from the shared distance columns — the same
    exact per-pair values a per-level ``pairwise`` would produce, hence
    bitwise-identical decisions.

    The memoisation changes the arithmetic schedule, not the algorithm:
    every level's screen is still *charged* in full (``chunk × members``
    through :meth:`~repro.metrics.cached.CountingMetric.charge`), so
    distance accounting stays identical with the object batch path.

    The union layout (member row indices and per-candidate column lists)
    only changes when some candidate accepts an element or reaches
    capacity, both of which are rare after the warm-up chunks; the layout
    is cached between chunks and rebuilt only when the
    ``(candidate count, total members)`` version moves — accepts strictly
    grow the member total and prunes strictly shrink the candidate count,
    so the version is change-exact.
    """

    __slots__ = (
        "candidates",
        "_version",
        "_union_rows",
        "_member_columns",
        "_total_members",
        "_fallback",
    )

    def __init__(self, candidates: List[Candidate]) -> None:
        self.candidates = candidates
        self._version: Optional[Tuple[int, int]] = None
        self._union_rows: Optional[np.ndarray] = None
        self._member_columns: List[Optional[np.ndarray]] = []
        self._total_members = 0
        self._fallback = False

    @property
    def exhausted(self) -> bool:
        """Whether every candidate has reached capacity."""
        return not self.candidates

    def _rebuild(self, store: ElementStore) -> None:
        """Recompute the union layout for the current member sets."""
        column_of: Dict[int, int] = {}
        union_rows: List[int] = []
        member_columns: List[Optional[np.ndarray]] = []
        total_members = 0
        for candidate in self.candidates:
            members = candidate._elements
            if not members:
                member_columns.append(None)
                continue
            total_members += len(members)
            columns = np.empty(len(members), dtype=np.intp)
            for position, member in enumerate(members):
                column = column_of.get(member.uid)
                if column is None:
                    if member.store is not store:
                        # A member that is not a view of this store (never
                        # produced by this loop, but cheap to stay safe
                        # against): screen candidate-by-candidate instead.
                        self._fallback = True
                        return
                    column = len(union_rows)
                    column_of[member.uid] = column
                    union_rows.append(member.row)
                columns[position] = column
            member_columns.append(columns)
        self._union_rows = (
            np.asarray(union_rows, dtype=np.int64) if union_rows else None
        )
        self._member_columns = member_columns
        self._total_members = total_members

    def process(
        self,
        metric: Metric,
        store: ElementStore,
        rows: np.ndarray,
        vectors: np.ndarray,
    ) -> None:
        """Screen one chunk and resolve each candidate's survivors."""
        if self._fallback:
            self._process_individually(store, rows, vectors)
            return
        version = (len(self.candidates), sum(len(c) for c in self.candidates))
        if version != self._version:
            self._rebuild(store)
            self._version = version
            if self._fallback:
                self._process_individually(store, rows, vectors)
                return
        distances: Optional[np.ndarray] = None
        if self._union_rows is not None:
            distances = self._screen_distances(metric, store, vectors)
        filled = False
        for candidate, columns in zip(self.candidates, self._member_columns):
            if columns is None:
                survivors = np.arange(rows.size)
            else:
                if columns.shape[0] == 1:
                    level_min = distances[:, columns[0]]
                else:
                    level_min = distances[:, columns].min(axis=1)
                survivors = np.nonzero(level_min >= candidate.mu)[0]
            if survivors.size:
                candidate.resolve_rows(store, rows, vectors, survivors)
                filled |= candidate.is_full
        if filled:
            self.candidates = [c for c in self.candidates if not c.is_full]

    def _screen_distances(
        self, metric: Metric, store: ElementStore, vectors: np.ndarray
    ) -> np.ndarray:
        """The chunk-vs-union distance matrix the per-level reductions read.

        The hook the index layer overrides
        (:class:`repro.index.screen.IndexedScreen`): the brute version
        evaluates every (chunk element, union member) pair and charges each
        level's screen in full; an override may leave provably irrelevant
        entries at ``+inf`` (and permute columns, as long as
        ``_member_columns`` is permuted to match) provided every omitted
        entry's true distance is at least the ``mu`` of every level
        containing its member — that keeps the ``min >= mu`` decisions
        bitwise identical.
        """
        union_matrix = store.features[self._union_rows]
        distances = metric.pairwise(vectors, union_matrix)
        charge = getattr(metric, "charge", None)
        if charge is not None:
            charge(
                vectors.shape[0]
                * (self._total_members - self._union_rows.shape[0])
            )
        return distances

    def _process_individually(
        self, store: ElementStore, rows: np.ndarray, vectors: np.ndarray
    ) -> None:
        """Per-candidate screening fallback (no shared union screen)."""
        filled = False
        for candidate in self.candidates:
            candidate.offer_rows(store, rows, vectors)
            filled |= candidate.is_full
        if filled:
            self.candidates = [c for c in self.candidates if not c.is_full]
