"""Shared plumbing for the streaming algorithms.

All three streaming algorithms (Algorithm 1, SFDM1, SFDM2) share the same
skeleton: estimate or accept distance bounds, build the guess ladder,
maintain per-guess candidates while consuming the stream once, then
post-process and select the best candidate.  :class:`StreamingAlgorithm`
hosts the common pieces (bounds handling, counting metric, stats plumbing)
so the algorithm classes read close to the paper's pseudocode.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.guesses import GuessLadder
from repro.metrics.base import Metric
from repro.metrics.cached import CountingMetric
from repro.metrics.space import exact_distance_bounds
from repro.streaming.element import Element
from repro.streaming.stats import StreamStats
from repro.utils.errors import EmptyStreamError, InvalidParameterError
from repro.utils.timer import StageTimer
from repro.utils.validation import require_in_open_interval


class StreamingAlgorithm:
    """Base class holding the pieces common to all streaming FDM algorithms.

    Parameters
    ----------
    metric:
        The distance metric of the underlying metric space.
    epsilon:
        Guess-ladder resolution in ``(0, 1)``.
    distance_bounds:
        Optional ``(d_min, d_max)``.  When omitted, bounds are estimated
        from the first ``warmup_size`` stream elements (which are buffered
        and then processed normally, so the algorithm remains one-pass).
    warmup_size:
        Number of elements buffered for bound estimation when
        ``distance_bounds`` is not supplied.
    """

    #: Overridden by subclasses; used in reports.
    name = "streaming-algorithm"

    def __init__(
        self,
        metric: Metric,
        epsilon: float = 0.1,
        distance_bounds: Optional[Tuple[float, float]] = None,
        warmup_size: int = 64,
    ) -> None:
        self.metric = metric
        self.epsilon = require_in_open_interval(epsilon, 0.0, 1.0, "epsilon")
        if distance_bounds is not None:
            d_min, d_max = distance_bounds
            if not (0 < d_min <= d_max):
                raise InvalidParameterError(
                    f"distance_bounds must satisfy 0 < d_min <= d_max, got {distance_bounds}"
                )
        self.distance_bounds = distance_bounds
        if warmup_size < 2:
            raise InvalidParameterError("warmup_size must be at least 2")
        self.warmup_size = int(warmup_size)

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def _counting_metric(self) -> CountingMetric:
        """A fresh counting wrapper around the user metric for one run."""
        return CountingMetric(self.metric)

    def _resolve_bounds(
        self, stream: Iterable[Element], metric: Metric
    ) -> Tuple[Tuple[float, float], List[Element], Iterator[Element]]:
        """Return ``(bounds, buffered_prefix, remaining_iterator)`` for ``stream``.

        When explicit bounds were supplied the prefix is empty and the whole
        stream is "remaining".  Otherwise the first ``warmup_size`` elements
        are buffered, exact bounds are computed on them, and both the buffer
        and the rest of the stream are handed back so every element is still
        processed exactly once.
        """
        iterator = iter(stream)
        if self.distance_bounds is not None:
            return self.distance_bounds, [], iterator
        buffered: List[Element] = []
        for element in iterator:
            buffered.append(element)
            if len(buffered) >= self.warmup_size:
                break
        if not buffered:
            raise EmptyStreamError(f"{self.name} received an empty stream")
        if len(buffered) == 1:
            # A single element: any positive bounds work, the ladder is trivial.
            return (1.0, 1.0), buffered, iterator
        d_min, d_max = exact_distance_bounds(buffered, metric)
        # Widen the estimate: the sample minimum overestimates the global
        # d_min and the sample maximum underestimates the global d_max.
        return (d_min / 4.0, d_max * 4.0), buffered, iterator

    def _build_ladder(self, bounds: Tuple[float, float]) -> GuessLadder:
        """Guess ladder for the resolved bounds."""
        d_min, d_max = bounds
        return GuessLadder(d_min=d_min, d_max=d_max, epsilon=self.epsilon)

    @staticmethod
    def _chain(prefix: List[Element], rest: Iterator[Element]) -> Iterator[Element]:
        """Iterate the buffered prefix and then the remaining stream."""
        for element in prefix:
            yield element
        for element in rest:
            yield element

    @staticmethod
    def _new_stats() -> Tuple[StreamStats, StageTimer]:
        """Fresh stats object and stage timer for one run."""
        return StreamStats(), StageTimer()

    @staticmethod
    def _finalize_stats(
        stats: StreamStats,
        stages: StageTimer,
        counting: CountingMetric,
        stream_calls: int,
        stored_elements: int,
    ) -> None:
        """Copy timer and counter values into ``stats`` after a run."""
        stats.stream_seconds = stages.elapsed("stream")
        stats.postprocess_seconds = stages.elapsed("postprocess")
        stats.stream_distance_computations = stream_calls
        stats.postprocess_distance_computations = counting.calls - stream_calls
        stats.record_stored(stored_elements)
