"""Post-processing helpers shared by SFDM1 and SFDM2.

* :func:`balance_by_swapping` — the swap-based balancing of SFDM1
  (Algorithm 2, lines 10–17): add the farthest elements from the
  under-filled group's candidate, then drop the closest elements of the
  over-filled group.
* :func:`cluster_elements` — the threshold clustering of SFDM2 (Algorithm 3,
  lines 12–16): single-linkage connected components under ``d < µ/(m+1)``.
* :func:`greedy_fair_fill` — a GMM-style greedy that builds a fair set from
  an arbitrary pool of stored elements; used as a best-effort fallback when
  no guess admits the exact post-processing of the paper (this can happen
  with estimated distance bounds on adversarial streams).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro import obs
from repro.data.store import store_rows_of
from repro.fairness.constraints import FairnessConstraint
from repro.index.tree import resolve_index_kind
from repro.metrics.base import Metric, stack_vectors
from repro.data.element import Element


def distance_to_set(element: Element, subset: Sequence[Element], metric: Metric) -> float:
    """``d(x, S)``; infinity for an empty ``S``.

    Uses the metric's batched ``distances_to`` kernel when available and
    ``S`` has more than one member; falls back to the scalar scan
    otherwise.  When ``element`` and the whole subset are views of one
    :class:`~repro.data.store.ElementStore` the computation routes through
    the index-based ``distances_idx`` kernel, slicing the store directly.
    """
    if not subset:
        return float("inf")
    if metric.supports_batch and len(subset) > 1:
        backing = store_rows_of(subset)
        if backing is not None and getattr(element, "store", None) is backing[0]:
            store, rows = backing
            return float(metric.distances_idx(store, element.row, rows).min())
        return float(metric.distances_to(element.vector, stack_vectors(subset)).min())
    return min(metric.distance(element.vector, member.vector) for member in subset)


def balance_by_swapping(
    blind: Sequence[Element],
    group_candidates: Dict[int, Sequence[Element]],
    constraint: FairnessConstraint,
    metric: Metric,
) -> List[Element]:
    """Balance a group-blind candidate for a two-group fairness constraint.

    Implements the post-processing of Algorithm 2.  ``blind`` is the full
    group-blind candidate ``S_µ`` (``k`` elements), ``group_candidates``
    maps each group to its group-specific candidate ``S_{µ,i}`` (``k_i``
    elements each).  For the under-filled group the farthest-from-current
    elements of its group-specific candidate are inserted; the same number
    of closest-to-the-under-filled-group elements of the over-filled group
    are then removed.

    The function is written for ``m = 2`` (the only case SFDM1 supports)
    but does not hard-code the group labels.
    """
    solution: List[Element] = list(blind)
    counts = {group: 0 for group in constraint.groups}
    for element in solution:
        if element.group in counts:
            counts[element.group] += 1

    under = [g for g in constraint.groups if counts[g] < constraint.quota(g)]
    if not under:
        return solution
    under_group = under[0]
    over_groups = [g for g in constraint.groups if counts[g] > constraint.quota(g)]

    # Phase 1: add elements of the under-filled group, farthest-first, from
    # its group-specific candidate (which contains k_i well-separated
    # elements by construction).
    in_solution: Set[int] = {element.uid for element in solution}
    pool = [
        element
        for element in group_candidates.get(under_group, [])
        if element.uid not in in_solution
    ]
    while counts[under_group] < constraint.quota(under_group) and pool:
        anchor = [element for element in solution if element.group == under_group]
        best = max(pool, key=lambda element: distance_to_set(element, anchor, metric))
        pool.remove(best)
        solution.append(best)
        in_solution.add(best.uid)
        counts[under_group] += 1

    # Phase 2: remove elements of over-filled groups that sit closest to the
    # under-filled group's selection, until the total size is back to k.
    target_size = constraint.total_size
    while len(solution) > target_size:
        under_members = [element for element in solution if element.group == under_group]
        removable = [
            element
            for element in solution
            if element.group in over_groups and counts[element.group] > constraint.quota(element.group)
        ]
        if not removable:
            break
        worst = min(
            removable, key=lambda element: distance_to_set(element, under_members, metric)
        )
        solution.remove(worst)
        counts[worst.group] -= 1
    return solution


class _UnionFind:
    """Minimal union-find used by the threshold clustering."""

    def __init__(self, items: Iterable[int]) -> None:
        self._parent = {item: item for item in items}
        self._rank = {item: 0 for item in self._parent}

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1


def cluster_elements(
    elements: Sequence[Element], threshold: float, metric: Metric
) -> List[List[Element]]:
    """Partition ``elements`` into connected components under ``d < threshold``.

    Two elements end up in the same cluster exactly when they are connected
    by a chain of pairwise distances below ``threshold`` — this is the fixed
    point of the repeated merging in Algorithm 3 (lines 13–16), computed
    with a union-find instead of repeated scans.

    The returned clusters satisfy the paper's Property (i): any two elements
    in *different* clusters are at distance at least ``threshold``.
    """
    unique: Dict[int, Element] = {}
    for element in elements:
        unique.setdefault(element.uid, element)
    items = list(unique.values())
    uf = _UnionFind([element.uid for element in items])
    if metric.supports_batch and len(items) > 1:
        backing = store_rows_of(items)
        if backing is not None:
            matrix = metric.pairwise_idx(backing[0], backing[1])
        else:
            matrix = metric.pairwise(stack_vectors(items))
        close = np.triu(matrix < threshold, k=1)
        for i, j in zip(*np.nonzero(close)):
            uf.union(items[int(i)].uid, items[int(j)].uid)
    else:
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                if metric.distance(items[i].vector, items[j].vector) < threshold:
                    uf.union(items[i].uid, items[j].uid)
    clusters: Dict[int, List[Element]] = {}
    for element in items:
        clusters.setdefault(uf.find(element.uid), []).append(element)
    # Deterministic order: by smallest uid within each cluster.
    ordered = sorted(clusters.values(), key=lambda cluster: min(e.uid for e in cluster))
    return ordered


def greedy_fair_fill(
    pool: Sequence[Element],
    constraint: FairnessConstraint,
    metric: Metric,
    initial: Optional[Sequence[Element]] = None,
    index: Optional[str] = None,
) -> List[Element]:
    """Best-effort fair selection from ``pool`` by farthest-point greedy.

    Starting from ``initial`` (kept verbatim), repeatedly add the pool
    element that maximizes the distance to the current selection among the
    elements whose group quota is not yet exhausted.  Returns a fair set
    whenever ``pool`` contains enough elements of every group; otherwise it
    returns the largest quota-respecting set it could build.

    This is not part of the paper's algorithms; it is the library's fallback
    when the exact post-processing finds no eligible guess (which the paper
    implicitly assumes never happens because ``d_min``/``d_max`` are known
    exactly).

    Metrics with vectorized kernels maintain a nearest-to-selection array
    over the whole pool (one batched ``distances_to`` per accepted element)
    instead of rescanning the selection per pool element; the selected set
    is the same either way.  ``index`` (``"kd"``/``"ball"``, ``None`` for
    brute force) prunes the per-round nearest refresh through a
    :class:`~repro.index.farthest.FarthestPointIndex` — the nearest array,
    and therefore the selection, stays bitwise identical on fewer counted
    evaluations.
    """
    with obs.span("postprocess.fill", pool=len(pool), k=constraint.total_size):
        return _greedy_fair_fill(pool, constraint, metric, initial, index)


def _greedy_fair_fill(
    pool: Sequence[Element],
    constraint: FairnessConstraint,
    metric: Metric,
    initial: Optional[Sequence[Element]],
    index: Optional[str],
) -> List[Element]:
    """Implementation behind :func:`greedy_fair_fill` (span-wrapped there)."""
    index = resolve_index_kind(index, metric)
    selection: List[Element] = list(initial) if initial else []
    selected_uids = {element.uid for element in selection}
    counts = {group: 0 for group in constraint.groups}
    for element in selection:
        if element.group in counts:
            counts[element.group] += 1

    candidates = [element for element in pool if element.uid not in selected_uids]
    if metric.supports_batch and candidates:
        return _greedy_fair_fill_batched(
            candidates, selection, selected_uids, counts, constraint, metric, index
        )
    while len(selection) < constraint.total_size:
        eligible = [
            element
            for element in candidates
            if element.group in counts and counts[element.group] < constraint.quota(element.group)
        ]
        if not eligible:
            break
        if selection:
            best = max(
                eligible, key=lambda element: distance_to_set(element, selection, metric)
            )
        else:
            best = eligible[0]
        selection.append(best)
        selected_uids.add(best.uid)
        counts[best.group] += 1
        candidates = [element for element in candidates if element.uid != best.uid]
    return selection


def _greedy_fair_fill_batched(
    candidates: List[Element],
    selection: List[Element],
    selected_uids: Set[int],
    counts: Dict[int, int],
    constraint: FairnessConstraint,
    metric: Metric,
    index: Optional[str] = None,
) -> List[Element]:
    """Vectorized body of :func:`greedy_fair_fill`.

    Keeps, for every pool candidate, its distance to the current selection
    in one array and takes the arg-max over the quota-eligible entries each
    round — the same greedy choice (with the same first-index tie-breaking)
    as the scalar loop.  Store-backed pools gather the payload matrix and
    the group/uid columns straight from the store instead of looping over
    the elements.  With ``index`` set, each nearest-array refresh runs as
    a pruned tree traversal instead of a full ``distances_to`` sweep.
    """
    backing = store_rows_of(candidates)
    if backing is not None:
        store, rows = backing
        matrix = store.features[rows]
        pool_groups = store.groups[rows]
        pool_uids = store.uids[rows]
    else:
        matrix = stack_vectors(candidates)
        pool_groups = np.array([element.group for element in candidates])
        pool_uids = np.array([element.uid for element in candidates])
    taken = np.zeros(len(candidates), dtype=bool)
    point_index = None
    if index is not None and len(candidates) > 1:
        from repro.index.farthest import FarthestPointIndex

        point_index = FarthestPointIndex(matrix, metric, kind=index)

    def refresh(vector: Any, nearest: np.ndarray) -> None:
        if point_index is not None:
            point_index.update(vector, nearest, metric)
        else:
            np.minimum(nearest, metric.distances_to(vector, matrix), out=nearest)

    nearest = np.full(len(candidates), np.inf)
    for member in selection:
        refresh(member.vector, nearest)

    while len(selection) < constraint.total_size:
        eligible = ~taken
        for group in counts:
            if counts[group] >= constraint.quota(group):
                eligible &= pool_groups != group
        known_groups = np.isin(pool_groups, list(counts))
        eligible &= known_groups
        indices = np.nonzero(eligible)[0]
        if indices.size == 0:
            break
        if selection:
            best_index = int(indices[np.argmax(nearest[indices])])
        else:
            best_index = int(indices[0])
        best = candidates[best_index]
        selection.append(best)
        selected_uids.add(best.uid)
        counts[best.group] += 1
        # Mask every pool entry with the selected uid, not just the chosen
        # index — the scalar path removes all duplicates of the uid too.
        taken |= pool_uids == best.uid
        refresh(best.vector, nearest)
    return selection
