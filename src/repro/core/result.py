"""Run results: solution plus resource accounting for one algorithm run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.solution import Solution
from repro.streaming.stats import StreamStats


@dataclass
class RunResult:
    """Everything one algorithm run produced.

    Attributes
    ----------
    algorithm:
        Name of the algorithm (``"SFDM1"``, ``"FairSwap"``, …).
    solution:
        The returned solution, or ``None`` when the run could not produce a
        feasible solution (callers decide whether that is an error).
    stats:
        Resource accounting gathered during the run.
    params:
        The parameters the run was invoked with (k, epsilon, quotas, …) so
        experiment records are self-describing.
    """

    algorithm: str
    solution: Optional[Solution]
    stats: StreamStats
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def diversity(self) -> float:
        """Diversity of the solution; ``0.0`` when there is no solution."""
        if self.solution is None:
            return 0.0
        return self.solution.diversity

    @property
    def succeeded(self) -> bool:
        """Whether the run produced a solution."""
        return self.solution is not None

    def summary(self) -> Dict[str, Any]:
        """Flat dictionary used by the evaluation harness and the benchmarks."""
        data: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "diversity": self.diversity,
            "solution_size": self.solution.size if self.solution else 0,
            **{f"param_{key}": value for key, value in self.params.items()},
        }
        data.update(self.stats.as_dict())
        return data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(algorithm={self.algorithm!r}, diversity={self.diversity:.4g}, "
            f"time={self.stats.total_seconds:.4g}s, stored={self.stats.peak_stored_elements})"
        )
