"""Swap-based local-search post-optimization for fair solutions.

Neither SFDM1 nor SFDM2 is guaranteed to return a *locally optimal* fair
solution: it is often possible to swap one selected element for another
element of the same group and strictly increase the max-min diversity.  The
paper leaves solution polishing out of scope, but a downstream user who can
afford a few extra passes over a candidate pool (for the streaming
algorithms: the elements retained in memory; for offline use: the whole
dataset) frequently wants it.

:func:`local_search_improve` implements the natural 1-swap local search: it
repeatedly looks for a same-group swap that increases the diversity of the
solution and applies the best one, until no improving swap exists or an
iteration budget is exhausted.  Fairness is preserved by construction since
swaps never change per-group counts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.solution import FairSolution, diversity_of
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.data.element import Element
from repro.utils.validation import require_positive_int


def _best_swap(
    solution: List[Element],
    pool: Sequence[Element],
    metric: Metric,
    current_diversity: float,
) -> Optional[Tuple[int, Element, float]]:
    """Find the same-group swap with the largest diversity improvement.

    Returns ``(index_to_replace, replacement, new_diversity)`` or ``None``
    when no swap improves on ``current_diversity``.
    """
    selected_uids = {element.uid for element in solution}
    best: Optional[Tuple[int, Element, float]] = None
    for candidate in pool:
        if candidate.uid in selected_uids:
            continue
        for index, existing in enumerate(solution):
            if existing.group != candidate.group:
                continue
            trial = list(solution)
            trial[index] = candidate
            value = diversity_of(trial, metric)
            if value > current_diversity and (best is None or value > best[2]):
                best = (index, candidate, value)
    return best


def local_search_improve(
    solution: Sequence[Element],
    pool: Sequence[Element],
    metric: Metric,
    constraint: FairnessConstraint,
    max_iterations: int = 20,
) -> FairSolution:
    """Improve a fair solution by same-group 1-swaps against a candidate pool.

    Parameters
    ----------
    solution:
        The starting solution; it should already satisfy ``constraint``
        (the function works on any quota-respecting set and never changes
        the per-group counts).
    pool:
        Candidate replacements — typically the elements an SFDM run kept in
        memory, or the full dataset in an offline setting.
    metric:
        Distance metric.
    constraint:
        The fairness constraint; used only to produce the audited
        :class:`FairSolution` return value.
    max_iterations:
        Upper bound on the number of swaps applied (each swap requires a
        full scan of ``pool`` × ``solution``, so the budget keeps the cost
        predictable).

    Returns
    -------
    FairSolution
        A solution whose diversity is at least that of the input.
    """
    max_iterations = require_positive_int(max_iterations, "max_iterations")
    current = list(solution)
    current_diversity = diversity_of(current, metric)
    for _ in range(max_iterations):
        swap = _best_swap(current, pool, metric, current_diversity)
        if swap is None:
            break
        index, replacement, current_diversity = swap
        current[index] = replacement
    return FairSolution(current, metric, constraint)
