"""SFDM1 (Algorithm 2): streaming fair diversity maximization for two groups.

Stream phase: for every guess ``µ`` keep one group-blind candidate with
capacity ``k`` and one group-specific candidate per group with capacity
``k_i``, all fed by the Algorithm 1 update rule.  Post-processing: on the
guesses whose candidates are all full, balance the group-blind candidate by
swapping in far elements of the under-filled group and swapping out close
elements of the over-filled group.  The result is ``(1-ε)/4``-approximate
(Theorem 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.base import StreamingAlgorithm
from repro.core.candidate import Candidate
from repro.core.postprocess import balance_by_swapping, greedy_fair_fill
from repro.core.result import RunResult
from repro.core.solution import FairSolution
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.streaming.element import Element
from repro.utils.errors import InvalidParameterError, NoFeasibleSolutionError


class SFDM1(StreamingAlgorithm):
    """The paper's ``(1-ε)/4``-approximate streaming algorithm for ``m = 2``.

    Parameters
    ----------
    metric:
        Distance metric of the underlying space.
    constraint:
        Fairness constraint with exactly two groups.
    epsilon:
        Guess-ladder resolution in ``(0, 1)``.
    distance_bounds:
        Optional known ``(d_min, d_max)``; estimated from a stream prefix
        when omitted.
    fallback:
        When ``True`` (default) and no guess admits the paper's exact
        post-processing, a greedy fair selection over all stored elements is
        returned instead of raising.  Set to ``False`` to get the strict
        paper behaviour.
    batch_size:
        Optional chunk size for the vectorized batch ingestion path (see
        :class:`~repro.core.base.StreamingAlgorithm`); ``None`` keeps
        element-at-a-time updates.
    """

    name = "SFDM1"

    def __init__(
        self,
        metric: Metric,
        constraint: FairnessConstraint,
        epsilon: float = 0.1,
        distance_bounds: Optional[Tuple[float, float]] = None,
        warmup_size: int = 64,
        fallback: bool = True,
        batch_size: Optional[int] = None,
    ) -> None:
        super().__init__(
            metric,
            epsilon=epsilon,
            distance_bounds=distance_bounds,
            warmup_size=warmup_size,
            batch_size=batch_size,
        )
        if constraint.num_groups != 2:
            raise InvalidParameterError(
                f"SFDM1 supports exactly two groups, got {constraint.num_groups}; use SFDM2"
            )
        self.constraint = constraint
        self.fallback = bool(fallback)

    # ------------------------------------------------------------------
    def run(self, stream: Iterable[Element]) -> RunResult:
        """Consume ``stream`` in one pass and return a fair solution."""
        counting = self._counting_metric()
        stats, stages = self._new_stats()
        k = self.constraint.total_size
        groups = self.constraint.groups

        with stages.stage("stream"):
            bounds, plan = self._resolve_bounds(stream, counting)
            ladder = self._build_ladder(bounds)
            blind: List[Candidate] = []
            specific: List[Dict[int, Candidate]] = []
            for mu in ladder:
                blind.append(Candidate(mu=mu, capacity=k, metric=counting))
                specific.append(
                    {
                        group: Candidate(
                            mu=mu,
                            capacity=self.constraint.quota(group),
                            metric=counting,
                            group=group,
                        )
                        for group in groups
                    }
                )
            self._ingest(plan, blind, specific, stats, counting)
        stream_calls = counting.calls

        with stages.stage("postprocess"):
            best: Optional[FairSolution] = None
            eligible_count = 0
            for index in range(len(ladder)):
                if len(blind[index]) != k:
                    continue
                if any(
                    len(specific[index][group]) != self.constraint.quota(group)
                    for group in groups
                ):
                    continue
                eligible_count += 1
                balanced = balance_by_swapping(
                    blind=blind[index].elements,
                    group_candidates={
                        group: specific[index][group].elements for group in groups
                    },
                    constraint=self.constraint,
                    metric=counting,
                )
                candidate_solution = FairSolution(balanced, counting, self.constraint)
                if not candidate_solution.is_fair:
                    continue
                if best is None or candidate_solution.diversity > best.diversity:
                    best = candidate_solution

            if best is None and self.fallback:
                pool = self._stored_elements(blind, specific)
                filled = greedy_fair_fill(pool, self.constraint, counting)
                candidate_solution = FairSolution(filled, counting, self.constraint)
                if candidate_solution.is_fair:
                    best = candidate_solution

        stored = len({e.uid for e in self._stored_elements(blind, specific)})
        stats.extra["num_guesses"] = len(ladder)
        stats.extra["eligible_guesses"] = eligible_count
        self._finalize_stats(stats, stages, counting, stream_calls, stored)

        if best is None:
            raise NoFeasibleSolutionError(
                "SFDM1 could not build a fair solution; the stream may not contain "
                "enough elements of every group"
            )
        return RunResult(
            algorithm=self.name,
            solution=best,
            stats=stats,
            params={
                "k": k,
                "epsilon": self.epsilon,
                "quotas": self.constraint.quotas,
            },
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _stored_elements(
        blind: List[Candidate], specific: List[Dict[int, Candidate]]
    ) -> List[Element]:
        """All distinct elements currently held by any candidate."""
        seen: Dict[int, Element] = {}
        for candidate in blind:
            for element in candidate:
                seen.setdefault(element.uid, element)
        for per_group in specific:
            for candidate in per_group.values():
                for element in candidate:
                    seen.setdefault(element.uid, element)
        return list(seen.values())
