"""SFDM1 (Algorithm 2): streaming fair diversity maximization for two groups.

Stream phase: for every guess ``µ`` keep one group-blind candidate with
capacity ``k`` and one group-specific candidate per group with capacity
``k_i``, all fed by the Algorithm 1 update rule.  Post-processing: on the
guesses whose candidates are all full, balance the group-blind candidate by
swapping in far elements of the under-filled group and swapping out close
elements of the over-filled group.  The result is ``(1-ε)/4``-approximate
(Theorem 2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.base import CandidateState, StreamingAlgorithm
from repro.core.candidate import Candidate
from repro.core.guesses import GuessLadder
from repro.core.postprocess import balance_by_swapping, greedy_fair_fill
from repro.core.solution import FairSolution
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.utils.errors import InvalidParameterError


class SFDM1(StreamingAlgorithm):
    """The paper's ``(1-ε)/4``-approximate streaming algorithm for ``m = 2``.

    Parameters
    ----------
    metric:
        Distance metric of the underlying space.
    constraint:
        Fairness constraint with exactly two groups.
    epsilon:
        Guess-ladder resolution in ``(0, 1)``.
    distance_bounds:
        Optional known ``(d_min, d_max)``; estimated from a stream prefix
        when omitted.
    fallback:
        When ``True`` (default) and no guess admits the paper's exact
        post-processing, a greedy fair selection over all stored elements is
        returned instead of raising.  Set to ``False`` to get the strict
        paper behaviour.
    batch_size:
        Optional chunk size for the vectorized batch ingestion path (see
        :class:`~repro.core.base.StreamingAlgorithm`); ``None`` keeps
        element-at-a-time updates.
    index:
        Optional spatial-index kind (``"kd"``/``"ball"``/``"auto"``) for
        the candidate screens and the fallback fill; see
        :class:`~repro.core.base.StreamingAlgorithm`.
    """

    name = "SFDM1"

    def __init__(
        self,
        metric: Metric,
        constraint: FairnessConstraint,
        epsilon: float = 0.1,
        distance_bounds: Optional[Tuple[float, float]] = None,
        warmup_size: int = 64,
        fallback: bool = True,
        batch_size: Optional[int] = None,
        index: Optional[str] = None,
    ) -> None:
        super().__init__(
            metric,
            epsilon=epsilon,
            distance_bounds=distance_bounds,
            warmup_size=warmup_size,
            batch_size=batch_size,
            index=index,
        )
        if constraint.num_groups != 2:
            raise InvalidParameterError(
                f"SFDM1 supports exactly two groups, got {constraint.num_groups}; use SFDM2"
            )
        self.constraint = constraint
        self.fallback = bool(fallback)

    # ------------------------------------------------------------------
    # Hooks driven by the shared run template and the session API
    # ------------------------------------------------------------------
    def _make_candidates(self, ladder: GuessLadder, metric: Metric) -> CandidateState:
        """One blind candidate (capacity ``k``) and per-group candidates (``k_i``)."""
        k = self.constraint.total_size
        blind: List[Candidate] = []
        specific: List[Dict[int, Candidate]] = []
        for mu in ladder:
            blind.append(Candidate(mu=mu, capacity=k, metric=metric))
            specific.append(
                {
                    group: Candidate(
                        mu=mu,
                        capacity=self.constraint.quota(group),
                        metric=metric,
                        group=group,
                    )
                    for group in self.constraint.groups
                }
            )
        return blind, specific

    def _extract(
        self,
        ladder: GuessLadder,
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        metric: Metric,
    ) -> Tuple[Optional[FairSolution], Dict[str, float]]:
        """Balance-by-swapping over the eligible guesses (lines 9–14)."""
        k = self.constraint.total_size
        groups = self.constraint.groups
        best: Optional[FairSolution] = None
        eligible_count = 0
        for index in range(len(ladder)):
            if len(blind[index]) != k:
                continue
            if any(
                len(specific[index][group]) != self.constraint.quota(group)
                for group in groups
            ):
                continue
            eligible_count += 1
            with obs.span("sfdm1.balance", level=index, mu=float(ladder[index])):
                balanced = balance_by_swapping(
                    blind=blind[index].elements,
                    group_candidates={
                        group: specific[index][group].elements for group in groups
                    },
                    constraint=self.constraint,
                    metric=metric,
                )
            candidate_solution = FairSolution(balanced, metric, self.constraint)
            if not candidate_solution.is_fair:
                continue
            if best is None or candidate_solution.diversity > best.diversity:
                best = candidate_solution

        if best is None and self.fallback:
            pool = self._stored_elements(blind, specific)
            with obs.span("sfdm1.fallback_fill", pool=len(pool)):
                filled = greedy_fair_fill(
                    pool, self.constraint, metric, index=self._index_kind
                )
            candidate_solution = FairSolution(filled, metric, self.constraint)
            if candidate_solution.is_fair:
                best = candidate_solution
        return best, {"eligible_guesses": eligible_count}

    def _infeasible_message(self) -> str:
        """Error message when no feasible solution was found."""
        return (
            "SFDM1 could not build a fair solution; the stream may not contain "
            "enough elements of every group"
        )

    def _run_params(self) -> Dict[str, Any]:
        """The parameter mapping recorded in the :class:`RunResult`."""
        return {
            "k": self.constraint.total_size,
            "epsilon": self.epsilon,
            "quotas": self.constraint.quotas,
        }
