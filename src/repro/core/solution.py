"""Solution value objects returned by the algorithms."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fairness.constraints import FairnessAudit, FairnessConstraint, audit_fairness
from repro.metrics.base import Metric, stack_vectors
from repro.data.element import Element


def diversity_of(elements: Sequence[Element], metric: Metric) -> float:
    """``div(S)``: the minimum pairwise distance within ``elements``.

    Returns ``inf`` for fewer than two elements (the empty minimum), which
    matches the convention used throughout the paper's analysis.  Metrics
    with vectorized kernels evaluate the whole pairwise matrix in one call.
    """
    if len(elements) < 2:
        return float("inf")
    if metric.supports_batch:
        matrix = metric.pairwise(stack_vectors(elements))
        return float(matrix[np.triu_indices(len(elements), k=1)].min())
    best = float("inf")
    for i in range(len(elements)):
        for j in range(i + 1, len(elements)):
            d = metric.distance(elements[i].vector, elements[j].vector)
            if d < best:
                best = d
    return best


class Solution:
    """An (unconstrained) diversity maximization solution.

    The diversity value is computed once at construction time with the
    metric that produced the solution, so reports never recompute pairwise
    distances by accident with a different metric.
    """

    def __init__(self, elements: Sequence[Element], metric: Metric) -> None:
        self._elements: List[Element] = list(elements)
        self._metric = metric
        self._diversity = diversity_of(self._elements, metric)

    @property
    def elements(self) -> List[Element]:
        """The selected elements (a copy, in selection order)."""
        return list(self._elements)

    @property
    def size(self) -> int:
        """Number of selected elements."""
        return len(self._elements)

    @property
    def diversity(self) -> float:
        """``div(S)`` under the metric the algorithm used."""
        return self._diversity

    @property
    def uids(self) -> List[int]:
        """Identifiers of the selected elements (selection order)."""
        return [element.uid for element in self._elements]

    def group_counts(self) -> Dict[int, int]:
        """Number of selected elements per group label."""
        counts: Dict[int, int] = {}
        for element in self._elements:
            counts[element.group] = counts.get(element.group, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self):
        return iter(self._elements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(size={self.size}, diversity={self._diversity:.4g})"


class FairSolution(Solution):
    """A solution carrying its fairness audit against the constraint it served."""

    def __init__(
        self,
        elements: Sequence[Element],
        metric: Metric,
        constraint: FairnessConstraint,
    ) -> None:
        super().__init__(elements, metric)
        self._constraint = constraint
        self._audit: FairnessAudit = audit_fairness(self._elements, constraint)

    @property
    def constraint(self) -> FairnessConstraint:
        """The fairness constraint this solution was computed for."""
        return self._constraint

    @property
    def audit(self) -> FairnessAudit:
        """The fairness audit (counts, quotas, violation)."""
        return self._audit

    @property
    def is_fair(self) -> bool:
        """Whether every group quota is met exactly."""
        return self._audit.is_fair

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FairSolution(size={self.size}, diversity={self.diversity:.4g}, "
            f"fair={self.is_fair})"
        )
