"""Candidate solutions maintained by the streaming algorithms.

A :class:`Candidate` is the greedy set ``S_µ`` of Algorithm 1 for one guess
``µ``: it accepts an element when the candidate is below capacity and the
element is at distance at least ``µ`` from everything already accepted.  By
construction the minimum pairwise distance within a candidate is at least
``µ`` at all times — an invariant the tests verify directly.

Three update paths exist:

* :meth:`Candidate.offer` — the paper's element-at-a-time rule with an
  early-exit distance scan;
* :meth:`Candidate.offer_batch` — the vectorized rule used by the
  object-path batch ingestion: a whole chunk of arriving elements is
  screened against the current members with one batched min-distance
  computation, and only the survivors (typically few once the candidate
  fills) are resolved sequentially against each other;
* :meth:`Candidate.offer_rows` — the columnar rule used by the
  store-backed ingestion: the chunk arrives as row indices into an
  :class:`~repro.data.store.ElementStore` plus an already-sliced payload
  matrix, so no per-element Python work happens at all.  Elements are only
  materialised (as zero-copy store views) for the rows actually accepted.

All three produce the identical accepted set for the same arrival order —
an element rejected against a prefix of the members can never be accepted
later, because members only accumulate.

Accepted member payloads are kept in a preallocated, geometrically grown
row buffer (:attr:`_rows`), so :meth:`member_matrix` is a zero-copy slice
of that buffer instead of a per-call re-stack of the members' vectors.
Non-columnar payloads (categorical sequences, precomputed-matrix indices)
fall back to the original lazily re-stacked matrix.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.metrics.base import Metric
from repro.data.element import Element


class Candidate:
    """One greedy candidate ``S_µ`` with a distance threshold and a capacity.

    Parameters
    ----------
    mu:
        The distance threshold (a guess of OPT).
    capacity:
        Maximum number of elements the candidate may hold.
    metric:
        Metric used for threshold checks.
    group:
        Optional group restriction; when set, :meth:`offer` ignores elements
        of other groups (used for the group-specific candidates ``S_{µ,i}``).
    """

    __slots__ = ("mu", "capacity", "metric", "group", "_elements", "_matrix", "_rows")

    def __init__(
        self,
        mu: float,
        capacity: int,
        metric: Metric,
        group: Optional[int] = None,
    ) -> None:
        self.mu = float(mu)
        self.capacity = int(capacity)
        self.metric = metric
        self.group = group
        self._elements: List[Element] = []
        #: Lazily re-stacked member matrix — only used for payloads that do
        #: not fit the float64 row buffer (strings, scalar indices).
        self._matrix: Optional[np.ndarray] = None
        #: Preallocated (grown geometrically, capped at ``capacity``)
        #: float64 buffer of member payload rows; ``_rows[:len(self)]`` is
        #: the live member matrix.  ``None`` until the first numeric accept,
        #: and permanently ``None`` for non-columnar payloads.
        self._rows: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._elements

    @property
    def elements(self) -> List[Element]:
        """The accepted elements in insertion order (a copy)."""
        return list(self._elements)

    @property
    def is_full(self) -> bool:
        """Whether the candidate has reached its capacity."""
        return len(self._elements) >= self.capacity

    def member_matrix(self) -> np.ndarray:
        """The members' payloads stacked into one array.

        For numeric vector payloads this is a zero-copy slice of the
        preallocated row buffer; other payload kinds fall back to a lazily
        cached re-stack.
        """
        if self._rows is not None:
            return self._rows[: len(self._elements)]
        if self._matrix is None:
            self._matrix = np.asarray([element.vector for element in self._elements])
        return self._matrix

    def _append_member(self, element: Element, row: Optional[np.ndarray] = None) -> None:
        """Record an accepted element, maintaining the member-row buffer.

        ``row`` is the element's payload as a float64 row when the caller
        already has it sliced (the batch paths); otherwise the element's
        own vector is used.  The buffer starts at 16 rows and doubles up to
        ``capacity``, so appends are amortised O(d).
        """
        payload = element.vector if row is None else row
        count = len(self._elements)
        if count == 0 and (
            isinstance(payload, np.ndarray)
            and payload.ndim == 1
            and payload.dtype.kind == "f"
        ):
            size = max(1, min(self.capacity, 16))
            self._rows = np.empty((size, payload.shape[0]), dtype=np.float64)
        if self._rows is not None:
            if count >= self._rows.shape[0]:
                grown = np.empty(
                    (min(self.capacity, max(1, 2 * self._rows.shape[0])), self._rows.shape[1]),
                    dtype=np.float64,
                )
                grown[:count] = self._rows[:count]
                self._rows = grown
            self._rows[count] = payload
        else:
            self._matrix = None
        self._elements.append(element)

    # ------------------------------------------------------------------
    # Streaming update
    # ------------------------------------------------------------------
    def distance_to(self, element: Element) -> float:
        """``d(x, S_µ)``; infinity when the candidate is empty."""
        if not self._elements:
            return float("inf")
        if self.metric.supports_batch and len(self._elements) > 1:
            return float(self.metric.distances_to(element.vector, self.member_matrix()).min())
        return min(
            self.metric.distance(element.vector, member.vector) for member in self._elements
        )

    def offer(self, element: Element) -> bool:
        """Process one stream element; return ``True`` if it was accepted.

        Implements lines 5–6 (and 7–8 for group-specific candidates) of the
        paper's Algorithms 1–3: accept when below capacity, the element
        matches the group restriction, and ``d(x, S_µ) >= µ``.

        The distance scan short-circuits on the first member closer than
        ``µ`` — the decision is identical to computing the full minimum, but
        the expected per-element cost drops well below ``k`` distance
        evaluations, which is what makes the stream phase fast in practice.
        """
        if self.group is not None and element.group != self.group:
            return False
        if self.is_full:
            return False
        distance = self.metric.distance
        vector = element.vector
        for member in self._elements:
            if distance(vector, member.vector) < self.mu:
                return False
        self._append_member(element)
        return True

    def offer_batch(
        self, elements: Sequence[Element], vectors: Optional[np.ndarray] = None
    ) -> int:
        """Process a chunk of stream elements; return how many were accepted.

        Parameters
        ----------
        elements:
            The chunk, in stream order.  For group-specific candidates the
            caller is expected to pre-filter by group (cheaper than doing it
            per guess level); elements of other groups are skipped here as a
            safety net.
        vectors:
            Optional pre-stacked payload matrix aligned with ``elements``
            (row ``i`` is ``elements[i].vector``); avoids re-stacking the
            same chunk once per guess level.

        The decision sequence is equivalent to calling :meth:`offer` on each
        element in order: an element whose distance to the *pre-chunk*
        members is below ``µ`` can never be accepted later in the chunk
        (members only accumulate), so the batched pre-screen rejects exactly
        the elements the scalar rule would; the surviving elements are then
        resolved round-by-round against the members accepted within the
        chunk (see :meth:`_resolve_survivors` for the equivalence argument).
        """
        if self.is_full or not elements:
            return 0
        if self.group is not None:
            kept = [i for i, element in enumerate(elements) if element.group == self.group]
            if not kept:
                return 0
            if len(kept) != len(elements):
                elements = [elements[i] for i in kept]
                vectors = None if vectors is None else vectors[kept]
        if vectors is None:
            vectors = np.asarray([element.vector for element in elements])

        if self._elements:
            min_distances = self.metric.pairwise(vectors, self.member_matrix()).min(axis=1)
            survivor_indices = np.nonzero(min_distances >= self.mu)[0]
        else:
            survivor_indices = np.arange(len(elements))
        return self._resolve_survivors(
            vectors, survivor_indices, lambda i: elements[i]
        )

    def _resolve_survivors(self, vectors, survivor_indices, materialise) -> int:
        """Accept pre-screened chunk survivors, resolving them against each other.

        ``survivor_indices`` (ascending positions into ``vectors``) are the
        chunk elements at distance at least ``µ`` from every *pre-chunk*
        member.  The rule implemented here is round-based: the first alive
        survivor is accepted (nothing accepted this chunk is close to it),
        one batched distance computation then eliminates every remaining
        survivor within ``µ`` of it, and the process repeats until capacity
        or exhaustion.

        This accepts exactly the elements the element-at-a-time
        :meth:`offer` loop would: by induction, the alive list holds the
        survivors at distance ``>= µ`` from everything accepted so far, so
        its head is precisely the next element the sequential scan accepts,
        and the ones skipped between two accepted heads are precisely the
        ones the sequential scan rejects.  One distance computation per
        *accepted* element (at most ``capacity`` per chunk) replaces one
        per surviving element — the schedule changes, the decisions do not.
        """
        accepted = 0
        alive = survivor_indices
        while alive.size and not self.is_full:
            index = int(alive[0])
            self._append_member(materialise(index), row=vectors[index])
            accepted += 1
            alive = alive[1:]
            if not alive.size or self.is_full:
                break
            distances = self.metric.distances_to(vectors[index], vectors[alive])
            alive = alive[distances >= self.mu]
        return accepted

    def offer_rows(self, store, rows: np.ndarray, vectors: Optional[np.ndarray] = None) -> int:
        """Columnar batch update: offer store rows instead of element objects.

        Parameters
        ----------
        store:
            The :class:`~repro.data.store.ElementStore` the rows index into.
        rows:
            Absolute store row indices of the chunk, in stream order.  For
            group-specific candidates the caller must pre-filter the rows
            by group (a vectorized mask over ``store.groups``); no
            per-element safety net runs here.
        vectors:
            Optional pre-sliced ``store.features[rows]`` aligned with
            ``rows``; avoids slicing once per guess level.

        The accept/reject sequence — and the number of distances charged —
        is identical to :meth:`offer_batch` over the same elements: the
        same pre-chunk screen (through the fused ``pairwise_min`` kernel,
        which is bitwise equal to ``pairwise(...).min(axis=1)``) followed
        by the same round-based in-chunk resolution.  Accepted rows are
        materialised as zero-copy store views; rejected rows never become
        objects at all.
        """
        if self.is_full or rows.size == 0:
            return 0
        if vectors is None:
            vectors = store.features[rows]
        if self._elements:
            min_distances = self.metric.pairwise_min(vectors, self.member_matrix())
            survivor_indices = np.nonzero(min_distances >= self.mu)[0]
        else:
            survivor_indices = np.arange(rows.size)
        return self.resolve_rows(store, rows, vectors, survivor_indices)

    def resolve_rows(
        self, store, rows: np.ndarray, vectors: np.ndarray, survivor_indices: np.ndarray
    ) -> int:
        """In-chunk resolution for store rows whose pre-screen already ran.

        The consolidated ingestion path screens a whole chunk against every
        guess level with one segmented kernel call and then hands each
        candidate its own survivors here; :meth:`offer_rows` is the
        self-contained equivalent for callers without a shared screen.
        """
        if self.is_full or survivor_indices.size == 0:
            return 0
        return self._resolve_survivors(
            vectors, survivor_indices, lambda i: store.element(int(rows[i]))
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def diversity(self) -> float:
        """Minimum pairwise distance within the candidate (``inf`` if < 2 items)."""
        if len(self._elements) < 2:
            return float("inf")
        if self.metric.supports_batch:
            matrix = self.metric.pairwise(self.member_matrix())
            return float(matrix[np.triu_indices(len(self._elements), k=1)].min())
        best = float("inf")
        for i in range(len(self._elements)):
            for j in range(i + 1, len(self._elements)):
                d = self.metric.distance(self._elements[i].vector, self._elements[j].vector)
                if d < best:
                    best = d
        return best

    def count_group(self, group: int) -> int:
        """Number of accepted elements belonging to ``group``."""
        return sum(1 for element in self._elements if element.group == group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = "blind" if self.group is None else f"group={self.group}"
        return (
            f"Candidate(mu={self.mu:g}, capacity={self.capacity}, {scope}, "
            f"size={len(self._elements)})"
        )
