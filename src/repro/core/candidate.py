"""Candidate solutions maintained by the streaming algorithms.

A :class:`Candidate` is the greedy set ``S_µ`` of Algorithm 1 for one guess
``µ``: it accepts an element when the candidate is below capacity and the
element is at distance at least ``µ`` from everything already accepted.  By
construction the minimum pairwise distance within a candidate is at least
``µ`` at all times — an invariant the tests verify directly.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.metrics.base import Metric
from repro.streaming.element import Element


class Candidate:
    """One greedy candidate ``S_µ`` with a distance threshold and a capacity.

    Parameters
    ----------
    mu:
        The distance threshold (a guess of OPT).
    capacity:
        Maximum number of elements the candidate may hold.
    metric:
        Metric used for threshold checks.
    group:
        Optional group restriction; when set, :meth:`offer` ignores elements
        of other groups (used for the group-specific candidates ``S_{µ,i}``).
    """

    __slots__ = ("mu", "capacity", "metric", "group", "_elements")

    def __init__(
        self,
        mu: float,
        capacity: int,
        metric: Metric,
        group: Optional[int] = None,
    ) -> None:
        self.mu = float(mu)
        self.capacity = int(capacity)
        self.metric = metric
        self.group = group
        self._elements: List[Element] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._elements

    @property
    def elements(self) -> List[Element]:
        """The accepted elements in insertion order (a copy)."""
        return list(self._elements)

    @property
    def is_full(self) -> bool:
        """Whether the candidate has reached its capacity."""
        return len(self._elements) >= self.capacity

    # ------------------------------------------------------------------
    # Streaming update
    # ------------------------------------------------------------------
    def distance_to(self, element: Element) -> float:
        """``d(x, S_µ)``; infinity when the candidate is empty."""
        if not self._elements:
            return float("inf")
        return min(
            self.metric.distance(element.vector, member.vector) for member in self._elements
        )

    def offer(self, element: Element) -> bool:
        """Process one stream element; return ``True`` if it was accepted.

        Implements lines 5–6 (and 7–8 for group-specific candidates) of the
        paper's Algorithms 1–3: accept when below capacity, the element
        matches the group restriction, and ``d(x, S_µ) >= µ``.

        The distance scan short-circuits on the first member closer than
        ``µ`` — the decision is identical to computing the full minimum, but
        the expected per-element cost drops well below ``k`` distance
        evaluations, which is what makes the stream phase fast in practice.
        """
        if self.group is not None and element.group != self.group:
            return False
        if self.is_full:
            return False
        distance = self.metric.distance
        vector = element.vector
        for member in self._elements:
            if distance(vector, member.vector) < self.mu:
                return False
        self._elements.append(element)
        return True

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def diversity(self) -> float:
        """Minimum pairwise distance within the candidate (``inf`` if < 2 items)."""
        if len(self._elements) < 2:
            return float("inf")
        best = float("inf")
        for i in range(len(self._elements)):
            for j in range(i + 1, len(self._elements)):
                d = self.metric.distance(self._elements[i].vector, self._elements[j].vector)
                if d < best:
                    best = d
        return best

    def count_group(self, group: int) -> int:
        """Number of accepted elements belonging to ``group``."""
        return sum(1 for element in self._elements if element.group == group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = "blind" if self.group is None else f"group={self.group}"
        return (
            f"Candidate(mu={self.mu:g}, capacity={self.capacity}, {scope}, "
            f"size={len(self._elements)})"
        )
