"""Candidate solutions maintained by the streaming algorithms.

A :class:`Candidate` is the greedy set ``S_µ`` of Algorithm 1 for one guess
``µ``: it accepts an element when the candidate is below capacity and the
element is at distance at least ``µ`` from everything already accepted.  By
construction the minimum pairwise distance within a candidate is at least
``µ`` at all times — an invariant the tests verify directly.

Two update paths exist:

* :meth:`Candidate.offer` — the paper's element-at-a-time rule with an
  early-exit distance scan;
* :meth:`Candidate.offer_batch` — the vectorized rule used by the batch
  ingestion path: a whole chunk of arriving elements is screened against
  the current members with one batched min-distance computation, and only
  the survivors (typically few once the candidate fills) are resolved
  sequentially against each other.  The accepted set is identical to what
  element-at-a-time offers in the same order would produce.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.metrics.base import Metric
from repro.streaming.element import Element


class Candidate:
    """One greedy candidate ``S_µ`` with a distance threshold and a capacity.

    Parameters
    ----------
    mu:
        The distance threshold (a guess of OPT).
    capacity:
        Maximum number of elements the candidate may hold.
    metric:
        Metric used for threshold checks.
    group:
        Optional group restriction; when set, :meth:`offer` ignores elements
        of other groups (used for the group-specific candidates ``S_{µ,i}``).
    """

    __slots__ = ("mu", "capacity", "metric", "group", "_elements", "_matrix")

    def __init__(
        self,
        mu: float,
        capacity: int,
        metric: Metric,
        group: Optional[int] = None,
    ) -> None:
        self.mu = float(mu)
        self.capacity = int(capacity)
        self.metric = metric
        self.group = group
        self._elements: List[Element] = []
        #: Cached stack of member payloads for the batch path; rebuilt
        #: lazily after each accepted element.
        self._matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements)

    def __contains__(self, element: Element) -> bool:
        return element in self._elements

    @property
    def elements(self) -> List[Element]:
        """The accepted elements in insertion order (a copy)."""
        return list(self._elements)

    @property
    def is_full(self) -> bool:
        """Whether the candidate has reached its capacity."""
        return len(self._elements) >= self.capacity

    def member_matrix(self) -> np.ndarray:
        """The members' payloads stacked into one array (cached between accepts)."""
        if self._matrix is None:
            self._matrix = np.asarray([element.vector for element in self._elements])
        return self._matrix

    # ------------------------------------------------------------------
    # Streaming update
    # ------------------------------------------------------------------
    def distance_to(self, element: Element) -> float:
        """``d(x, S_µ)``; infinity when the candidate is empty."""
        if not self._elements:
            return float("inf")
        if self.metric.supports_batch and len(self._elements) > 1:
            return float(self.metric.distances_to(element.vector, self.member_matrix()).min())
        return min(
            self.metric.distance(element.vector, member.vector) for member in self._elements
        )

    def offer(self, element: Element) -> bool:
        """Process one stream element; return ``True`` if it was accepted.

        Implements lines 5–6 (and 7–8 for group-specific candidates) of the
        paper's Algorithms 1–3: accept when below capacity, the element
        matches the group restriction, and ``d(x, S_µ) >= µ``.

        The distance scan short-circuits on the first member closer than
        ``µ`` — the decision is identical to computing the full minimum, but
        the expected per-element cost drops well below ``k`` distance
        evaluations, which is what makes the stream phase fast in practice.
        """
        if self.group is not None and element.group != self.group:
            return False
        if self.is_full:
            return False
        distance = self.metric.distance
        vector = element.vector
        for member in self._elements:
            if distance(vector, member.vector) < self.mu:
                return False
        self._elements.append(element)
        self._matrix = None
        return True

    def offer_batch(
        self, elements: Sequence[Element], vectors: Optional[np.ndarray] = None
    ) -> int:
        """Process a chunk of stream elements; return how many were accepted.

        Parameters
        ----------
        elements:
            The chunk, in stream order.  For group-specific candidates the
            caller is expected to pre-filter by group (cheaper than doing it
            per guess level); elements of other groups are skipped here as a
            safety net.
        vectors:
            Optional pre-stacked payload matrix aligned with ``elements``
            (row ``i`` is ``elements[i].vector``); avoids re-stacking the
            same chunk once per guess level.

        The decision sequence is equivalent to calling :meth:`offer` on each
        element in order: an element whose distance to the *pre-chunk*
        members is below ``µ`` can never be accepted later in the chunk
        (members only accumulate), so the batched pre-screen rejects exactly
        the elements the scalar rule would; the surviving elements are then
        resolved sequentially against the members accepted within the chunk.
        """
        if self.is_full or not elements:
            return 0
        if self.group is not None:
            kept = [i for i, element in enumerate(elements) if element.group == self.group]
            if not kept:
                return 0
            if len(kept) != len(elements):
                elements = [elements[i] for i in kept]
                vectors = None if vectors is None else vectors[kept]
        if vectors is None:
            vectors = np.asarray([element.vector for element in elements])

        if self._elements:
            min_distances = self.metric.pairwise(vectors, self.member_matrix()).min(axis=1)
            survivor_indices = np.nonzero(min_distances >= self.mu)[0]
        else:
            survivor_indices = np.arange(len(elements))
        if survivor_indices.size == 0:
            return 0

        accepted = 0
        new_rows: List[np.ndarray] = []
        for i in survivor_indices:
            if self.is_full:
                break
            vector = vectors[i]
            if new_rows:
                in_chunk = self.metric.distances_to(vector, np.asarray(new_rows))
                if float(in_chunk.min()) < self.mu:
                    continue
            self._elements.append(elements[int(i)])
            self._matrix = None
            new_rows.append(vector)
            accepted += 1
        return accepted

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def diversity(self) -> float:
        """Minimum pairwise distance within the candidate (``inf`` if < 2 items)."""
        if len(self._elements) < 2:
            return float("inf")
        if self.metric.supports_batch:
            matrix = self.metric.pairwise(self.member_matrix())
            return float(matrix[np.triu_indices(len(self._elements), k=1)].min())
        best = float("inf")
        for i in range(len(self._elements)):
            for j in range(i + 1, len(self._elements)):
                d = self.metric.distance(self._elements[i].vector, self._elements[j].vector)
                if d < best:
                    best = d
        return best

    def count_group(self, group: int) -> int:
        """Number of accepted elements belonging to ``group``."""
        return sum(1 for element in self._elements if element.group == group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = "blind" if self.group is None else f"group={self.group}"
        return (
            f"Candidate(mu={self.mu:g}, capacity={self.capacity}, {scope}, "
            f"size={len(self._elements)})"
        )
