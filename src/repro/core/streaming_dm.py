"""Algorithm 1: streaming unconstrained max-min diversity maximization.

This is the streaming algorithm of Borassi et al. (PODS 2019) restated as
Algorithm 1 in the paper, with the approximation ratio for max-min
dispersion improved from ``(1-ε)/5`` to ``(1-ε)/2`` by Theorem 1.  It is the
building block both SFDM algorithms use during their stream phase.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.base import CandidateState, StreamingAlgorithm
from repro.core.candidate import Candidate
from repro.core.guesses import GuessLadder
from repro.core.solution import Solution
from repro.metrics.base import Metric
from repro.utils.validation import require_positive_int


class StreamingDiversityMaximization(StreamingAlgorithm):
    """Streaming ``(1-ε)/2``-approximation for unconstrained max-min DM.

    Parameters
    ----------
    metric:
        Distance metric.
    k:
        Solution size.
    epsilon:
        Guess-ladder resolution in ``(0, 1)``.
    distance_bounds:
        Optional known ``(d_min, d_max)``; estimated from a stream prefix
        when omitted.
    batch_size:
        Optional chunk size for the vectorized batch ingestion path (see
        :class:`~repro.core.base.StreamingAlgorithm`); ``None`` keeps
        element-at-a-time updates.
    index:
        Optional spatial-index kind (``"kd"``/``"ball"``/``"auto"``) for
        the candidate screens; see
        :class:`~repro.core.base.StreamingAlgorithm`.
    """

    name = "StreamingDM"

    def __init__(
        self,
        metric: Metric,
        k: int,
        epsilon: float = 0.1,
        distance_bounds: Optional[Tuple[float, float]] = None,
        warmup_size: int = 64,
        batch_size: Optional[int] = None,
        index: Optional[str] = None,
    ) -> None:
        super().__init__(
            metric,
            epsilon=epsilon,
            distance_bounds=distance_bounds,
            warmup_size=warmup_size,
            batch_size=batch_size,
            index=index,
        )
        self.k = require_positive_int(k, "k")

    # ------------------------------------------------------------------
    # Hooks driven by the shared run template and the session API
    # ------------------------------------------------------------------
    def _make_candidates(self, ladder: GuessLadder, metric: Metric) -> CandidateState:
        """One group-blind candidate with capacity ``k`` per guess level."""
        return [Candidate(mu=mu, capacity=self.k, metric=metric) for mu in ladder], None

    def _extract(
        self,
        ladder: GuessLadder,
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        metric: Metric,
    ) -> Tuple[Optional[Solution], Dict[str, float]]:
        """The best candidate among those that reached size ``k``."""
        best_solution: Optional[Solution] = None
        for candidate in blind:
            if len(candidate) != self.k:
                continue
            solution = Solution(candidate.elements, metric)
            if best_solution is None or solution.diversity > best_solution.diversity:
                best_solution = solution
        return best_solution, {}

    def _infeasible_message(self) -> str:
        """Error message when no candidate reached size ``k``."""
        return (
            f"no guess produced a candidate of size k={self.k}; "
            f"the stream may contain fewer than k distinct points"
        )

    def _run_params(self) -> Dict[str, Any]:
        """The parameter mapping recorded in the :class:`RunResult`."""
        return {"k": self.k, "epsilon": self.epsilon}
