"""Algorithm 1: streaming unconstrained max-min diversity maximization.

This is the streaming algorithm of Borassi et al. (PODS 2019) restated as
Algorithm 1 in the paper, with the approximation ratio for max-min
dispersion improved from ``(1-ε)/5`` to ``(1-ε)/2`` by Theorem 1.  It is the
building block both SFDM algorithms use during their stream phase.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.core.base import StreamingAlgorithm
from repro.core.candidate import Candidate
from repro.core.result import RunResult
from repro.core.solution import Solution
from repro.metrics.base import Metric
from repro.streaming.element import Element
from repro.utils.errors import NoFeasibleSolutionError
from repro.utils.validation import require_positive_int


class StreamingDiversityMaximization(StreamingAlgorithm):
    """Streaming ``(1-ε)/2``-approximation for unconstrained max-min DM.

    Parameters
    ----------
    metric:
        Distance metric.
    k:
        Solution size.
    epsilon:
        Guess-ladder resolution in ``(0, 1)``.
    distance_bounds:
        Optional known ``(d_min, d_max)``; estimated from a stream prefix
        when omitted.
    batch_size:
        Optional chunk size for the vectorized batch ingestion path (see
        :class:`~repro.core.base.StreamingAlgorithm`); ``None`` keeps
        element-at-a-time updates.
    """

    name = "StreamingDM"

    def __init__(
        self,
        metric: Metric,
        k: int,
        epsilon: float = 0.1,
        distance_bounds: Optional[Tuple[float, float]] = None,
        warmup_size: int = 64,
        batch_size: Optional[int] = None,
    ) -> None:
        super().__init__(
            metric,
            epsilon=epsilon,
            distance_bounds=distance_bounds,
            warmup_size=warmup_size,
            batch_size=batch_size,
        )
        self.k = require_positive_int(k, "k")

    def run(self, stream: Iterable[Element]) -> RunResult:
        """Process ``stream`` in one pass and return the best size-``k`` candidate.

        Raises
        ------
        NoFeasibleSolutionError
            If no candidate reached ``k`` elements (e.g. the stream has
            fewer than ``k`` distinct points for every guess).
        """
        counting = self._counting_metric()
        stats, stages = self._new_stats()
        with stages.stage("stream"):
            bounds, plan = self._resolve_bounds(stream, counting)
            ladder = self._build_ladder(bounds)
            candidates = [
                Candidate(mu=mu, capacity=self.k, metric=counting) for mu in ladder
            ]
            self._ingest(plan, candidates, None, stats, counting)
        stream_calls = counting.calls

        with stages.stage("postprocess"):
            full = [candidate for candidate in candidates if len(candidate) == self.k]
            best_solution: Optional[Solution] = None
            for candidate in full:
                solution = Solution(candidate.elements, counting)
                if best_solution is None or solution.diversity > best_solution.diversity:
                    best_solution = solution

        stored = len({element.uid for candidate in candidates for element in candidate})
        stats.extra["num_guesses"] = len(ladder)
        self._finalize_stats(stats, stages, counting, stream_calls, stored)

        if best_solution is None:
            raise NoFeasibleSolutionError(
                f"no guess produced a candidate of size k={self.k}; "
                f"the stream may contain fewer than k distinct points"
            )
        return RunResult(
            algorithm=self.name,
            solution=best_solution,
            stats=stats,
            params={"k": self.k, "epsilon": self.epsilon},
        )
