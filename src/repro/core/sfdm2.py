"""SFDM2 (Algorithm 3): streaming fair diversity maximization for any ``m``.

Stream phase: for every guess ``µ`` keep one group-blind candidate with
capacity ``k`` and one group-specific candidate per group, each with
capacity ``k`` (not ``k_i`` — the extra elements are what makes the
matroid-intersection augmentation succeed).  Post-processing, per eligible
guess: seed a partial solution from the group-blind candidate (capped at
``k_i`` per group), cluster all stored elements at threshold ``µ/(m+1)``,
and augment the partial solution to a size-``k`` common independent set of
the fairness matroid and the cluster matroid using Algorithm 4 (a greedy,
diversity-aware warm start followed by Cunningham's augmenting paths).  The
result is ``(1-ε)/(3m+2)``-approximate (Theorem 4).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.core.base import CandidateState, StreamingAlgorithm
from repro.core.candidate import Candidate
from repro.core.guesses import GuessLadder
from repro.core.postprocess import cluster_elements, distance_to_set, greedy_fair_fill
from repro.core.solution import FairSolution
from repro.fairness.constraints import FairnessConstraint
from repro.matroids.cluster import ClusterMatroid
from repro.matroids.intersection import matroid_intersection
from repro.matroids.partition import matroid_from_constraint
from repro.metrics.base import Metric
from repro.data.element import Element


class SFDM2(StreamingAlgorithm):
    """The paper's ``(1-ε)/(3m+2)``-approximate streaming algorithm for any ``m``.

    Parameters
    ----------
    metric:
        Distance metric of the underlying space.
    constraint:
        Fairness constraint over any number ``m >= 2`` of groups (``m = 1``
        also works and degenerates to the unconstrained problem).
    epsilon:
        Guess-ladder resolution in ``(0, 1)``.
    distance_bounds:
        Optional known ``(d_min, d_max)``; estimated from a stream prefix
        when omitted.
    fallback:
        When ``True`` (default) and no guess yields a full fair solution, a
        greedy fair selection over all stored elements is returned instead
        of raising.
    greedy_augmentation:
        When ``True`` (default, the paper's Algorithm 4) the matroid-
        intersection augmentation adds directly-addable elements in
        farthest-first order, which raises the diversity of the final
        solution.  Setting it to ``False`` disables the diversity-aware
        priority (elements are added in arbitrary order) and is provided
        for the ablation study only.
    batch_size:
        Optional chunk size for the vectorized batch ingestion path (see
        :class:`~repro.core.base.StreamingAlgorithm`); ``None`` keeps
        element-at-a-time updates.
    index:
        Optional spatial-index kind (``"kd"``/``"ball"``/``"auto"``) for
        the candidate screens and the fallback fill; see
        :class:`~repro.core.base.StreamingAlgorithm`.
    """

    name = "SFDM2"

    def __init__(
        self,
        metric: Metric,
        constraint: FairnessConstraint,
        epsilon: float = 0.1,
        distance_bounds: Optional[Tuple[float, float]] = None,
        warmup_size: int = 64,
        fallback: bool = True,
        greedy_augmentation: bool = True,
        batch_size: Optional[int] = None,
        index: Optional[str] = None,
    ) -> None:
        super().__init__(
            metric,
            epsilon=epsilon,
            distance_bounds=distance_bounds,
            warmup_size=warmup_size,
            batch_size=batch_size,
            index=index,
        )
        self.constraint = constraint
        self.fallback = bool(fallback)
        self.greedy_augmentation = bool(greedy_augmentation)

    # ------------------------------------------------------------------
    # Hooks driven by the shared run template and the session API
    # ------------------------------------------------------------------
    def _make_candidates(self, ladder: GuessLadder, metric: Metric) -> CandidateState:
        """One blind and one per-group candidate per level, all with capacity ``k``."""
        k = self.constraint.total_size
        blind: List[Candidate] = []
        specific: List[Dict[int, Candidate]] = []
        for mu in ladder:
            blind.append(Candidate(mu=mu, capacity=k, metric=metric))
            specific.append(
                {
                    group: Candidate(mu=mu, capacity=k, metric=metric, group=group)
                    for group in self.constraint.groups
                }
            )
        return blind, specific

    def _extract(
        self,
        ladder: GuessLadder,
        blind: List[Candidate],
        specific: Optional[List[Dict[int, Candidate]]],
        metric: Metric,
    ) -> Tuple[Optional[FairSolution], Dict[str, float]]:
        """Matroid-intersection post-processing over the eligible guesses."""
        k = self.constraint.total_size
        groups = self.constraint.groups
        m = self.constraint.num_groups
        best: Optional[FairSolution] = None
        eligible_count = 0
        for index in range(len(ladder)):
            if len(blind[index]) != k:
                continue
            if any(
                len(specific[index][group]) < self.constraint.quota(group)
                for group in groups
            ):
                continue
            eligible_count += 1
            with obs.span("sfdm2.guess", level=index, mu=float(ladder[index])):
                solution_elements = self._postprocess_guess(
                    mu=ladder[index],
                    blind=blind[index],
                    specific=specific[index],
                    metric=metric,
                    m=m,
                )
            if solution_elements is None:
                continue
            candidate_solution = FairSolution(solution_elements, metric, self.constraint)
            if not candidate_solution.is_fair:
                continue
            if best is None or candidate_solution.diversity > best.diversity:
                best = candidate_solution

        if best is None and self.fallback:
            pool = self._stored_elements(blind, specific)
            with obs.span("sfdm2.fallback_fill", pool=len(pool)):
                filled = greedy_fair_fill(
                    pool, self.constraint, metric, index=self._index_kind
                )
            candidate_solution = FairSolution(filled, metric, self.constraint)
            if candidate_solution.is_fair:
                best = candidate_solution
        return best, {"eligible_guesses": eligible_count}

    def _infeasible_message(self) -> str:
        """Error message when no feasible solution was found."""
        return (
            "SFDM2 could not build a fair solution; the stream may not contain "
            "enough elements of every group"
        )

    def _run_params(self) -> Dict[str, Any]:
        """The parameter mapping recorded in the :class:`RunResult`."""
        return {
            "k": self.constraint.total_size,
            "epsilon": self.epsilon,
            "quotas": self.constraint.quotas,
            "m": self.constraint.num_groups,
        }

    # ------------------------------------------------------------------
    def _postprocess_guess(
        self,
        mu: float,
        blind: Candidate,
        specific: Dict[int, Candidate],
        metric: Metric,
        m: int,
    ) -> Optional[List[Element]]:
        """Post-process one eligible guess; return ``k`` elements or ``None``.

        Follows lines 10–18 of Algorithm 3: extract the initial partial
        solution from the group-blind candidate, cluster all stored
        elements at threshold ``µ/(m+1)``, and augment via matroid
        intersection with a diversity-aware greedy warm start.
        """
        # Initial partial solution: at most k_i elements per group from S_µ.
        initial: List[Element] = []
        taken_per_group: Dict[int, int] = {group: 0 for group in self.constraint.groups}
        for element in blind.elements:
            quota = self.constraint.quotas.get(element.group)
            if quota is None:
                continue
            if taken_per_group[element.group] < quota:
                initial.append(element)
                taken_per_group[element.group] += 1

        # S_all: the union of the group-blind and all group-specific candidates.
        pool: Dict[int, Element] = {}
        for element in blind.elements:
            pool.setdefault(element.uid, element)
        for candidate in specific.values():
            for element in candidate:
                pool.setdefault(element.uid, element)
        all_elements = list(pool.values())

        threshold = mu / (m + 1)
        clusters = cluster_elements(all_elements, threshold, metric)

        fairness_matroid = matroid_from_constraint(all_elements, self.constraint)
        cluster_matroid = ClusterMatroid(clusters)

        # The initial partial solution may violate the cluster matroid when
        # the clustering merges two of its elements (possible because the
        # threshold is µ/(m+1) while S_µ only guarantees separation µ ... the
        # guarantee of Lemma 3(ii) actually prevents this, but estimated
        # distance bounds can break the premise, so stay defensive).
        initial_set: Set[Element] = set()
        for element in initial:
            tentative = initial_set | {element}
            if fairness_matroid.is_independent(tentative) and cluster_matroid.is_independent(
                tentative
            ):
                initial_set.add(element)

        def priority(element: Element, current: Set[Element]) -> float:
            return distance_to_set(element, list(current), metric)

        augmented = matroid_intersection(
            fairness_matroid,
            cluster_matroid,
            initial=initial_set,
            priority=priority if self.greedy_augmentation else None,
            target_size=self.constraint.total_size,
        )
        if len(augmented) < self.constraint.total_size:
            return None
        return sorted(augmented, key=lambda element: element.uid)
