"""Core contribution: the streaming fair diversity maximization algorithms.

* :class:`StreamingDiversityMaximization` — Algorithm 1 (Borassi et al.),
  the unconstrained streaming building block with the improved ``(1-ε)/2``
  analysis.
* :class:`SFDM1` — Algorithm 2, the ``(1-ε)/4``-approximate streaming
  algorithm for two groups.
* :class:`SFDM2` — Algorithm 3, the ``(1-ε)/(3m+2)``-approximate streaming
  algorithm for any number of groups, with the matroid-intersection
  post-processing of Algorithm 4.
"""

from repro.core.guesses import GuessLadder
from repro.core.candidate import Candidate
from repro.core.solution import Solution, FairSolution
from repro.core.result import RunResult
from repro.core.streaming_dm import StreamingDiversityMaximization
from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.core.local_search import local_search_improve
from repro.core.coreset import coreset_fair_diversity, composable_fair_coreset

__all__ = [
    "GuessLadder",
    "Candidate",
    "Solution",
    "FairSolution",
    "RunResult",
    "StreamingDiversityMaximization",
    "SFDM1",
    "SFDM2",
    "local_search_improve",
    "coreset_fair_diversity",
    "composable_fair_coreset",
]
