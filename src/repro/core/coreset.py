"""Composable coresets for (fair) diversity maximization.

Indyk et al. (PODS 2014) showed that running the GMM greedy on each part of
an arbitrary partition of the data and unioning the outputs yields a
*composable coreset* for max-min diversity maximization: solving the problem
on the union of the per-part summaries gives a constant-factor approximation
of the optimum on the full data.  For the fair variant, keeping ``k``
elements *per group* from every part preserves at least ``k_i`` candidates
of each group, so a fair solution computed on the coreset remains feasible.

This module is a small, well-tested utility on top of the library's
substrates.  It is not part of the paper's algorithms, but it is the
standard distributed/batched counterpart a practitioner would reach for when
the stream is naturally partitioned (e.g. sharded logs), and it doubles as
an additional baseline in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.baselines.gmm import gmm_elements
from repro.core.postprocess import greedy_fair_fill
from repro.core.solution import FairSolution
from repro.data.store import ElementStore
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.data.element import Element
from repro.utils.validation import require_non_empty, require_positive_int


def partition_elements(
    elements: Sequence[Element], num_parts: int
) -> List[List[Element]]:
    """Split ``elements`` into at most ``num_parts`` contiguous, near-equal parts.

    When the collection is smaller than ``num_parts`` the part count is
    capped at ``len(elements)`` (one element per part) instead of raising,
    so callers that pick a shard count for the *expected* data size degrade
    gracefully on tiny inputs.  Empty inputs yield no parts.
    """
    num_parts = require_positive_int(num_parts, "num_parts")
    num_parts = min(num_parts, len(elements))
    if num_parts == 0:
        return []
    parts: List[List[Element]] = [[] for _ in range(num_parts)]
    base, remainder = divmod(len(elements), num_parts)
    start = 0
    for index in range(num_parts):
        size = base + (1 if index < remainder else 0)
        parts[index] = list(elements[start : start + size])
        start += size
    return parts


def gmm_coreset(
    elements: Union[Sequence[Element], ElementStore],
    metric: Metric,
    k: int,
    per_group: bool = False,
    start_index: int = 0,
    index: Optional[str] = None,
) -> List[Element]:
    """A GMM-based coreset of one data part.

    With ``per_group=False`` this is the classic Indyk et al. summary: the
    ``k`` GMM picks on the part.  With ``per_group=True`` it additionally
    keeps ``k`` GMM picks *within every group* present in the part, which is
    what fair downstream selection needs.

    Parameters
    ----------
    elements:
        The part to summarise — an element sequence or, for the columnar
        fast path, an :class:`~repro.data.store.ElementStore` (group
        restriction becomes a vectorized mask and the farthest-point greedy
        runs on store rows; only the selected elements are materialised,
        as zero-copy views).
    start_index:
        Seed position for the farthest-point greedy, reduced modulo the
        (group-restricted) pool size so any non-negative value is valid.
        The parallel driver derives it from its run seed, which makes the
        per-shard summaries reproducible for a fixed seed while still
        letting experiments vary the GMM seed element.
    index:
        Optional spatial-index kind for the farthest-point rounds
        (forwarded to :func:`~repro.baselines.gmm.gmm_elements`); the
        summary is identical either way.
    """
    if not len(elements):
        return []
    summary: Dict[int, Element] = {}
    for element in gmm_elements(
        elements, metric, k, start_index=start_index % len(elements), index=index
    ):
        summary.setdefault(element.uid, element)
    if per_group:
        if isinstance(elements, ElementStore):
            values, counts = np.unique(elements.groups, return_counts=True)
            group_sizes = {int(g): int(c) for g, c in zip(values, counts)}
        else:
            group_sizes = {}
            for element in elements:
                group_sizes[element.group] = group_sizes.get(element.group, 0) + 1
        for group in sorted(group_sizes):
            for element in gmm_elements(
                elements,
                metric,
                k,
                start_index=start_index % group_sizes[group],
                restrict_group=group,
                index=index,
            ):
                summary.setdefault(element.uid, element)
    return list(summary.values())


def composable_fair_coreset(
    parts: Iterable[Sequence[Element]],
    metric: Metric,
    k: int,
    index: Optional[str] = None,
) -> List[Element]:
    """Union of per-part, per-group GMM summaries — a fair composable coreset."""
    union: Dict[int, Element] = {}
    for part in parts:
        if not part:
            continue
        for element in gmm_coreset(part, metric, k, per_group=True, index=index):
            union.setdefault(element.uid, element)
    return list(union.values())


def coreset_fair_diversity(
    elements: Sequence[Element],
    metric: Metric,
    constraint: FairnessConstraint,
    num_parts: int = 4,
    refine_with_swap: bool = True,
    index: Optional[str] = None,
) -> FairSolution:
    """Fair diversity maximization via the composable-coreset route.

    The data is split into ``num_parts`` parts, each part is summarised by a
    per-group GMM coreset of size ``k`` (where ``k`` is the constraint's
    total size), and a fair solution is extracted from the unioned coreset
    with the same greedy farthest-point rule the library's fallbacks use.

    Parameters
    ----------
    refine_with_swap:
        When ``True``, a final pass of same-group local-search swaps against
        the coreset is applied (cheap, because the coreset is small).
    index:
        Optional spatial-index kind for the per-part GMM summaries and the
        greedy extraction; the solution is identical either way.
    """
    require_non_empty(elements, "elements")
    k = constraint.total_size
    parts = partition_elements(elements, num_parts)
    coreset = composable_fair_coreset(parts, metric, k, index=index)
    selection = greedy_fair_fill(coreset, constraint, metric, index=index)
    if refine_with_swap:
        from repro.core.local_search import local_search_improve

        return local_search_improve(selection, coreset, metric, constraint)
    return FairSolution(selection, metric, constraint)
