"""The geometric ladder of guesses for the optimal diversity OPT.

Algorithm 1 of the paper guesses OPT within a relative error of ``1 - ε`` by
maintaining one candidate per value in

    U = { d_min / (1 - ε)^j  :  j = 0, 1, 2, ...,  value <= d_max }

so ``|U| = O(log(Δ) / ε)`` where ``Δ = d_max / d_min``.  :class:`GuessLadder`
materialises this sequence and provides the small navigation helpers the
algorithms need (the next guess above a value, the predecessor of a guess).
"""

from __future__ import annotations

import math
from typing import Iterator, List

from repro.utils.errors import InvalidParameterError
from repro.utils.validation import require_in_open_interval


class GuessLadder:
    """Geometric sequence of guesses for OPT between ``d_min`` and ``d_max``.

    Parameters
    ----------
    d_min, d_max:
        Positive lower and upper bounds on the pairwise distances of the
        stream (estimates are fine; errors only lengthen the ladder or, if
        the true OPT falls outside ``[d_min, d_max]``, degrade quality the
        same way they would in the paper).
    epsilon:
        Relative step of the ladder, in ``(0, 1)``.
    """

    def __init__(self, d_min: float, d_max: float, epsilon: float) -> None:
        if not (d_min > 0 and math.isfinite(d_min)):
            raise InvalidParameterError(f"d_min must be positive and finite, got {d_min}")
        if not (d_max >= d_min and math.isfinite(d_max)):
            raise InvalidParameterError(
                f"d_max must be finite and at least d_min={d_min}, got {d_max}"
            )
        self.d_min = float(d_min)
        self.d_max = float(d_max)
        self.epsilon = require_in_open_interval(epsilon, 0.0, 1.0, "epsilon")
        self._values: List[float] = []
        value = self.d_min
        # Guard against floating-point stagnation for extremely small epsilon.
        ratio = 1.0 / (1.0 - self.epsilon)
        if ratio <= 1.0:
            raise InvalidParameterError("epsilon too small: ladder ratio underflowed to 1")
        while value <= self.d_max * (1.0 + 1e-12):
            self._values.append(value)
            value *= ratio

    @property
    def values(self) -> List[float]:
        """The guesses in increasing order (a copy)."""
        return list(self._values)

    @property
    def delta(self) -> float:
        """The spread ``Δ = d_max / d_min``."""
        return self.d_max / self.d_min

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __getitem__(self, index: int) -> float:
        return self._values[index]

    def __contains__(self, value: float) -> bool:
        return any(math.isclose(value, existing) for existing in self._values)

    def predecessor(self, value: float) -> float:
        """The ladder value one step below ``value`` (i.e. ``value * (1 - ε)``).

        Used in the analysis (µ'' = (1 − ε)µ'); provided mostly for tests.
        """
        return value * (1.0 - self.epsilon)

    def largest_at_most(self, bound: float) -> float:
        """The largest guess that does not exceed ``bound``.

        Raises :class:`InvalidParameterError` if every guess exceeds
        ``bound``.
        """
        eligible = [value for value in self._values if value <= bound]
        if not eligible:
            raise InvalidParameterError(f"no ladder value is at most {bound}")
        return eligible[-1]

    def theoretical_length_bound(self) -> int:
        """The ``O(log(Δ)/ε)`` bound on the ladder length, as a concrete integer.

        Tests compare ``len(ladder)`` against this to keep the space
        accounting honest.
        """
        return int(math.ceil(math.log(self.delta) / -math.log(1.0 - self.epsilon))) + 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GuessLadder(d_min={self.d_min:g}, d_max={self.d_max:g}, "
            f"epsilon={self.epsilon:g}, size={len(self)})"
        )
