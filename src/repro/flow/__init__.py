"""Maximum-flow substrate used by the FairFlow baseline."""

from repro.flow.network import FlowNetwork
from repro.flow.dinic import max_flow
from repro.flow.assignment import solve_cluster_assignment

__all__ = ["FlowNetwork", "max_flow", "solve_cluster_assignment"]
