"""A directed flow network with integer capacities.

Implemented from scratch (no networkx dependency in library code) as an
adjacency-list residual graph: each directed edge stores its capacity, its
current flow, and a pointer to its reverse edge, the standard representation
used by augmenting-path max-flow algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List

from repro.utils.errors import InvalidParameterError


@dataclass
class Edge:
    """One directed edge of the residual graph."""

    source: Hashable
    target: Hashable
    capacity: int
    flow: int = 0
    #: Index of the reverse edge within the adjacency list of ``target``.
    reverse_index: int = field(default=-1, repr=False)

    @property
    def residual(self) -> int:
        """Remaining capacity on this edge."""
        return self.capacity - self.flow


class FlowNetwork:
    """A directed graph with integer edge capacities supporting residual updates."""

    def __init__(self) -> None:
        self._adjacency: Dict[Hashable, List[Edge]] = {}

    def add_node(self, node: Hashable) -> None:
        """Register ``node`` (no-op if already present)."""
        self._adjacency.setdefault(node, [])

    def add_edge(self, source: Hashable, target: Hashable, capacity: int) -> None:
        """Add a directed edge with the given non-negative integer capacity.

        A reverse edge of capacity zero is added automatically so the
        residual graph is always well formed.
        """
        if capacity < 0:
            raise InvalidParameterError(f"capacity must be non-negative, got {capacity}")
        if source == target:
            raise InvalidParameterError("self-loops are not allowed in a flow network")
        self.add_node(source)
        self.add_node(target)
        forward = Edge(source=source, target=target, capacity=int(capacity))
        backward = Edge(source=target, target=source, capacity=0)
        forward.reverse_index = len(self._adjacency[target])
        backward.reverse_index = len(self._adjacency[source])
        self._adjacency[source].append(forward)
        self._adjacency[target].append(backward)

    @property
    def nodes(self) -> List[Hashable]:
        """All registered nodes."""
        return list(self._adjacency.keys())

    def edges_from(self, node: Hashable) -> List[Edge]:
        """Adjacency list of ``node`` (the live edge objects, not copies)."""
        return self._adjacency.get(node, [])

    def reverse_edge(self, edge: Edge) -> Edge:
        """The reverse residual edge paired with ``edge``."""
        return self._adjacency[edge.target][edge.reverse_index]

    def push(self, edge: Edge, amount: int) -> None:
        """Push ``amount`` units of flow along ``edge`` (updates the reverse edge)."""
        if amount < 0 or amount > edge.residual:
            raise InvalidParameterError(
                f"cannot push {amount} units along an edge with residual {edge.residual}"
            )
        edge.flow += amount
        self.reverse_edge(edge).flow -= amount

    def flow_out_of(self, node: Hashable) -> int:
        """Net flow leaving ``node`` (positive-capacity edges only)."""
        return sum(edge.flow for edge in self._adjacency.get(node, []) if edge.capacity > 0)

    def flow_into(self, node: Hashable) -> int:
        """Net flow entering ``node`` (positive-capacity edges only)."""
        total = 0
        for edges in self._adjacency.values():
            for edge in edges:
                if edge.capacity > 0 and edge.target == node:
                    total += edge.flow
        return total

    def saturated_edges(self) -> List[Edge]:
        """All original (positive-capacity) edges currently carrying flow."""
        result = []
        for edges in self._adjacency.values():
            for edge in edges:
                if edge.capacity > 0 and edge.flow > 0:
                    result.append(edge)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        num_edges = sum(
            1 for edges in self._adjacency.values() for edge in edges if edge.capacity > 0
        )
        return f"FlowNetwork(nodes={len(self._adjacency)}, edges={num_edges})"
