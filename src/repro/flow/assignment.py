"""Cluster-to-group assignment via max-flow, as used by the FairFlow baseline.

FairFlow (Moumoulidou et al., ICDT 2021) reduces "pick ``k_i`` elements from
each group such that no two picked elements share a cluster" to a maximum
flow problem on a three-layer network::

    source --(k_i)--> group i --(1)--> cluster C --(1)--> sink

where an edge from group ``i`` to cluster ``C`` exists when ``C`` contains
at least one element of group ``i``.  An integral maximum flow saturating
the source edges corresponds to a system of distinct cluster
representatives for all quotas.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Set, Tuple

from repro.flow.dinic import max_flow
from repro.flow.network import FlowNetwork


def solve_cluster_assignment(
    quotas: Mapping[int, int],
    cluster_groups: Sequence[Set[int]],
) -> Tuple[int, Dict[int, List[int]]]:
    """Assign clusters to groups respecting quotas, one cluster used at most once.

    Parameters
    ----------
    quotas:
        Mapping from group label to the number of clusters it needs.
    cluster_groups:
        ``cluster_groups[j]`` is the set of group labels present in cluster
        ``j``; the cluster can represent any one of those groups.

    Returns
    -------
    (value, assignment):
        ``value`` is the number of (group, cluster) pairs matched — it
        equals ``sum(quotas.values())`` exactly when a full fair assignment
        exists.  ``assignment`` maps each group to the list of cluster
        indices allotted to it.
    """
    source: Hashable = ("source",)
    sink: Hashable = ("sink",)
    network = FlowNetwork()
    network.add_node(source)
    network.add_node(sink)
    for group, quota in quotas.items():
        if quota > 0:
            network.add_edge(source, ("group", group), quota)
    for index, groups_in_cluster in enumerate(cluster_groups):
        relevant = [group for group in groups_in_cluster if quotas.get(group, 0) > 0]
        if not relevant:
            continue
        network.add_edge(("cluster", index), sink, 1)
        for group in relevant:
            network.add_edge(("group", group), ("cluster", index), 1)
    value = max_flow(network, source, sink)
    assignment: Dict[int, List[int]] = {group: [] for group in quotas}
    for edge in network.saturated_edges():
        if (
            isinstance(edge.source, tuple)
            and isinstance(edge.target, tuple)
            and edge.source[0] == "group"
            and edge.target[0] == "cluster"
        ):
            assignment[edge.source[1]].append(edge.target[1])
    return value, assignment
