"""Dinic's maximum-flow algorithm over :class:`repro.flow.network.FlowNetwork`.

Dinic's algorithm repeatedly builds a BFS level graph from the source and
then sends blocking flows along level-respecting paths with DFS.  For the
unit-capacity bipartite networks produced by the FairFlow baseline the
running time is ``O(E * sqrt(V))``, far more than fast enough for the sizes
appearing in the experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable

from repro.flow.network import FlowNetwork
from repro.utils.errors import InvalidParameterError


def _bfs_levels(network: FlowNetwork, source: Hashable, sink: Hashable) -> Dict[Hashable, int]:
    """Distance (in residual edges) of every reachable node from ``source``."""
    levels: Dict[Hashable, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for edge in network.edges_from(node):
            if edge.residual > 0 and edge.target not in levels:
                levels[edge.target] = levels[node] + 1
                if edge.target == sink:
                    # Continue the BFS anyway so levels stay consistent,
                    # but there is no need to expand past the sink.
                    continue
                queue.append(edge.target)
    return levels


def _blocking_flow(
    network: FlowNetwork,
    node: Hashable,
    sink: Hashable,
    limit: int,
    levels: Dict[Hashable, int],
    iterators: Dict[Hashable, int],
) -> int:
    """Send up to ``limit`` units from ``node`` to ``sink`` along level edges."""
    if node == sink:
        return limit
    total = 0
    edges = network.edges_from(node)
    while iterators[node] < len(edges):
        edge = edges[iterators[node]]
        target_level = levels.get(edge.target)
        if edge.residual > 0 and target_level == levels[node] + 1:
            pushed = _blocking_flow(
                network, edge.target, sink, min(limit - total, edge.residual), levels, iterators
            )
            if pushed > 0:
                network.push(edge, pushed)
                total += pushed
                if total == limit:
                    return total
                continue
        iterators[node] += 1
    return total


def max_flow(network: FlowNetwork, source: Hashable, sink: Hashable) -> int:
    """Compute the maximum ``source``-to-``sink`` flow value in ``network``.

    The network is modified in place: after the call the edge ``flow``
    fields describe a maximum flow, which callers (e.g. FairFlow) read back
    via :meth:`FlowNetwork.saturated_edges`.
    """
    if source == sink:
        raise InvalidParameterError("source and sink must differ")
    if source not in network.nodes or sink not in network.nodes:
        raise InvalidParameterError("source and sink must both be nodes of the network")
    total = 0
    infinite = sum(edge.capacity for edge in network.edges_from(source)) + 1
    while True:
        levels = _bfs_levels(network, source, sink)
        if sink not in levels:
            return total
        iterators = {node: 0 for node in network.nodes}
        while True:
            pushed = _blocking_flow(network, source, sink, infinite, levels, iterators)
            if pushed == 0:
                break
            total += pushed
