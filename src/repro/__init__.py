"""Streaming fair diversity maximization.

Reproduction of *"Streaming Algorithms for Diversity Maximization with
Fairness Constraints"* (Wang, Fabbri, Mathioudakis -- ICDE 2022,
arXiv:2208.00194).

The package exposes:

* the unified API layer: :func:`solve` (one call for any data shape and
  any registered algorithm), the pluggable algorithm registry
  (:func:`register_algorithm`, :func:`algorithms`), and long-lived
  streaming sessions (:func:`open_session`, :func:`resume`);
* the streaming algorithms :class:`SFDM1`, :class:`SFDM2`, and the
  unconstrained building block :class:`StreamingDiversityMaximization`;
* the offline baselines ``gmm``, ``fair_swap``, ``fair_flow``, ``fair_gmm``;
* the sharded parallel engine :class:`ParallelFDM` with its serial /
  thread / process execution backends;
* the windowing layer: window policies, lazy windowed streams, and the
  incremental sliding-window algorithm :class:`SlidingWindowFDM` (with
  the block-summary baseline :class:`CheckpointedWindowFDM`);
* the supporting substrates: metrics, streams, fairness constraints,
  matroids (with matroid intersection), max-flow, datasets, and an
  experiment harness.

Quickstart
----------
>>> import repro
>>> dataset = repro.synthetic_blobs(n=2_000, m=2, seed=7)
>>> result = repro.solve(dataset, k=10, seed=1)
>>> result.solution.is_fair
True
"""

from repro.core import (
    Candidate,
    FairSolution,
    GuessLadder,
    RunResult,
    SFDM1,
    SFDM2,
    Solution,
    StreamingDiversityMaximization,
)
from repro.baselines import (
    exact_dm,
    exact_fdm,
    fair_flow,
    fair_gmm,
    fair_swap,
    gmm,
    max_sum_greedy,
    mwu_fair,
)
from repro.datasets import (
    DatasetSpec,
    adult_surrogate,
    celeba_surrogate,
    census_surrogate,
    load_dataset,
    lyrics_surrogate,
    synthetic_blobs,
    uniform_points,
    dataset_names,
)
from repro.fairness import (
    FairnessConstraint,
    audit_fairness,
    equal_representation,
    proportional_representation,
)
from repro.metrics import (
    AngularMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MetricSpace,
    angular,
    cosine,
    euclidean,
    hamming,
    manhattan,
)
from repro.parallel import (
    ParallelFDM,
    ProcessBackend,
    SerialBackend,
    ShardPlanner,
    ThreadBackend,
)
from repro.data import ElementStore
from repro.streaming import DataStream, Element, StreamStats, iter_batches, stream_from_arrays
from repro.windowing import (
    CheckpointedWindowFDM,
    LandmarkWindowPolicy,
    SlidingWindowFDM,
    SlidingWindowPolicy,
    SlidingWindowStream,
    TumblingWindowPolicy,
    WindowPolicy,
    WindowedStream,
)
from repro.api import (
    AlgorithmInfo,
    Capabilities,
    SolveSpec,
    StreamingSession,
    WindowSession,
    algorithm_names,
    algorithms,
    get_algorithm,
    open_session,
    register_algorithm,
    resume,
    solve,
)
from repro.utils import (
    CheckpointError,
    EmptyStreamError,
    InfeasibleConstraintError,
    InvalidParameterError,
    NoFeasibleSolutionError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    # unified API layer
    "solve",
    "SolveSpec",
    "open_session",
    "resume",
    "StreamingSession",
    "WindowSession",
    "algorithms",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "AlgorithmInfo",
    "Capabilities",
    # core algorithms
    "StreamingDiversityMaximization",
    "SFDM1",
    "SFDM2",
    "GuessLadder",
    "Candidate",
    "Solution",
    "FairSolution",
    "RunResult",
    # baselines
    "gmm",
    "max_sum_greedy",
    "fair_swap",
    "fair_flow",
    "fair_gmm",
    "exact_dm",
    "exact_fdm",
    "mwu_fair",
    # datasets
    "DatasetSpec",
    "synthetic_blobs",
    "uniform_points",
    "adult_surrogate",
    "celeba_surrogate",
    "census_surrogate",
    "lyrics_surrogate",
    "load_dataset",
    "dataset_names",
    # fairness
    "FairnessConstraint",
    "equal_representation",
    "proportional_representation",
    "audit_fairness",
    # metrics
    "Metric",
    "MetricSpace",
    "EuclideanMetric",
    "ManhattanMetric",
    "AngularMetric",
    "euclidean",
    "manhattan",
    "angular",
    "cosine",
    "hamming",
    # parallel execution
    "ParallelFDM",
    "ShardPlanner",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    # windowing layer
    "SlidingWindowFDM",
    "CheckpointedWindowFDM",
    "WindowPolicy",
    "SlidingWindowPolicy",
    "TumblingWindowPolicy",
    "LandmarkWindowPolicy",
    "WindowedStream",
    "SlidingWindowStream",
    # data layer + streaming
    "Element",
    "ElementStore",
    "DataStream",
    "StreamStats",
    "iter_batches",
    "stream_from_arrays",
    # errors
    "ReproError",
    "InvalidParameterError",
    "InfeasibleConstraintError",
    "CheckpointError",
    "EmptyStreamError",
    "NoFeasibleSolutionError",
    "__version__",
]
