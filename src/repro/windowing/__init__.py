"""Sliding-window fair diversity: policies, windowed streams, and algorithms.

The paper names the sliding-window model as its primary future-work
direction: maintain a fair, diverse subset over only the most recent ``w``
elements of an unbounded stream.  This package is that model as a
first-class subsystem:

* **policies** (:mod:`repro.windowing.policy`) — the
  :class:`WindowPolicy` abstraction with count-based sliding, tumbling,
  and landmark rules;
* **streams** (:mod:`repro.windowing.stream`) — :class:`WindowedStream`
  and :class:`SlidingWindowStream`, lazy iterator adapters that report
  per-arrival expiry without materialising the source;
* **algorithms** — the incremental :class:`SlidingWindowFDM` (suffix
  checkpoints of composable per-group GMM coresets, exact element-level
  eviction) and the block-summary baseline
  :class:`CheckpointedWindowFDM` it is benchmarked against.

Both algorithms are registered in the algorithm registry (as
``"SlidingWindowFDM"`` and ``"WindowFDM"``), so ``repro.solve(...,
algorithm="sliding_window", window=w)``, ``repro.open_session(...,
window=w)``, the experiment harness, and the CLI ``--window``/``--blocks``
flags all reach them by name.
"""

from repro.windowing.checkpointed import CheckpointedWindowFDM
from repro.windowing.policy import (
    LandmarkWindowPolicy,
    SlidingWindowPolicy,
    TumblingWindowPolicy,
    WindowPolicy,
    resolve_policy,
)
from repro.windowing.sliding import APPROXIMATION_FACTOR, SlidingWindowFDM
from repro.windowing.stream import SlidingWindowStream, WindowedStream

__all__ = [
    "APPROXIMATION_FACTOR",
    "CheckpointedWindowFDM",
    "LandmarkWindowPolicy",
    "SlidingWindowFDM",
    "SlidingWindowPolicy",
    "SlidingWindowStream",
    "TumblingWindowPolicy",
    "WindowPolicy",
    "WindowedStream",
    "resolve_policy",
]
