"""The block-summary windowed baseline: :class:`CheckpointedWindowFDM`.

This is the library's original "strawman plus coreset" sliding-window
algorithm, kept as the baseline the incremental
:class:`~repro.windowing.sliding.SlidingWindowFDM` is benchmarked against.
It partitions the stream into blocks of ``window / blocks`` elements, keeps
a per-group GMM summary of every live block, and recomputes a fair solution
from the union of the live summaries on demand.  Its memory is
``O(blocks · m · k)`` summaries plus the current partial block — but
eviction happens at *block* granularity, so summaries of the oldest live
block may still contribute elements that have already expired (by up to one
block length).  The incremental algorithm fixes exactly this.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.core.coreset import gmm_coreset
from repro.data.element import Element
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.windowing.base import WindowedAlgorithm


class CheckpointedWindowFDM(WindowedAlgorithm):
    """Fair diversity maximization over a sliding window via block summaries.

    Parameters
    ----------
    metric:
        Distance metric.
    constraint:
        Fairness constraint (quotas per group); the window must be at
        least ``constraint.total_size`` elements long.
    window:
        Window length ``w`` in number of elements.
    blocks:
        Number of blocks the window is divided into; more blocks means a
        fresher summary (stale elements are dropped at block granularity)
        at the cost of proportionally more stored summaries.
    index:
        Optional spatial-index kind for the per-block GMM summaries (see
        :class:`~repro.windowing.base.WindowedAlgorithm`).
    """

    #: Registry / reporting name of this algorithm.
    name = "WindowFDM"

    def __init__(
        self,
        metric: Metric,
        constraint: FairnessConstraint,
        window: int,
        blocks: int = 8,
        index: Optional[str] = None,
    ) -> None:
        super().__init__(metric, constraint, window, blocks, index=index)
        #: Completed blocks, oldest first: (start_index, summary elements).
        self._summaries: Deque[Tuple[int, List[Element]]] = deque()
        #: Elements of the block currently being filled.
        self._current_block: List[Element] = []
        self._current_start = 0

    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element."""
        if not self._current_block:
            self._current_start = self._count
        self._current_block.append(element)
        self._count += 1
        if len(self._current_block) >= self._block_size:
            self._seal_current_block()
        self._evict_expired_blocks()

    def _seal_current_block(self) -> None:
        """Summarise the filled block (per-group GMM coreset) and store it."""
        with obs.span(
            "window.block.seal",
            start=self._current_start,
            size=len(self._current_block),
        ):
            summary = gmm_coreset(
                self._current_block,
                self.metric,
                self.constraint.total_size,
                per_group=True,
                index=self._index_kind,
            )
            self._summaries.append((self._current_start, summary))
            self._current_block = []

    def _evict_expired_blocks(self) -> None:
        """Drop block summaries that lie entirely outside the live window."""
        window_start = self.window_start
        dropped = 0
        while self._summaries:
            start, summary = self._summaries[0]
            if start + self._block_size <= window_start:
                self._summaries.popleft()
                dropped += 1
            else:
                break
        if dropped:
            obs.event(
                "window.block.retire", retired=dropped, live=len(self._summaries)
            )
            obs.count("repro.window.blocks_retired", dropped)

    # ------------------------------------------------------------------
    @property
    def stored_elements(self) -> int:
        """Number of elements currently held (summaries plus partial block)."""
        return sum(len(summary) for _, summary in self._summaries) + len(self._current_block)

    def candidate_pool(self) -> List[Element]:
        """All elements currently available for solution extraction.

        Eviction is block-granular, so the pool can include elements of the
        oldest live block that have themselves already expired (by up to
        one block length) — the incremental algorithm's pool cannot.
        """
        pool: Dict[int, Element] = {}
        for _, summary in self._summaries:
            for element in summary:
                pool.setdefault(element.uid, element)
        for element in self._current_block:
            pool.setdefault(element.uid, element)
        return list(pool.values())
