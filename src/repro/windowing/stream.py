"""Windowed stream adapters: lazy iteration with per-arrival expiry reports.

:class:`WindowedStream` wraps *any* iterable of elements — a list, a
:class:`~repro.streaming.stream.DataStream`, or an unbounded generator —
and yields ``(element, expired)`` pairs under a
:class:`~repro.windowing.policy.WindowPolicy`.  Iteration is one-pass and
lazy: the source is never materialised, so the adapter runs on infinite
streams with memory bounded by the live-window size (and O(1) memory for
non-expiring policies such as the landmark window).

:class:`SlidingWindowStream` is the count-based sliding specialisation and
keeps the historical constructor ``SlidingWindowStream(elements, window)``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional, Tuple, Union

from repro.data.element import Element
from repro.windowing.policy import SlidingWindowPolicy, WindowPolicy, resolve_policy


class WindowedStream:
    """Lazy iterator adapter that augments a stream with expiry information.

    Iterating yields ``(element, expired)`` tuples where ``expired`` lists
    the elements that just left the window, in arrival order.  The source is
    consumed one element at a time; only the currently-live elements are
    buffered (nothing at all for non-expiring policies), so unbounded
    sources work.

    Parameters
    ----------
    elements:
        The element source.  Sized sources (sequences, data streams) keep a
        working ``len``; generators iterate exactly once and have no length.
    policy:
        A :class:`~repro.windowing.policy.WindowPolicy` instance or a
        built-in policy name (with ``window`` supplying its length).
    window:
        Window length used when ``policy`` is given by name.
    """

    def __init__(
        self,
        elements: Iterable[Element],
        policy: Union[str, WindowPolicy] = "sliding",
        window: Optional[int] = None,
    ) -> None:
        self.policy = resolve_policy(policy, window)
        self._elements = elements
        try:
            self._size: Optional[int] = len(elements)  # type: ignore[arg-type]
        except TypeError:
            self._size = None

    def __iter__(self) -> Iterator[Tuple[Element, List[Element]]]:
        """Yield ``(element, expired)`` pairs, consuming the source lazily."""
        live: Deque[Element] = deque()
        buffered = self.policy.expires
        for position, element in enumerate(self._elements):
            expired: List[Element] = []
            if buffered:
                live.append(element)
                start = self.policy.live_start(position)
                # The oldest buffered element sits at stream position
                # ``position - len(live) + 1``; pop until it is live.
                while position - len(live) + 1 < start:
                    expired.append(live.popleft())
            yield element, expired

    def __len__(self) -> int:
        """Source length; raises ``TypeError`` for unsized (e.g. generator) sources."""
        if self._size is None:
            raise TypeError(
                f"{type(self).__name__} over an unsized source has no len(); "
                "iterate it instead"
            )
        return self._size

    def __bool__(self) -> bool:
        """Always truthy — truthiness must not fall back to the raising ``__len__``."""
        return True

    def __length_hint__(self) -> int:
        """Best-effort length for consumers that can use one (0 if unknown)."""
        return 0 if self._size is None else self._size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        size = "?" if self._size is None else str(self._size)
        return f"{type(self).__name__}(n={size}, policy={self.policy!r})"


class SlidingWindowStream(WindowedStream):
    """Count-based sliding-window stream: the historical adapter, now lazy.

    Yields ``(element, expired)`` where ``expired`` is the list of elements
    that just fell out of the length-``window`` suffix.  Unlike the original
    implementation, the source is *not* materialised: generators and other
    unbounded iterables are consumed one element at a time with at most
    ``window`` elements buffered.
    """

    def __init__(self, elements: Iterable[Element], window: int) -> None:
        super().__init__(elements, SlidingWindowPolicy(window))

    @property
    def window(self) -> int:
        """The window length ``w``."""
        return self.policy.window
