"""Shared scaffolding of the windowed algorithms.

:class:`WindowedAlgorithm` owns everything the checkpointed baseline and
the incremental algorithm have in common — validated window/blocks
geometry, the stream-position counter, and the extraction path (greedy
fair fill over the subclass's candidate pool) — so the two
implementations differ only in how they summarise and evict.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.postprocess import greedy_fair_fill
from repro.core.solution import FairSolution
from repro.index.tree import resolve_index_kind
from repro.data.element import Element
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import require_positive_int


class WindowedAlgorithm:
    """Base class of the windowed solvers: geometry, counters, extraction.

    Subclasses implement :meth:`process` (consume one element, advancing
    ``self._count``), :meth:`candidate_pool`, and :attr:`stored_elements`.

    Parameters
    ----------
    metric:
        Distance metric.
    constraint:
        Fairness constraint (quotas per group).  The window must be at
        least ``constraint.total_size`` elements long — a shorter window
        can never hold a fair solution, so it is rejected eagerly.
    window:
        Window length ``w`` in number of elements.
    blocks:
        Number of blocks the window is divided into (must not exceed the
        window length; subclasses may require a higher minimum).
    index:
        Optional spatial-index kind (``"kd"``/``"ball"``/``"auto"``) for
        the per-block GMM summaries and the extraction's greedy fill —
        forwarded to :func:`~repro.baselines.gmm.gmm_elements` /
        :func:`~repro.core.postprocess.greedy_fair_fill`.  Solutions are
        identical either way; only counted distance evaluations drop.
    """

    #: Registry / reporting name of the algorithm (set by subclasses).
    name = "WindowedAlgorithm"
    #: Smallest usable block count (subclasses override when the scheme
    #: degenerates below it).
    _min_blocks = 1

    def __init__(
        self,
        metric: Metric,
        constraint: FairnessConstraint,
        window: int,
        blocks: int = 8,
        index: Optional[str] = None,
    ) -> None:
        self.metric = metric
        self.index = index
        self._index_kind = resolve_index_kind(index, metric)
        self.constraint = constraint
        self.window = require_positive_int(window, "window")
        self.blocks = require_positive_int(blocks, "blocks")
        if self.blocks > self.window:
            raise InvalidParameterError("blocks must not exceed the window length")
        if self.blocks < self._min_blocks:
            raise InvalidParameterError(
                f"{self.name} needs at least {self._min_blocks} blocks, "
                f"got {self.blocks}"
            )
        if self.window < constraint.total_size:
            raise InvalidParameterError(
                f"window ({self.window}) is shorter than the constraint's total "
                f"size ({constraint.total_size}); no window can ever hold a "
                f"fair solution"
            )
        self._block_size = max(1, self.window // self.blocks)
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def elements_processed(self) -> int:
        """Total number of stream elements consumed so far."""
        return self._count

    @property
    def window_start(self) -> int:
        """First live stream position (0 until the window fills)."""
        return max(0, self._count - self.window)

    @property
    def stored_elements(self) -> int:
        """Number of distinct elements currently held (subclass-provided)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element (subclass-provided)."""
        raise NotImplementedError

    def candidate_pool(self) -> List[Element]:
        """Elements available for solution extraction (subclass-provided)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def solution(self) -> Optional[FairSolution]:
        """A fair solution over the live summaries (``None`` if infeasible).

        Extraction runs the library's greedy fair fill over the candidate
        pool; an empty or quota-infeasible pool cleanly returns ``None`` —
        it never raises.
        """
        pool = self.candidate_pool()
        if not pool:
            return None
        selection = greedy_fair_fill(
            pool, self.constraint, self.metric, index=self._index_kind
        )
        result = FairSolution(selection, self.metric, self.constraint)
        return result if result.is_fair else None

    def run(self, elements: Iterable[Element]) -> Optional[FairSolution]:
        """Convenience: process a stream lazily and return the final solution."""
        for element in elements:
            self.process(element)
        return self.solution()
