"""Incremental sliding-window fair diversity maximization.

:class:`SlidingWindowFDM` maintains a fair, diverse subset over the most
recent ``window`` elements of an (unbounded) stream — the paper's named
future-work direction — with memory far below the window size, *exact*
element-level eviction, and constant-size query pools.

The stream is cut into blocks of ``window // blocks`` elements.  Sealing a
block computes one composable per-group GMM coreset of it
(:func:`~repro.core.coreset.gmm_coreset`, riding the columnar
:class:`~repro.data.store.ElementStore` row paths when the payloads are
columnar) and folds that block summary into a single **active summary** —
an incrementally-composed coreset of every wholly-live block.  When the
window slides past a block's start, the block is *retired*: its summary is
dropped and the active summary is recomposed from the surviving block
summaries (amortised one extra reduction per block, never a recomputation
over window contents).  This replaces the query-time work of the
block-granular baseline :class:`~repro.windowing.checkpointed
.CheckpointedWindowFDM`, whose pool unions every block summary on each
query and keeps expired elements for up to a full block.

At query time the candidate pool is the active summary plus the raw
in-progress block.  Every pool element belongs to a block whose start is
at or after the window start — so **no expired element can ever appear in
a returned solution**, a property the windowing test suite pins.  The
price is coverage: retirement drops a partially-live block wholesale, so
up to ``window // blocks - 1`` of the very oldest live elements are not in
the pool (shrinking with more blocks; at least two blocks are required,
because with a single block retirement would empty the pool right after
every boundary), and the summaries are composed coresets, so the max-min
diversity of the extracted solution tracks an offline extraction over the
exact window contents within the documented :data:`APPROXIMATION_FACTOR`
envelope rather than exactly.

Memory is ``O(blocks · m · k)`` summary elements plus one raw block; the
per-element work is amortised O(1) coreset reductions per block, and
queries touch only the ``O(m · k + window/blocks)``-element pool.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Sequence

from repro import obs
from repro.core.coreset import gmm_coreset
from repro.data.element import Element
from repro.data.store import ElementStore
from repro.windowing.base import WindowedAlgorithm

#: Documented quality envelope: the windowed solution's diversity stays
#: within this factor of an offline greedy extraction over the exact live
#: window contents (same machinery, full information).  The constant
#: borrows the parallel layer's factor-3 single-level composable-coreset
#: envelope; the active summary nests reductions (coreset-of-coresets, up
#: to ``blocks`` levels between retirements), for which no single-level
#: theoretical bound carries over, so this envelope is **empirical** —
#: pinned by the windowing property tests and the windowing benchmark on
#: fixed seeds/configurations (worst observed ratio 0.53 across 80 seeded
#: configurations, well inside 1/3).
APPROXIMATION_FACTOR = 3.0


@dataclass
class _Block:
    """One sealed block: its start position and per-group GMM summary."""

    #: Stream position (0-based) of the block's first element.
    start: int
    #: Composable per-group GMM coreset of the block's elements.
    summary: List[Element] = field(default_factory=list)


class SlidingWindowFDM(WindowedAlgorithm):
    """Incremental fair diversity maximization over a count-based sliding window.

    Parameters
    ----------
    metric:
        Distance metric.
    constraint:
        Fairness constraint (quotas per group); the window must be at
        least ``constraint.total_size`` elements long.
    window:
        Window length ``w`` in number of elements.
    blocks:
        Number of blocks the window is divided into (at least 2).  More
        blocks mean finer coverage (at most ``w // blocks - 1`` of the
        oldest live elements are outside the pool) at the cost of
        proportionally more stored summaries and retirements.
    index:
        Optional spatial-index kind for the per-block GMM reductions (see
        :class:`~repro.windowing.base.WindowedAlgorithm`).
    """

    #: Registry / reporting name of this algorithm.
    name = "SlidingWindowFDM"
    #: A single block would retire — and empty the pool — right after
    #: every block boundary; two is the smallest non-degenerate count.
    _min_blocks = 2

    def __init__(
        self, metric, constraint, window, blocks: int = 8, index=None
    ) -> None:
        super().__init__(metric, constraint, window, blocks, index=index)
        #: Summaries of the wholly-live sealed blocks, oldest first.
        #: Invariant: every block starts at or after the window start, and
        #: every sealed block boundary inside the window has an entry.
        self._live_blocks: Deque[_Block] = deque()
        #: Incrementally-composed coreset of every block in ``_live_blocks``.
        self._active_summary: List[Element] = []
        #: Distinct uids across the live summaries (cached at block events
        #: so :attr:`stored_elements` stays O(1) on the per-element path).
        self._summary_uid_count = 0
        #: Raw elements of the block currently being filled.
        self._buffer: List[Element] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element (amortised block-boundary work only)."""
        self._buffer.append(element)
        self._count += 1
        if self._count % self._block_size == 0:
            self._seal_block()
        self._retire_expired_blocks()

    def _reduce(self, pool: Sequence[Element]) -> List[Element]:
        """One composable per-group GMM reduction of ``pool``.

        Routes through the columnar store kernels whenever the pool's
        payloads are columnar (store-backed streams, ``offer_rows``).
        """
        store = ElementStore.try_from_elements(pool)
        return gmm_coreset(
            pool if store is None else store,
            self.metric,
            self.constraint.total_size,
            per_group=True,
            index=self._index_kind,
        )

    def _seal_block(self) -> None:
        """Summarise the filled block and fold it into the active summary."""
        block, self._buffer = self._buffer, []
        with obs.span(
            "window.block.seal", start=self._count - len(block), size=len(block)
        ):
            summary = self._reduce(block)
            self._live_blocks.append(
                _Block(start=self._count - len(block), summary=summary)
            )
            if len(self._live_blocks) == 1:
                self._active_summary = list(summary)
            else:
                self._active_summary = self._reduce(self._active_summary + summary)
            self._recount_summaries()

    def _retire_expired_blocks(self) -> None:
        """Drop blocks whose start slipped out of the window; recompose.

        Retirement is incremental: the active summary is recomposed from
        the surviving (small) block summaries — amortised one reduction per
        block — never recomputed from window contents.  Sealed boundaries
        are ``window // blocks`` apart and the window is at least two
        blocks long, so once the window is full the oldest surviving block
        starts within one block of the window start.
        """
        window_start = self.window_start
        dropped = 0
        while self._live_blocks and self._live_blocks[0].start < window_start:
            self._live_blocks.popleft()
            dropped += 1
        if dropped:
            with obs.span(
                "window.block.retire", retired=dropped, live=len(self._live_blocks)
            ):
                pool = [e for block in self._live_blocks for e in block.summary]
                self._active_summary = self._reduce(pool) if pool else []
                self._recount_summaries()
            obs.count("repro.window.blocks_retired", dropped)

    def _recount_summaries(self) -> None:
        """Refresh the cached distinct-uid count (block-boundary events only).

        The active summary is always composed *from* the live block
        summaries, so it is a subset of the counted set and adds nothing.
        """
        self._summary_uid_count = len(
            {e.uid for block in self._live_blocks for e in block.summary}
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def coverage_start(self) -> int:
        """First stream position the current candidate pool can draw from.

        Always at least :attr:`window_start` (the eviction invariant) and,
        once the window is full, at most one block past it (the coverage
        guarantee).
        """
        if self._live_blocks:
            return self._live_blocks[0].start
        return self._count - len(self._buffer)

    @property
    def stored_elements(self) -> int:
        """Number of distinct elements currently held (summaries plus block)."""
        return self._summary_uid_count + len(self._buffer)

    def candidate_pool(self) -> List[Element]:
        """Elements available for extraction: active summary plus raw block.

        Every element arrived at or after :attr:`coverage_start`, hence
        inside the live window — the pool is expiry-free by construction.
        """
        pool = {e.uid: e for e in self._active_summary}
        for element in self._buffer:
            pool.setdefault(element.uid, element)
        return list(pool.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlidingWindowFDM(window={self.window}, blocks={self.blocks}, "
            f"processed={self._count}, stored={self.stored_elements})"
        )
