"""Window policies: which stream positions are live after each arrival.

A window policy is a pure, incremental rule mapping the current stream
position to the first *live* position — the oldest element that still
belongs to the window.  The stream adapters
(:class:`~repro.windowing.stream.WindowedStream` and friends) consume
positions through this one interface, so new window shapes plug into the
iteration machinery without touching it.  The windowed *algorithms* are a
separate, count-based-sliding-only surface: their block geometry is tied
to the sliding rule, so they take ``window``/``blocks`` directly rather
than a policy.

Three classic policies ship built in:

* :class:`SlidingWindowPolicy` — the paper's future-work model: the most
  recent ``window`` elements are live, one element expires per arrival once
  the window is full;
* :class:`TumblingWindowPolicy` — fixed-size buckets: the window covers the
  current bucket only and resets wholesale at every bucket boundary;
* :class:`LandmarkWindowPolicy` — everything since a fixed landmark
  position is live and nothing ever expires.

Policies are addressable by name (``"sliding"``, ``"tumbling"``,
``"landmark"``) through :func:`resolve_policy`.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.utils.errors import InvalidParameterError
from repro.utils.validation import require_positive_int


class WindowPolicy:
    """Base class of window policies (count-based, position-driven).

    Subclasses implement :meth:`live_start`; positions are 0-based stream
    indices, and after the element at ``position`` arrives the live window
    is exactly ``[live_start(position), position]``.
    """

    #: Short policy name used by :func:`resolve_policy` and reports.
    name = "window"

    def live_start(self, position: int) -> int:
        """First live stream index after the element at ``position`` arrived."""
        raise NotImplementedError

    @property
    def expires(self) -> bool:
        """Whether elements can ever leave the window under this policy."""
        return True

    def describe(self) -> Dict[str, object]:
        """JSON-friendly description of the policy (name plus parameters)."""
        return {"policy": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parameters = {k: v for k, v in self.describe().items() if k != "policy"}
        inner = ", ".join(f"{k}={v}" for k, v in parameters.items())
        return f"{type(self).__name__}({inner})"


class SlidingWindowPolicy(WindowPolicy):
    """Count-based sliding window: the most recent ``window`` elements are live."""

    name = "sliding"

    def __init__(self, window: int) -> None:
        self.window = require_positive_int(window, "window")

    def live_start(self, position: int) -> int:
        """``max(0, position - window + 1)`` — one expiry per arrival when full."""
        return max(0, position - self.window + 1)

    def describe(self) -> Dict[str, object]:
        """Policy name plus the window length."""
        return {"policy": self.name, "window": self.window}


class TumblingWindowPolicy(WindowPolicy):
    """Fixed buckets of ``window`` elements; the window resets at each boundary."""

    name = "tumbling"

    def __init__(self, window: int) -> None:
        self.window = require_positive_int(window, "window")

    def live_start(self, position: int) -> int:
        """Start of the bucket containing ``position`` (all prior buckets expired)."""
        return (position // self.window) * self.window

    def describe(self) -> Dict[str, object]:
        """Policy name plus the bucket length."""
        return {"policy": self.name, "window": self.window}


class LandmarkWindowPolicy(WindowPolicy):
    """Everything since a fixed landmark position is live; nothing expires."""

    name = "landmark"

    def __init__(self, landmark: int = 0) -> None:
        if landmark < 0:
            raise InvalidParameterError(
                f"landmark must be non-negative, got {landmark}"
            )
        self.landmark = int(landmark)

    def live_start(self, position: int) -> int:
        """The landmark itself (elements before it are never live)."""
        return self.landmark

    @property
    def expires(self) -> bool:
        """``False``: the landmark window only ever grows."""
        return False

    def describe(self) -> Dict[str, object]:
        """Policy name plus the landmark position."""
        return {"policy": self.name, "landmark": self.landmark}


#: Policy factories addressable by name in :func:`resolve_policy`.
_POLICY_NAMES = ("sliding", "tumbling", "landmark")


def resolve_policy(
    policy: Union[str, WindowPolicy], window: int = None
) -> WindowPolicy:
    """A :class:`WindowPolicy` from a name or an already-built instance.

    Parameters
    ----------
    policy:
        A policy instance (returned as-is; ``window`` must then be omitted
        or match) or one of the built-in names ``"sliding"``,
        ``"tumbling"``, ``"landmark"``.
    window:
        Window/bucket length for the sliding and tumbling policies, or the
        landmark position (default 0) for the landmark policy.
    """
    if isinstance(policy, WindowPolicy):
        own = getattr(policy, "window", getattr(policy, "landmark", None))
        if window is not None and own != window:
            raise InvalidParameterError(
                f"window={window} conflicts with the policy instance "
                f"{policy!r}; pass one or the other"
            )
        return policy
    name = str(policy).lower()
    if name == "sliding":
        return SlidingWindowPolicy(require_positive_int(window, "window"))
    if name == "tumbling":
        return TumblingWindowPolicy(require_positive_int(window, "window"))
    if name == "landmark":
        return LandmarkWindowPolicy(0 if window is None else window)
    raise InvalidParameterError(
        f"unknown window policy {policy!r}; built-in policies: "
        f"{', '.join(_POLICY_NAMES)}"
    )
