"""Hierarchical tracer: nested spans, point events, and a no-op fast path.

A *span* is a named, attributed interval opened with :meth:`Tracer.span`
as a context manager; spans nest per thread, and every finished span is
emitted to the configured sinks as one JSON-safe record:

``{"type": "span", "name": ..., "ts": <epoch start>, "mono": <monotonic
start>, "dur": <seconds>, "span_id": ..., "parent_id": ..., "depth": ...,
"attrs": {...}}`` — plus ``"error": <exception class name>`` when the
span body raised.  Children close before their parents, so a trace file
lists spans in completion order.  An *event* is a zero-duration record
(``"type": "event"``) attached to the enclosing span, if any.

The tracer ships disabled.  While disabled, :meth:`Tracer.span` returns a
shared no-op context manager and :meth:`Tracer.event` returns
immediately — one attribute read plus one call, cheap enough to leave
span statements in hot chunk loops (``benchmarks/bench_obs_overhead.py``
measures the cost and ``tools/perf_gate.py`` enforces it at <= 2% of the
SFDM2 ingest path).  Tracing never changes results: instrumentation only
observes, and the golden-pin and equivalence suites run every registry
algorithm traced and untraced to prove byte-identical solutions.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.sinks import JsonlSink, MemorySink, Sink, StderrSink

__all__ = ["Tracer", "resolve_sink"]

#: ``sink=`` argument accepted throughout the API: an explicit sink, the
#: string aliases ``"stderr"``/``"memory"``, or a path for a JSONL file.
SinkSpec = Union[Sink, str, "object"]

_UNSET = object()


def resolve_sink(target: Any) -> Tuple[Sink, bool]:
    """Map a user-facing sink spec to ``(sink, owned)``.

    ``owned`` is True when the tracer created the sink itself and is
    therefore responsible for closing it on replacement; sinks passed in
    as instances stay caller-owned.
    """
    if isinstance(target, Sink):
        return target, False
    if target is True or target == "stderr":
        return StderrSink(), True
    if target == "memory":
        return MemorySink(), True
    return JsonlSink(target), True


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        """Return self without recording anything."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Never suppress exceptions; nothing to close."""

    def set(self, **attrs: Any) -> None:
        """Discard attributes (disabled path)."""


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: context manager that emits one record on close."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "depth", "_ts", "_mono")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.depth = 0
        self._ts = 0.0
        self._mono = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach additional attributes discovered while the span runs."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        """Open the span: assign ids, push onto the thread's stack."""
        tracer = self._tracer
        stack = tracer._stack()
        self.span_id = next(tracer._ids)
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._ts = time.time()
        self._mono = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        """Close the span (exception-safe) and emit its record."""
        duration = time.perf_counter() - self._mono
        stack = self._tracer._stack()
        # Normal `with` usage guarantees LIFO order; tolerate a corrupted
        # stack rather than leaking frames under exotic misuse.
        while stack and stack.pop() is not self:  # pragma: no cover - misuse guard
            pass
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "ts": self._ts,
            "mono": self._mono,
            "dur": duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "attrs": self.attrs,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._tracer._emit(record)


class Tracer:
    """Thread-aware span/event recorder with pluggable sinks.

    One module-level instance (``repro.obs.get_tracer()``) serves the
    whole process; the engine layers call :meth:`span`/:meth:`event`
    unconditionally and rely on the disabled fast path being free.

    Attributes
    ----------
    enabled:
        When False (the default), :meth:`span` returns a shared no-op
        context manager and :meth:`event` is a single-branch return.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._sinks: List[Tuple[Sink, bool]] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._emit_lock = threading.Lock()

    # -- internals ----------------------------------------------------

    def _stack(self) -> List[_Span]:
        """The calling thread's stack of open spans."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _emit(self, record: Dict[str, Any]) -> None:
        """Hand one finished record to every sink (serialized)."""
        with self._emit_lock:
            for sink, _ in self._sinks:
                sink.emit(record)

    # -- recording ----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Union[_Span, _NoopSpan]:
        """A context manager timing the named interval.

        While the tracer is disabled this returns a shared no-op object;
        the call itself is the entire disabled-path cost.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration point event under the current span."""
        if not self.enabled:
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        self._emit(
            {
                "type": "event",
                "name": name,
                "ts": time.time(),
                "mono": time.perf_counter(),
                "span_id": parent.span_id if parent else None,
                "depth": len(stack),
                "attrs": attrs,
            }
        )

    def current_span(self) -> Optional[_Span]:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- configuration ------------------------------------------------

    def configure(self, sink: Any = _UNSET, *, enabled: Optional[bool] = None) -> "Tracer":
        """Install a sink and/or flip the enabled flag; returns self.

        Parameters
        ----------
        sink:
            New sole sink for the tracer — a :class:`Sink` instance,
            ``"stderr"``, ``"memory"``, or a JSONL file path.  ``None``
            removes all sinks.  Omitted entirely, the sinks are left
            untouched (so ``configure(enabled=False)`` pauses tracing
            without dropping a file sink mid-run).  Sinks the tracer
            created from a spec are closed when replaced.
        enabled:
            Explicit on/off switch.  Defaults to True when a sink is
            installed, False when sinks are removed, unchanged otherwise.
        """
        if sink is not _UNSET:
            for old, owned in self._sinks:
                if owned:
                    old.close()
            if sink is None:
                self._sinks = []
                if enabled is None:
                    enabled = False
            else:
                self._sinks = [resolve_sink(sink)]
                if enabled is None:
                    enabled = True
        if enabled is not None:
            self.enabled = bool(enabled)
        return self

    @contextmanager
    def tracing(self, target: Any = "memory") -> Iterator[Sink]:
        """Scoped tracing: install ``target``, enable, then restore.

        The previous sink list and enabled flag are reinstated on exit
        (even on exception), and a sink created from a spec is closed.
        Yields the active sink so callers can inspect
        :attr:`MemorySink.records` in-line.
        """
        prior_sinks = self._sinks
        prior_enabled = self.enabled
        active, owned = resolve_sink(target)
        self._sinks = [(active, owned)]
        self.enabled = True
        try:
            yield active
        finally:
            self.enabled = prior_enabled
            self._sinks = prior_sinks
            if owned:
                active.close()
