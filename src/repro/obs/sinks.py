"""Pluggable telemetry sinks for the :mod:`repro.obs` tracer.

A sink receives one JSON-safe ``dict`` per finished span or point event
(see :mod:`repro.obs.trace` for the record schema) and decides where it
goes.  Three implementations cover the common cases:

* :class:`MemorySink` — collects records in a list; the default choice
  for tests and for programmatic inspection of a run;
* :class:`JsonlSink` — appends one compact JSON document per line to a
  file, the interchange format consumed by ``tools/check_trace.py`` and
  :func:`repro.evaluation.reporting.load_trace`;
* :class:`StderrSink` — human-readable, depth-indented lines on stderr
  for interactive debugging (the CLI ``--trace`` flag).

Sinks must tolerate being called from multiple threads; the tracer
serializes ``emit`` calls behind its own lock, so implementations only
need to keep their own state consistent across ``emit``/``close``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

__all__ = ["Sink", "MemorySink", "JsonlSink", "StderrSink"]


class Sink:
    """Interface for trace-record consumers.

    Subclasses implement :meth:`emit`; :meth:`close` is optional and is
    called when the tracer releases a sink it owns (for example when a
    scoped :func:`repro.obs.tracing` block exits).
    """

    def emit(self, record: Dict[str, Any]) -> None:
        """Consume one finished span or event record."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources held by the sink (default: nothing)."""


class MemorySink(Sink):
    """Collect records in an in-process list (the test-friendly sink).

    Attributes
    ----------
    records:
        All records emitted so far, in completion order (children close
        before their parents, so a child span precedes its parent).
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        """Append ``record`` to :attr:`records`."""
        self.records.append(record)

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """The collected span records, optionally filtered by ``name``."""
        return [
            record
            for record in self.records
            if record.get("type") == "span" and (name is None or record.get("name") == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """The collected event records, optionally filtered by ``name``."""
        return [
            record
            for record in self.records
            if record.get("type") == "event" and (name is None or record.get("name") == name)
        ]


class JsonlSink(Sink):
    """Write one compact JSON document per record to a file.

    Parameters
    ----------
    path:
        Target file; parent directories are created on demand and any
        existing file is truncated (a trace describes one run).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = self.path.open("w", encoding="utf-8")

    def emit(self, record: Dict[str, Any]) -> None:
        """Serialize ``record`` as one JSON line (keys sorted)."""
        if self._handle is None:  # pragma: no cover - emit-after-close guard
            return
        self._handle.write(json.dumps(record, sort_keys=True, default=str))
        self._handle.write("\n")

    def close(self) -> None:
        """Flush and close the underlying file handle."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class StderrSink(Sink):
    """Render records as human-readable, depth-indented stderr lines.

    Parameters
    ----------
    stream:
        Output stream; defaults to ``sys.stderr`` (resolved at emit time
        so pytest's capture replacement is honoured).
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream

    def emit(self, record: Dict[str, Any]) -> None:
        """Print one aligned ``name dur attrs`` line."""
        stream = self._stream if self._stream is not None else sys.stderr
        indent = "  " * int(record.get("depth", 0))
        attrs = record.get("attrs") or {}
        rendered = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
        if record.get("type") == "span":
            duration_ms = float(record.get("dur", 0.0)) * 1000.0
            line = f"[repro.obs] {indent}{record.get('name')} {duration_ms:.3f}ms"
            if record.get("error"):
                line += f" error={record['error']}"
        else:
            line = f"[repro.obs] {indent}· {record.get('name')}"
        if rendered:
            line += f" {rendered}"
        print(line, file=stream)
