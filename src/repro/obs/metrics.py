"""Process-local registry of named counters, gauges, and histograms.

The registry is the aggregate side of the observability layer: while the
tracer (:mod:`repro.obs.trace`) records *where time went* inside one run,
the registry accumulates *how much work happened* across every run in the
process.  The engine feeds it at run-finalization boundaries —
:meth:`repro.streaming.stats.StreamStats.publish` after each
:meth:`StreamingAlgorithm.run`, :meth:`repro.metrics.cached.CachedMetric.stats`
for cache occupancy — alongside (never instead of) the private fields the
existing accounting tests pin.

Instruments are deliberately minimal.  Updates are plain attribute
arithmetic guarded by the tracer's enabled flag at the call sites, so the
disabled path costs one attribute read; under CPython's GIL that is also
thread-safe enough for best-effort operational metrics.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing named count.

    Parameters
    ----------
    name:
        Registry key, conventionally dot-separated (``repro.runs``).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        self.value += amount


class Gauge:
    """A named value that tracks the most recent observation.

    Parameters
    ----------
    name:
        Registry key, conventionally dot-separated.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Replace the gauge's value."""
        self.value = value


class Histogram:
    """Streaming summary (count/total/min/max/mean) of observed values.

    A full bucketed histogram is overkill for the repo's current needs;
    this keeps the four moments that the benchmarks and the serving
    milestone's p99 work can build on without unbounded memory.

    Parameters
    ----------
    name:
        Registry key, conventionally dot-separated.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: Number) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def summary(self) -> Dict[str, float]:
        """The aggregate as a JSON-safe dict (zeros when empty)."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.total / self.count,
        }


class MetricsRegistry:
    """Name-keyed store of :class:`Counter`/:class:`Gauge`/:class:`Histogram`.

    Instruments are created on first access and live for the registry's
    lifetime; asking for an existing name with a different instrument
    kind is a programming error and raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, kind: type) -> Any:
        """Fetch-or-create the instrument ``name`` of class ``kind``."""
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments as a JSON-safe ``{name: value-or-summary}`` dict."""
        out: Dict[str, Any] = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived processes)."""
        self._instruments.clear()

    def __len__(self) -> int:
        """The number of registered instruments."""
        return len(self._instruments)
