"""Observability layer: hierarchical tracing, run metrics, and logging.

``repro.obs`` is the one place the engine reports *what it is doing*:

* **Spans and events** — :func:`span`/:func:`event` record nested, timed
  intervals through a process-wide :class:`~repro.obs.trace.Tracer` into
  pluggable sinks (:class:`~repro.obs.sinks.MemorySink` for tests,
  :class:`~repro.obs.sinks.JsonlSink` files, human-readable
  :class:`~repro.obs.sinks.StderrSink`).  Tracing ships disabled and the
  disabled path is a no-op fast path cheap enough for hot chunk loops.
* **Metrics** — a process-local :class:`~repro.obs.metrics.MetricsRegistry`
  of named counters/gauges/histograms fed at run boundaries
  (:func:`count`/:func:`gauge`/:func:`observe`/:func:`gauges`, all no-ops
  while tracing is disabled).
* **Logging** — the package-level ``logging.getLogger("repro")`` with a
  ``NullHandler`` (silent by default, per library convention); engine
  layers route warning-worthy events (silent ``index="auto"``
  degradation, clamped window ``blocks``, metric-cache eviction) through
  :func:`get_logger`.

Enable tracing globally with :func:`configure`, for one scope with
:func:`tracing`, per call with ``repro.solve(..., trace=...)``, per
session with ``trace=`` on the session constructors, or from the CLI
with ``--trace``/``--trace-out``.  This package imports only the
standard library, so every engine layer can depend on it without cycles.
"""

from __future__ import annotations

import logging
from typing import Any, Mapping, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sinks import JsonlSink, MemorySink, Sink, StderrSink
from repro.obs.trace import _UNSET, Tracer, resolve_sink

__all__ = [
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "StderrSink",
    "resolve_sink",
    "get_tracer",
    "get_metrics",
    "get_logger",
    "configure",
    "tracing",
    "enabled",
    "span",
    "event",
    "count",
    "gauge",
    "observe",
    "gauges",
]

#: Package logger: silent unless the embedding application attaches a
#: handler, per the standard library-logging convention.
logger = logging.getLogger("repro")
logger.addHandler(logging.NullHandler())

_TRACER = Tracer()
_METRICS = MetricsRegistry()


def get_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _TRACER


def get_metrics() -> MetricsRegistry:
    """The process-local metrics registry."""
    return _METRICS


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` package logger, or its child ``repro.<name>``."""
    return logger if name is None else logger.getChild(name)


def enabled() -> bool:
    """Whether tracing (and metrics feeding) is currently on."""
    return _TRACER.enabled


def configure(
    sink: Any = _UNSET, *, enabled: Optional[bool] = None, reset_metrics: bool = False
) -> Tracer:
    """Configure the process-wide tracer; returns it.

    Parameters
    ----------
    sink:
        Sink spec — a :class:`Sink` instance, ``"stderr"``, ``"memory"``,
        or a JSONL file path; ``None`` removes all sinks and disables
        tracing (unless ``enabled=True`` is passed explicitly).
    enabled:
        Explicit on/off override; defaults to "on when a sink is given".
    reset_metrics:
        Also clear the process-local metrics registry.
    """
    if reset_metrics:
        _METRICS.reset()
    return _TRACER.configure(sink, enabled=enabled)


def tracing(target: Any = "memory") -> Any:
    """Scoped tracing context manager on the process-wide tracer.

    ``with repro.obs.tracing("run.jsonl"):`` traces the block into the
    file, then restores the previous sink/enabled state and closes the
    file.  Yields the active sink.
    """
    return _TRACER.tracing(target)


def span(name: str, **attrs: Any) -> Any:
    """A (possibly no-op) context manager timing the named interval."""
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point event under the current span (no-op when disabled)."""
    _TRACER.event(name, **attrs)


def count(name: str, amount: Union[int, float] = 1) -> None:
    """Increment the named registry counter (no-op when disabled)."""
    if _TRACER.enabled:
        _METRICS.counter(name).inc(amount)


def gauge(name: str, value: Union[int, float]) -> None:
    """Set the named registry gauge (no-op when disabled)."""
    if _TRACER.enabled:
        _METRICS.gauge(name).set(value)


def observe(name: str, value: Union[int, float]) -> None:
    """Fold one observation into the named histogram (no-op when disabled)."""
    if _TRACER.enabled:
        _METRICS.histogram(name).observe(value)


def gauges(prefix: str, values: Mapping[str, Any]) -> None:
    """Set ``<prefix>.<key>`` gauges for every numeric item in ``values``.

    Non-numeric values (for example the ``index_kind`` string in
    :meth:`StreamStats.as_dict`) are skipped; booleans count as numeric.
    """
    if not _TRACER.enabled:
        return
    for key, value in values.items():
        if isinstance(value, (int, float)):
            _METRICS.gauge(f"{prefix}.{key}").set(value)
