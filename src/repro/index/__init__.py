"""Spatial-index acceleration layer (:mod:`repro.index`).

Pure-NumPy KD-tree and ball-tree structures that prune provably
irrelevant distance evaluations from the library's hot screens — the
streaming candidate ladder (:class:`~repro.index.screen.IndexedScreen`),
the farthest-point greedy rounds
(:class:`~repro.index.farthest.FarthestPointIndex`), and point queries
(:class:`~repro.index.tree.SpatialIndex`).  The layer is opt-in
(``index="kd"|"ball"|"none"|"auto"`` wherever algorithms are built) and
**transparent**: indexed runs produce bit-identical solutions to the
brute-force paths while reporting fewer (never more) counted distance
evaluations.  The differential harness in
``tests/property/test_index_equivalence.py`` is the proof.

Only the leaf ``tree`` module is imported eagerly: ``screen`` depends on
:mod:`repro.core.base`, which itself imports ``tree``, so the heavier
names resolve lazily to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.index.tree import (
    INDEX_KINDS,
    LEAF_SIZE,
    PRUNE_SLACK,
    SpatialIndex,
    resolve_index_kind,
)

__all__ = [
    "INDEX_KINDS",
    "LEAF_SIZE",
    "PRUNE_SLACK",
    "SpatialIndex",
    "resolve_index_kind",
    "FarthestPointIndex",
    "IndexedScreen",
]


def __getattr__(name: str):
    """Lazy exports whose modules import back through :mod:`repro.core`."""
    if name == "IndexedScreen":
        from repro.index.screen import IndexedScreen

        return IndexedScreen
    if name == "FarthestPointIndex":
        from repro.index.farthest import FarthestPointIndex

        return FarthestPointIndex
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
