"""Indexed chunk screen for the streaming candidate ladder.

:class:`IndexedScreen` drops into the columnar ingestion loop wherever
:class:`repro.core.base._UnionScreen` is used (the ``index=`` option on a
streaming algorithm routes construction through
``StreamingAlgorithm._make_screen``).  It keeps the union layout, the
version-keyed rebuilds, and the per-level column reductions of the parent
— only the distance matrix itself changes: instead of one dense
``pairwise(chunk, union)`` kernel, a :class:`~repro.index.tree.SpatialIndex`
over the union members computes exact distances only where the guess
ladder could read them.

*Why the decisions cannot change.*  Each union member's **radius** is the
largest ``mu`` of any candidate that stores it.  The tree prunes a
``(chunk element, subtree)`` pair only when the element's lower bound to
the subtree reaches the subtree's radius maximum, so every omitted
entry's true distance is at least the ``mu`` of every level containing
its member — the ``min >= mu`` screen of each level is decided purely by
the entries that were computed, and those are evaluated by the very same
elementwise kernels as the brute matrix.  The differential suite
(``tests/property/test_index_equivalence.py``) pins this bit-for-bit.

*Why the counts can only drop.*  The brute screen charges every level's
full ``chunk × members`` cost through
:meth:`~repro.metrics.cached.CountingMetric.charge`; the indexed screen
never charges nominal work — the counter sees exactly the leaf kernels
that ran, which total at most ``chunk × union`` even with zero pruning
(the union is ~3x smaller than the per-level member sum on the SFDM
ladders) and shrink further as subtrees prune.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import _UnionScreen
from repro.core.candidate import Candidate
from repro.data.store import ElementStore
from repro.index.tree import SpatialIndex
from repro.metrics.base import Metric


class IndexedScreen(_UnionScreen):
    """A :class:`_UnionScreen` whose distance matrix is tree-pruned.

    Parameters
    ----------
    candidates:
        The not-yet-full candidates this screen serves, exactly as for the
        parent class.
    kind:
        Tree kind, ``"kd"`` or ``"ball"``.
    """

    __slots__ = ("kind", "_radii", "_tree", "_node_max")

    def __init__(self, candidates: List[Candidate], kind: str = "kd") -> None:
        super().__init__(candidates)
        self.kind = kind
        self._radii: Optional[np.ndarray] = None
        self._tree: Optional[SpatialIndex] = None
        self._node_max: Optional[np.ndarray] = None

    def _rebuild(self, store: ElementStore) -> None:
        """Recompute the union layout, per-member radii, and drop the tree.

        The tree itself is rebuilt lazily on the next
        :meth:`_screen_distances` call (which has the metric in hand);
        rebuilds only happen when some candidate accepted an element or
        reached capacity, which is rare after the warm-up chunks.
        """
        super()._rebuild(store)
        self._tree = None
        self._node_max = None
        self._radii = None
        if self._fallback or self._union_rows is None:
            return
        radii = np.zeros(self._union_rows.shape[0], dtype=float)
        for candidate, columns in zip(self.candidates, self._member_columns):
            if columns is not None:
                np.maximum.at(radii, columns, candidate.mu)
        self._radii = radii

    def _screen_distances(
        self, metric: Metric, store: ElementStore, vectors: np.ndarray
    ) -> np.ndarray:
        """Tree-pruned chunk-vs-union distances (columns in tree order).

        On the first chunk after a rebuild the tree is constructed over
        the union member features and ``_member_columns`` is permuted into
        tree order so the parent's column reductions keep lining up with
        the matrix.  Omitted entries stay ``+inf``; see the module
        docstring for why that cannot flip a screen decision.
        """
        if self._tree is None:
            self._tree = SpatialIndex(
                store.features[self._union_rows], metric, kind=self.kind
            )
            inverse = np.empty(self._union_rows.shape[0], dtype=np.intp)
            inverse[self._tree.perm] = np.arange(
                self._union_rows.shape[0], dtype=np.intp
            )
            self._member_columns = [
                None if columns is None else inverse[columns]
                for columns in self._member_columns
            ]
            self._node_max = self._tree.node_maxes(self._radii)
        return self._tree.screen_distances(vectors, self._node_max, metric)
