"""Indexed farthest-point ("GMM") rounds.

The farthest-point greedy loops (:func:`repro.baselines.gmm.gmm_elements`,
:func:`repro.core.postprocess.greedy_fair_fill`) maintain a ``nearest``
array — per pool element, the distance to its closest already-selected
center — and refresh it after each selection with one ``distances_to``
sweep over the whole pool.  :class:`FarthestPointIndex` replaces that
sweep with a pruned tree traversal: a subtree whose *lower* bound to the
new center meets or exceeds the subtree's current ``nearest`` maximum
cannot lower any entry inside it (every exact distance in the subtree is
at least the lower bound, and every entry is at most the maximum), so the
whole update is a guaranteed no-op and is skipped without a single
distance evaluation.

The entries that *are* refreshed run through the caller's (counting)
metric with the same elementwise kernels as the brute sweep, so the
``nearest`` array stays **bitwise identical** to the brute-force loop —
identical argmax tie-breaks, identical selections — on fewer or equal
charged evaluations.
"""

from __future__ import annotations

from typing import Any, List, Tuple

import numpy as np

from repro import obs
from repro.index.tree import PRUNE_SLACK, SpatialIndex
from repro.metrics.base import Metric


class FarthestPointIndex:
    """Prunes the per-round ``nearest`` refresh of a farthest-point loop.

    Parameters
    ----------
    matrix:
        ``(n, d)`` pool payload matrix, in the same row order as the
        caller's ``nearest`` array.
    metric:
        The metric of the greedy loop (wrappers welcome; geometry runs on
        the unwrapped metric).
    kind:
        Tree kind, ``"kd"`` or ``"ball"``.
    """

    __slots__ = ("tree",)

    def __init__(self, matrix: Any, metric: Metric, kind: str = "kd") -> None:
        self.tree = SpatialIndex(matrix, metric, kind=kind)

    def update(self, vector: Any, nearest: np.ndarray, metric: Metric) -> None:
        """Fold the new center ``vector`` into ``nearest``, in place.

        Equivalent to
        ``np.minimum(nearest, metric.distances_to(vector, matrix), out=nearest)``
        but skips every subtree whose lower bound certifies the minimum
        cannot change.  Exact distances at surviving leaves are charged
        through ``metric``.
        """
        tree = self.tree
        vector = np.asarray(vector, dtype=float).ravel()
        Q = vector[None, :]
        # Per-node maxima of the current nearest values (tree geometry,
        # uncharged).  Rebuilt each round: nearest only shrinks, so the
        # maxima shrink too and pruning gets stronger as rounds progress.
        node_max = tree.node_maxes(nearest)
        stack: List[int] = [0]
        starts, stops = tree._starts, tree._stops
        lefts, rights = tree._lefts, tree._rights
        pruned = 0
        leaves = 0
        while stack:
            node = stack.pop()
            lower = float(tree.lower_bounds(Q, node)[0])
            if lower * PRUNE_SLACK >= node_max[node]:
                # Every distance in the subtree is >= lower >= its current
                # nearest value: the minimum cannot move.
                pruned += 1
                continue
            if lefts[node] < 0:
                start, stop = starts[node], stops[node]
                distances = metric.distances_to(vector, tree.points[start:stop])
                rows = tree.perm[start:stop]
                nearest[rows] = np.minimum(nearest[rows], distances)
                leaves += 1
                continue
            stack.append(int(lefts[node]))
            stack.append(int(rights[node]))
        obs.event(
            "index.farthest_update",
            kind=tree.kind,
            subtrees_pruned=pruned,
            leaves_evaluated=leaves,
        )

    def seed(self, vector: Any, nearest: np.ndarray, metric: Metric) -> None:
        """Initialise ``nearest`` from the first center (full sweep).

        The first round has no incumbent distances to prune against
        (``nearest`` is all ``+inf``), so this matches the brute loop's
        full ``distances_to`` exactly — provided for symmetry so callers
        can route every refresh through the index object.
        """
        vector = np.asarray(vector, dtype=float).ravel()
        distances = metric.distances_to(vector, self.tree.points)
        rows = self.tree.perm
        nearest[rows] = np.minimum(nearest[rows], distances)
