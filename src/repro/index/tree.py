"""Pure-NumPy spatial index: KD-tree and ball-tree over a payload matrix.

One class, :class:`SpatialIndex`, implements both variants behind a
``kind`` switch — they share the distance-free median-split build (split
the widest bounding-box dimension at the median, leaf buckets of
``leaf_size`` rows) and differ only in the node lower/upper bounds:

* ``kd`` nodes bound with the metric's axis-aligned box kernels
  (:meth:`~repro.metrics.base.Metric.box_lower_bounds` /
  ``box_upper_bounds``);
* ``ball`` nodes carry a center (the bounding-box midpoint) and a covering
  radius, and bound through the triangle inequality.

**Accounting contract** (what makes the index transparent): every
element-to-element distance a query reports or decides on flows through
the *caller's* metric — pass a
:class:`~repro.metrics.cached.CountingMetric` and exactly the distances
actually evaluated are charged, never more.  Bound arithmetic (box gaps,
center distances, ball radii) runs on the **unwrapped** raw metric and is
never charged: in the paper's cost model it is geometry, not a distance
evaluation.  Because the brute-force screens charge every (query, point)
pair, an indexed query can only ever report *fewer or equal* evaluations.

**Pruning contract**: a subtree is skipped only when its lower bound
(shrunk by :data:`PRUNE_SLACK` to absorb floating-point rounding in the
bound arithmetic) already decides the query for every point inside it.
Every distance that could influence a decision is still computed exactly,
so decisions are bitwise identical to the brute-force path — the
differential test harness (``tests/property/test_index_equivalence.py``)
pins this end to end.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.metrics.base import Metric, unwrap_metric
from repro.utils.errors import InvalidParameterError

_LOGGER = obs.get_logger("index")

#: Index kinds accepted by the ``index=`` option everywhere it is plumbed.
INDEX_KINDS = ("kd", "ball", "none", "auto")

#: Conservative shrink factor applied to node lower bounds before every
#: pruning comparison.  The bound arithmetic rounds differently from the
#: distance kernels; shrinking by one part in 10^9 guarantees a subtree is
#: only pruned when every exact (floating-point) distance inside it would
#: have produced the same decision — far below the relative error of any
#: well-conditioned Minkowski norm, far above one ulp.
PRUNE_SLACK = 1.0 - 1e-9

#: Matching inflation factor for upper bounds (whole-node acceptance in
#: :meth:`SpatialIndex.range_count`): a node counts wholesale only when
#: its inflated upper bound still sits inside the range.
UPPER_SLACK = 1.0 + 1e-9

#: Default leaf bucket size (rows per leaf before the split stops).
LEAF_SIZE = 32


def resolve_index_kind(index: Optional[str], metric: Metric) -> Optional[str]:
    """Resolve an ``index=`` option value against a metric's capabilities.

    Returns the concrete tree kind (``"kd"`` or ``"ball"``) or ``None``
    for the brute-force path.  ``"auto"`` degrades to ``None`` when the
    metric lacks bound kernels (with a warning on the ``repro.index``
    logger, since the caller loses the acceleration it asked about); an
    *explicit* ``"kd"``/``"ball"`` on such a metric raises instead of
    silently changing the accounting the caller asked to observe.
    """
    if index is None or index == "none":
        return None
    if index not in ("kd", "ball", "auto"):
        raise InvalidParameterError(
            f"index must be one of {INDEX_KINDS}, got {index!r}"
        )
    base = unwrap_metric(metric)
    supported = bool(getattr(base, "supports_index", False))
    if index == "auto":
        if not supported:
            _LOGGER.warning(
                "index='auto' degraded to the brute-force kernels: metric %r "
                "has no box-bound kernels (only the Minkowski family does)",
                getattr(base, "name", base),
            )
            return None
        return "kd"
    if not supported:
        raise InvalidParameterError(
            f"index={index!r} requires a metric with box bounds "
            f"(the Minkowski family); {getattr(base, 'name', base)!r} has none"
        )
    return index


class SpatialIndex:
    """KD-tree / ball-tree over the rows of a payload matrix.

    Parameters
    ----------
    matrix:
        ``(n, d)`` float payload matrix (a store feature matrix or any
        stacked vectors).  Rows are copied into tree order once at build
        time so every leaf is a contiguous slice.
    metric:
        The metric whose geometry the tree indexes.  Wrappers are
        unwrapped; the innermost metric must advertise
        :attr:`~repro.metrics.base.Metric.supports_index`.
    kind:
        ``"kd"`` (box bounds) or ``"ball"`` (center/radius bounds).
    leaf_size:
        Split stops when a node holds at most this many rows.
    """

    __slots__ = (
        "kind",
        "points",
        "perm",
        "_base",
        "_starts",
        "_stops",
        "_lefts",
        "_rights",
        "_los",
        "_his",
        "_centers",
        "_radii",
        "_leaf_ids",
        "_leaf_starts",
    )

    def __init__(
        self,
        matrix: Any,
        metric: Metric,
        kind: str = "kd",
        leaf_size: int = LEAF_SIZE,
    ) -> None:
        if kind not in ("kd", "ball"):
            raise InvalidParameterError(f"tree kind must be 'kd' or 'ball', got {kind!r}")
        base = unwrap_metric(metric)
        if not getattr(base, "supports_index", False):
            raise InvalidParameterError(
                f"{getattr(base, 'name', base)!r} has no box bounds; "
                f"a SpatialIndex cannot be built over it"
            )
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        if matrix.shape[0] == 0:
            raise InvalidParameterError("cannot index an empty matrix")
        self.kind = kind
        self._base = base
        n = matrix.shape[0]
        perm = np.arange(n, dtype=np.int64)
        leaf_size = max(1, int(leaf_size))

        starts: List[int] = []
        stops: List[int] = []
        lefts: List[int] = []
        rights: List[int] = []
        los: List[np.ndarray] = []
        his: List[np.ndarray] = []

        # Iterative pre-order build (explicit stack, so deep trees cannot
        # hit the recursion limit).  Children are appended after their
        # parent, which is what lets the per-node aggregates in
        # :meth:`node_maxes` run as a single reversed scan.
        stack: List[Tuple[int, int, int]] = [(0, n, -1)]  # (start, stop, parent)
        while stack:
            start, stop, parent = stack.pop()
            node = len(starts)
            if parent >= 0:
                # The parent's first-filled child slot is the left child.
                if lefts[parent] < 0:
                    lefts[parent] = node
                else:
                    rights[parent] = node
            block = matrix[perm[start:stop]]
            lo = block.min(axis=0)
            hi = block.max(axis=0)
            starts.append(start)
            stops.append(stop)
            lefts.append(-1)
            rights.append(-1)
            los.append(lo)
            his.append(hi)
            if stop - start <= leaf_size:
                continue
            dim = int(np.argmax(hi - lo))
            if hi[dim] == lo[dim]:
                # All rows identical: splitting cannot separate anything.
                continue
            mid = (start + stop) // 2
            order = np.argpartition(block[:, dim], mid - start)
            perm[start:stop] = perm[start:stop][order]
            # Push right first so the left child pops (and is appended)
            # first, keeping leaves in ascending start order.
            stack.append((mid, stop, node))
            stack.append((start, mid, node))

        self.perm = perm
        self.points = np.ascontiguousarray(matrix[perm])
        self._starts = np.asarray(starts, dtype=np.int64)
        self._stops = np.asarray(stops, dtype=np.int64)
        self._lefts = np.asarray(lefts, dtype=np.int64)
        self._rights = np.asarray(rights, dtype=np.int64)
        self._los = np.asarray(los, dtype=float)
        self._his = np.asarray(his, dtype=float)
        leaf_mask = self._lefts < 0
        self._leaf_ids = np.nonzero(leaf_mask)[0]
        self._leaf_starts = self._starts[self._leaf_ids]

        if kind == "ball":
            centers = (self._los + self._his) / 2.0
            radii = np.empty(len(starts), dtype=float)
            for node in range(len(starts)):
                block = self.points[self._starts[node] : self._stops[node]]
                # Covering radius via the *raw* metric — index geometry,
                # never charged.
                radii[node] = float(base.distances_to(centers[node], block).max())
            self._centers = centers
            self._radii = radii
        else:
            self._centers = None
            self._radii = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def num_nodes(self) -> int:
        """Total number of tree nodes (internal + leaves)."""
        return int(self._starts.shape[0])

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` has no children."""
        return self._lefts[node] < 0

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def lower_bounds(self, Q: np.ndarray, node: int) -> np.ndarray:
        """Per-query lower bounds on the distance to any point in ``node``.

        Uncharged bound arithmetic on the raw metric (see the module
        docstring's accounting contract).
        """
        if self.kind == "kd":
            return self._base.box_lower_bounds(Q, self._los[node], self._his[node])
        center_distances = self._base.distances_to(self._centers[node], Q)
        return np.maximum(center_distances - self._radii[node], 0.0)

    def upper_bounds(self, Q: np.ndarray, node: int) -> np.ndarray:
        """Per-query upper bounds on the distance to any point in ``node``."""
        if self.kind == "kd":
            return self._base.box_upper_bounds(Q, self._los[node], self._his[node])
        center_distances = self._base.distances_to(self._centers[node], Q)
        return center_distances + self._radii[node]

    def node_maxes(self, values: np.ndarray) -> np.ndarray:
        """Per-node maximum of ``values`` (given in *original* row order).

        The building block of the monotone-screen pruning rules: a subtree
        whose lower bound already exceeds its value maximum cannot change
        any decision inside it.  Leaf maxima reduce in one vectorized
        ``reduceat``; internal nodes combine children in a reversed scan
        (children always follow their parent in the node arrays).
        """
        tree_values = np.asarray(values, dtype=float)[self.perm]
        maxes = np.empty(self.num_nodes, dtype=float)
        maxes[self._leaf_ids] = np.maximum.reduceat(tree_values, self._leaf_starts)
        for node in range(self.num_nodes - 1, -1, -1):
            left = self._lefts[node]
            if left >= 0:
                maxes[node] = max(maxes[left], maxes[self._rights[node]])
        return maxes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nearest(self, q: Any, metric: Optional[Metric] = None) -> Tuple[int, float]:
        """``(row, distance)`` of the indexed point nearest to ``q``.

        ``row`` indexes the original matrix.  Leaf distances flow through
        ``metric`` (pass a counting wrapper for honest accounting);
        subtrees are visited best-bound-first and pruned against the
        incumbent.
        """
        kernel = self._base if metric is None else metric
        q = np.asarray(q, dtype=float).ravel()
        best_distance = np.inf
        best_row = -1
        Q = q[None, :]
        stack: List[Tuple[float, int]] = [(float(self.lower_bounds(Q, 0)[0]), 0)]
        while stack:
            bound, node = stack.pop()
            if bound * PRUNE_SLACK >= best_distance:
                continue
            if self.is_leaf(node):
                start, stop = self._starts[node], self._stops[node]
                distances = kernel.distances_to(q, self.points[start:stop])
                position = int(np.argmin(distances))
                if distances[position] < best_distance:
                    best_distance = float(distances[position])
                    best_row = int(self.perm[start + position])
                continue
            children = [int(self._lefts[node]), int(self._rights[node])]
            bounds = [float(self.lower_bounds(Q, child)[0]) for child in children]
            # Push the farther child first so the nearer one pops first.
            for child_bound, child in sorted(zip(bounds, children), reverse=True):
                if child_bound * PRUNE_SLACK < best_distance:
                    stack.append((child_bound, child))
        return best_row, best_distance

    def range_count(self, q: Any, r: float, metric: Optional[Metric] = None) -> int:
        """Number of indexed points within distance ``r`` of ``q`` (inclusive).

        Nodes entirely outside the range are pruned without evaluating a
        single distance; nodes entirely inside count wholesale; only the
        boundary leaves compute exact distances (charged through
        ``metric``).
        """
        kernel = self._base if metric is None else metric
        q = np.asarray(q, dtype=float).ravel()
        Q = q[None, :]
        count = 0
        stack = [0]
        while stack:
            node = stack.pop()
            lower = float(self.lower_bounds(Q, node)[0])
            if lower * PRUNE_SLACK > r:
                continue
            upper = float(self.upper_bounds(Q, node)[0])
            if upper * UPPER_SLACK <= r:
                count += int(self._stops[node] - self._starts[node])
                continue
            if self.is_leaf(node):
                start, stop = self._starts[node], self._stops[node]
                distances = kernel.distances_to(q, self.points[start:stop])
                count += int((distances <= r).sum())
                continue
            stack.append(int(self._lefts[node]))
            stack.append(int(self._rights[node]))
        return count

    def min_distance_above(
        self, Q: Any, threshold: float, metric: Optional[Metric] = None
    ) -> np.ndarray:
        """Decide per query whether ``min_j d(Q[i], points[j]) >= threshold``.

        The batched screen primitive of the streaming candidates.  All
        queries traverse together with a shared active set; a query drops
        out as soon as one exact distance falls below the threshold, and a
        subtree is skipped for the queries whose lower bound already
        certifies every point inside it.
        """
        kernel = self._base if metric is None else metric
        Q = np.asarray(Q, dtype=float)
        if Q.ndim == 1:
            Q = Q.reshape(1, -1)
        ok = np.ones(Q.shape[0], dtype=bool)
        stack: List[Tuple[int, np.ndarray]] = [(0, np.arange(Q.shape[0]))]
        while stack:
            node, active = stack.pop()
            active = active[ok[active]]
            if active.size == 0:
                continue
            lower = self.lower_bounds(Q[active], node)
            active = active[lower * PRUNE_SLACK < threshold]
            if active.size == 0:
                continue
            if self.is_leaf(node):
                start, stop = self._starts[node], self._stops[node]
                distances = kernel.pairwise(Q[active], self.points[start:stop])
                ok[active[(distances < threshold).any(axis=1)]] = False
                continue
            stack.append((int(self._lefts[node]), active))
            stack.append((int(self._rights[node]), active))
        return ok

    def screen_distances(
        self, Q: np.ndarray, node_max: np.ndarray, metric: Optional[Metric] = None
    ) -> np.ndarray:
        """Exact distances wherever a per-point radius screen needs them.

        Returns a ``(len(Q), n)`` matrix whose columns follow **tree
        order** (``perm``); entries the screen provably does not need —
        queries whose lower bound to a subtree meets that subtree's
        ``node_max`` radius — stay ``+inf``.  Such an entry's true
        distance is at least the radius of its point, so any
        ``min >= radius`` decision over a column subset is unchanged by
        the omission; the computed entries are bitwise equal to the
        brute-force matrix.

        ``node_max`` is the per-node radius aggregate from
        :meth:`node_maxes` (cache it while the radii are unchanged).
        """
        kernel = self._base if metric is None else metric
        Q = np.asarray(Q, dtype=float)
        if Q.ndim == 1:
            Q = Q.reshape(1, -1)
        out = np.full((Q.shape[0], len(self)), np.inf)
        stack: List[Tuple[int, np.ndarray]] = [(0, np.arange(Q.shape[0]))]
        pruned = 0
        leaves = 0
        while stack:
            node, active = stack.pop()
            lower = self.lower_bounds(Q[active], node)
            active = active[lower * PRUNE_SLACK < node_max[node]]
            if active.size == 0:
                pruned += 1
                continue
            if self.is_leaf(node):
                start, stop = self._starts[node], self._stops[node]
                out[active[:, None], np.arange(start, stop)[None, :]] = kernel.pairwise(
                    Q[active], self.points[start:stop]
                )
                leaves += 1
                continue
            stack.append((int(self._lefts[node]), active))
            stack.append((int(self._rights[node]), active))
        obs.event(
            "index.screen",
            kind=self.kind,
            queries=int(Q.shape[0]),
            subtrees_pruned=pruned,
            leaves_evaluated=leaves,
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpatialIndex(kind={self.kind!r}, n={len(self)}, "
            f"nodes={self.num_nodes})"
        )
