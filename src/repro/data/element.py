"""The basic unit flowing through a stream: an identified, grouped point."""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np


def _coerce_payload(vector: Any) -> Any:
    """Normalise a numeric payload to a C-contiguous float64 array, once.

    The batch kernels consume payloads via ``np.asarray(..., dtype=float)``;
    coercing at ingestion means that conversion is a no-op on every kernel
    call afterwards (the no-copy regression test pins this).  Non-numeric
    payloads — categorical Hamming sequences, the scalar indices of
    ``PrecomputedMetric`` — pass through untouched, as does anything the
    caller already shaped deliberately (0-d arrays, matrices).
    """
    if isinstance(vector, (list, tuple)):
        return np.ascontiguousarray(vector, dtype=np.float64)
    if isinstance(vector, np.ndarray) and vector.ndim == 1 and vector.dtype.kind in "fiub":
        return np.ascontiguousarray(vector, dtype=np.float64)
    return vector


class Element:
    """One data point: an identifier, a feature payload, and a group label.

    Parameters
    ----------
    uid:
        A unique integer identifier.  Identity, hashing, and equality are
        all based on ``uid`` so that elements can be stored in sets and
        dictionaries without hashing the (mutable, possibly large) payload.
    vector:
        The feature payload handed to the metric.  Numeric 1-D payloads
        (lists, tuples, numeric arrays) are coerced once to C-contiguous
        float64 so the batch kernels never pay a per-call conversion; other
        payloads (categorical sequences, precomputed-matrix indices) are
        stored as given.
    group:
        The sensitive-attribute group label, an integer in ``[0, m)``.
    label:
        Optional human-readable annotation (e.g. "female/young") used only
        for reporting.

    An element may additionally be a *view* into a columnar
    :class:`~repro.data.store.ElementStore`: the ``store``/``row``
    back-pointers (set by :meth:`ElementStore.element`, ``None``/``-1``
    otherwise) let bulk consumers gather payload matrices straight from the
    store instead of re-stacking per-element vectors.  Views pickle as
    plain elements — the payload row is copied and the back-pointers are
    dropped — so shipping a few summary elements across a process boundary
    never drags the whole store along.
    """

    __slots__ = ("uid", "vector", "group", "label", "store", "row")

    def __init__(self, uid: int, vector: Any, group: int = 0, label: Optional[str] = None) -> None:
        self.uid = int(uid)
        self.vector = _coerce_payload(vector)
        self.group = int(group)
        self.label = label
        #: Back-pointer to the owning ElementStore when this element is a
        #: columnar view; ``None`` for standalone elements.
        self.store = None
        #: Row index within ``store`` (``-1`` for standalone elements).
        self.row = -1

    def __getstate__(self) -> Tuple[int, Any, int, Optional[str]]:
        # Detach from the store: pickle only this element's own payload
        # (NumPy serialises just the view's visible data), never the store.
        return (self.uid, self.vector, self.group, self.label)

    def __setstate__(self, state: Tuple[int, Any, int, Optional[str]]) -> None:
        self.uid, self.vector, self.group, self.label = state
        self.store = None
        self.row = -1

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return self.uid == other.uid

    def __lt__(self, other: "Element") -> bool:
        # Ordering by uid gives deterministic tie-breaking in sorts.
        return self.uid < other.uid

    def __repr__(self) -> str:
        label = f", label={self.label!r}" if self.label is not None else ""
        return f"Element(uid={self.uid}, group={self.group}{label})"
