"""Columnar element storage: the structure-of-arrays ``ElementStore``.

The streaming algorithms spend their wall-clock in NumPy distance kernels;
what used to surround those kernels was Python object plumbing — every
layer re-packed per-:class:`~repro.data.element.Element` payloads into
fresh arrays (one list comprehension per chunk *per guess level* during
ingestion, one re-stack per post-processing call, one pickle per element on
the way to process workers).  The :class:`ElementStore` fixes the data
layout instead: one C-contiguous float64 ``features[n, d]`` matrix plus
int64 ``groups[n]`` / ``uids[n]`` columns, so that

* contiguous row-ranges are zero-copy slices handed straight to the batch
  kernels (``store.features[a:b]`` shares memory with the store);
* group filtering is a vectorized mask over ``groups`` rather than a
  Python loop over elements;
* shipping a shard to a process worker pickles three arrays instead of
  thousands of ``Element`` objects.

``Element`` survives as a *thin view*: :meth:`ElementStore.element` returns
an ordinary :class:`~repro.data.element.Element` whose ``vector`` is a
zero-copy row view of ``features`` and whose ``store``/``row`` back-pointers
let consumers (``stack_vectors``, the ``*_idx`` metric kernels, the shard
packer) recover columnar access from an element list without copying.
Everything that accepts elements keeps working; everything hot gets to
bypass them.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.data.element import Element
from repro.utils.errors import InvalidParameterError

#: Row addressing accepted by :meth:`ElementStore.rows`: a basic slice
#: (zero-copy) or an integer index array (one vectorized gather).
RowIndexer = Union[slice, np.ndarray, Sequence[int]]


class ElementStore:
    """Columnar (structure-of-arrays) storage for a set of elements.

    Parameters
    ----------
    features:
        ``(n, d)`` feature matrix; coerced once, at construction, to a
        C-contiguous float64 array so no kernel ever pays a per-call
        conversion.  A 1-D input is treated as ``n`` one-dimensional
        payloads.
    groups:
        ``n`` integer group labels (int64 column).
    uids:
        ``n`` unique integer identifiers; defaults to ``0..n-1``.
    labels:
        Optional per-element human-readable annotations (kept as a plain
        list; labels are reporting-only and never touch a hot path).
    """

    __slots__ = ("features", "groups", "uids", "labels")

    def __init__(
        self,
        features: Any,
        groups: Any,
        uids: Optional[Any] = None,
        labels: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        features = np.ascontiguousarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.ndim != 2:
            raise InvalidParameterError(
                f"features must be a 2-D (n, d) matrix, got ndim={features.ndim}"
            )
        n = features.shape[0]
        groups = np.ascontiguousarray(groups, dtype=np.int64)
        if groups.shape != (n,):
            raise InvalidParameterError(
                f"groups must be a length-{n} vector, got shape {groups.shape}"
            )
        if uids is None:
            uids = np.arange(n, dtype=np.int64)
        else:
            uids = np.ascontiguousarray(uids, dtype=np.int64)
            if uids.shape != (n,):
                raise InvalidParameterError(
                    f"uids must be a length-{n} vector, got shape {uids.shape}"
                )
        if labels is not None:
            labels = list(labels)
            if len(labels) != n:
                raise InvalidParameterError(
                    f"labels must have length {n}, got {len(labels)}"
                )
            if not any(label is not None for label in labels):
                labels = None
        self.features = features
        self.groups = groups
        self.uids = uids
        self.labels = labels

    # ------------------------------------------------------------------
    # Construction from object-path data
    # ------------------------------------------------------------------
    @classmethod
    def from_elements(cls, elements: Sequence[Element]) -> "ElementStore":
        """Columnarise an element list (raises for non-uniform payloads).

        When every element is already a view of one parent store, the
        columns are gathered with three vectorized fancy-index operations
        instead of per-element stacking — this is how shard stores are cut
        out of a dataset store.
        """
        if not len(elements):
            return cls(np.empty((0, 1)), np.empty(0, dtype=np.int64))
        backing = store_rows_of(elements)
        if backing is not None:
            parent, rows = backing
            labels = (
                None
                if parent.labels is None
                else [parent.labels[int(i)] for i in rows]
            )
            return cls(
                parent.features[rows],
                parent.groups[rows],
                uids=parent.uids[rows],
                labels=labels,
            )
        payloads = [element.vector for element in elements]
        features = np.asarray(payloads, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.ndim != 2:
            raise InvalidParameterError(
                "element payloads are not uniformly stackable into an (n, d) matrix"
            )
        return cls(
            features,
            np.fromiter((e.group for e in elements), dtype=np.int64, count=len(elements)),
            uids=np.fromiter((e.uid for e in elements), dtype=np.int64, count=len(elements)),
            labels=[element.label for element in elements],
        )

    @classmethod
    def try_from_elements(cls, elements: Sequence[Element]) -> Optional["ElementStore"]:
        """Like :meth:`from_elements` but ``None`` for non-columnar payloads.

        Ragged, categorical (string), and scalar-index payloads (e.g. the
        :class:`~repro.metrics.matrix.PrecomputedMetric` indices) stay on
        the object path; numeric vector payloads get the columnar layout.
        """
        try:
            for element in elements:
                payload = element.vector
                if not isinstance(payload, np.ndarray) or payload.ndim != 1:
                    return None
                if payload.dtype.kind not in "fiub":
                    return None
            return cls.from_elements(elements)
        except (InvalidParameterError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Shape and addressing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def dim(self) -> int:
        """Feature dimensionality ``d``."""
        return self.features.shape[1]

    def rows(self, indexer: RowIndexer) -> np.ndarray:
        """Feature rows for ``indexer``.

        A basic slice returns a zero-copy view into ``features`` (pinned by
        the no-copy regression test); an index array performs one
        vectorized gather.
        """
        return self.features[indexer]

    def element(self, row: int) -> Element:
        """A thin :class:`Element` view of one row (zero-copy payload)."""
        row = int(row)
        view = Element(
            uid=int(self.uids[row]),
            vector=self.features[row],
            group=int(self.groups[row]),
            label=None if self.labels is None else self.labels[row],
        )
        view.store = self
        view.row = row
        return view

    def elements(self, order: Optional[Iterable[int]] = None) -> List[Element]:
        """Element views for every row (or for ``order``), as a list."""
        if order is None:
            return [self.element(row) for row in range(len(self))]
        return [self.element(int(row)) for row in order]

    def iter_elements(self, order: Optional[Iterable[int]] = None) -> Iterator[Element]:
        """Lazily yield element views in row order (or in ``order``)."""
        if order is None:
            order = range(len(self))
        for row in order:
            yield self.element(int(row))

    # ------------------------------------------------------------------
    # Derived stores
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "ElementStore":
        """Sub-store over the contiguous row-range ``[start, stop)``.

        The columns of the result are zero-copy views of this store's
        columns (basic slices share memory).
        """
        return self._wrap(slice(start, stop))

    def select(self, rows: RowIndexer) -> "ElementStore":
        """Sub-store over arbitrary rows (one vectorized gather per column)."""
        return self._wrap(np.asarray(rows, dtype=np.int64) if not isinstance(rows, slice) else rows)

    def _wrap(self, indexer: RowIndexer) -> "ElementStore":
        """Build a sub-store without re-validating the columns."""
        sub = ElementStore.__new__(ElementStore)
        sub.features = self.features[indexer]
        sub.groups = self.groups[indexer]
        sub.uids = self.uids[indexer]
        if self.labels is None:
            sub.labels = None
        elif isinstance(indexer, slice):
            sub.labels = self.labels[indexer]
        else:
            sub.labels = [self.labels[int(i)] for i in np.asarray(indexer)]
        return sub

    def group_rows(self) -> "dict[int, np.ndarray]":
        """Mapping from group label to the (ascending) rows of that group."""
        order = np.argsort(self.groups, kind="stable")
        values, starts = np.unique(self.groups[order], return_index=True)
        splits = np.split(order, starts[1:])
        return {int(value): np.sort(rows) for value, rows in zip(values, splits)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ElementStore(n={len(self)}, d={self.dim}, "
            f"groups={len(np.unique(self.groups))})"
        )


def store_rows_of(
    elements: Sequence[Element],
) -> Optional[Tuple[ElementStore, np.ndarray]]:
    """``(store, rows)`` when every element is a view of one store, else ``None``.

    This is the bridge that lets element-list APIs (post-processing, the
    offline baselines, ``stack_vectors``) recover columnar access: if the
    list came out of one :class:`ElementStore`, its payload matrix is a
    single vectorized gather ``store.features[rows]`` instead of a
    per-element re-stack.
    """
    if not len(elements):
        return None
    first = elements[0]
    store = getattr(first, "store", None)
    if store is None:
        return None
    rows = np.empty(len(elements), dtype=np.int64)
    for position, element in enumerate(elements):
        if getattr(element, "store", None) is not store:
            return None
        rows[position] = element.row
    return store, rows
