"""Columnar data layer: elements and the structure-of-arrays :class:`ElementStore`."""

from repro.data.element import Element
from repro.data.store import ElementStore, store_rows_of

__all__ = ["Element", "ElementStore", "store_rows_of"]
