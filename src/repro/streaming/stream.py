"""One-pass data streams over elements.

A :class:`DataStream` is a restartable source of :class:`Element` objects.
"Restartable" means the *experiment harness* can run several algorithms or
repetitions over the same logical dataset; each individual algorithm still
consumes the stream in a single pass and never indexes back into it.

Streams can also be consumed in *batches* (:meth:`DataStream.batches`, or
:func:`iter_batches` for arbitrary element iterables): contiguous chunks of
the same one-pass order, which the batched ingestion path of the streaming
algorithms screens with one vectorized distance computation per guess level
instead of per-element Python loops.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.store import ElementStore
from repro.data.element import Element
from repro.utils.errors import EmptyStreamError, InvalidParameterError
from repro.utils.rng import ensure_rng


def iter_batches(elements: Iterable[Element], size: int) -> Iterator[List[Element]]:
    """Yield consecutive chunks of ``elements`` with at most ``size`` items.

    Parameters
    ----------
    elements:
        Any iterable of elements (a :class:`DataStream`, a generator, ...).
        It is consumed exactly once, in order; concatenating the yielded
        chunks reproduces the original sequence.
    size:
        Maximum chunk length; must be positive (validated eagerly, at the
        call site, not on first iteration).  The final chunk may be
        shorter.  Empty inputs yield no chunks.
    """
    if size <= 0:
        raise InvalidParameterError(f"batch size must be positive, got {size}")
    return _iter_batches(elements, size)


def _iter_batches(elements: Iterable[Element], size: int) -> Iterator[List[Element]]:
    """Generator body of :func:`iter_batches` (arguments already validated)."""
    chunk: List[Element] = []
    for element in elements:
        chunk.append(element)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class DataStream:
    """A finite, restartable stream of elements with optional shuffling.

    Parameters
    ----------
    elements:
        The underlying elements in their canonical order.  Omitted when the
        stream is backed by a columnar ``store`` instead.
    shuffle_seed:
        If not ``None``, iteration yields a pseudo-random permutation of the
        elements determined by this seed — the paper averages every
        experiment over ten random permutations of each dataset.
    name:
        Optional human-readable name used in reports.
    store:
        Optional :class:`~repro.data.store.ElementStore` backing.  A
        store-backed stream iterates zero-copy element views, and the
        streaming algorithms recognise it (via :meth:`store_plan`) to
        ingest store row-ranges directly — same elements, same order, no
        per-element materialisation.  Mutually exclusive with ``elements``.
    """

    def __init__(
        self,
        elements: Optional[Sequence[Element]] = None,
        shuffle_seed: Optional[int] = None,
        name: Optional[str] = None,
        store: Optional[ElementStore] = None,
    ) -> None:
        if (store is None) == (elements is None):
            raise InvalidParameterError(
                "a DataStream takes exactly one of `elements` or `store`"
            )
        self._store = store
        self._elements: Optional[List[Element]] = None
        if store is None:
            self._elements = list(elements)
            if not self._elements:
                raise EmptyStreamError("a DataStream requires at least one element")
        elif not len(store):
            raise EmptyStreamError("a DataStream requires at least one element")
        self.shuffle_seed = shuffle_seed
        self.name = name or "stream"

    @property
    def store(self) -> Optional[ElementStore]:
        """The columnar backing of this stream, or ``None``."""
        return self._store

    def store_plan(self) -> Optional[Tuple[ElementStore, Optional[np.ndarray]]]:
        """``(store, iteration_order)`` for store-backed streams, else ``None``.

        ``iteration_order is None`` means canonical row order; otherwise it
        is the resolved shuffle permutation — exactly the element order
        ``iter(self)`` yields.
        """
        if self._store is None:
            return None
        return self._store, self._order()

    def _order(self) -> Optional[np.ndarray]:
        """The resolved iteration order (``None`` for canonical order)."""
        if self.shuffle_seed is None:
            return None
        rng = ensure_rng(self.shuffle_seed)
        return rng.permutation(len(self))

    def _canonical(self) -> List[Element]:
        """The canonical-order element list (views for store backings)."""
        if self._store is not None:
            return self._store.elements()
        return self._elements

    def __len__(self) -> int:
        if self._store is not None:
            return len(self._store)
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        order = self._order()
        if self._store is not None:
            return self._store.iter_elements(order)
        if order is None:
            return iter(list(self._elements))
        return iter([self._elements[int(i)] for i in order])

    def batches(self, size: int) -> Iterator[List[Element]]:
        """Iterate the stream in consecutive chunks of at most ``size`` elements.

        Parameters
        ----------
        size:
            Maximum chunk length; must be positive.

        The chunking respects the stream's shuffle order: concatenating the
        chunks yields exactly the sequence ``iter(self)`` would produce, so
        batch-mode consumers see the same one-pass element order as
        element-mode consumers.
        """
        return iter_batches(iter(self), size)

    def elements(self) -> List[Element]:
        """The elements in canonical (unshuffled) order, as a new list."""
        return list(self._canonical())

    def permuted(self, seed: Optional[int]) -> "DataStream":
        """A new view of the same elements with a different shuffle seed."""
        if self._store is not None:
            return DataStream(store=self._store, shuffle_seed=seed, name=self.name)
        return DataStream(self._elements, shuffle_seed=seed, name=self.name)

    def take(self, count: int) -> "DataStream":
        """A stream over the first ``count`` elements (canonical order)."""
        if count <= 0:
            raise InvalidParameterError(f"count must be positive, got {count}")
        if self._store is not None:
            return DataStream(
                store=self._store.slice(0, min(count, len(self._store))),
                shuffle_seed=self.shuffle_seed,
                name=self.name,
            )
        return DataStream(self._elements[:count], shuffle_seed=self.shuffle_seed, name=self.name)

    def groups(self) -> List[int]:
        """Sorted distinct group labels appearing in the stream."""
        if self._store is not None:
            return [int(group) for group in np.unique(self._store.groups)]
        return sorted({element.group for element in self._elements})

    def group_sizes(self) -> dict:
        """Mapping from group label to number of elements in that group."""
        if self._store is not None:
            values, counts = np.unique(self._store.groups, return_counts=True)
            return {int(value): int(count) for value, count in zip(values, counts)}
        sizes: dict = {}
        for element in self._elements:
            sizes[element.group] = sizes.get(element.group, 0) + 1
        return sizes

    def filter(self, predicate: Callable[[Element], bool]) -> "DataStream":
        """A stream over the elements satisfying ``predicate``.

        Store-backed streams stay columnar: the surviving rows are gathered
        into a sub-store with one vectorized select per column.
        """
        if self._store is not None:
            kept_rows = [
                row
                for row, element in enumerate(self._store.iter_elements())
                if predicate(element)
            ]
            if not kept_rows:
                raise EmptyStreamError("filter removed every element from the stream")
            return DataStream(
                store=self._store.select(np.asarray(kept_rows, dtype=np.int64)),
                shuffle_seed=self.shuffle_seed,
                name=self.name,
            )
        kept = [element for element in self._elements if predicate(element)]
        if not kept:
            raise EmptyStreamError("filter removed every element from the stream")
        return DataStream(kept, shuffle_seed=self.shuffle_seed, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backing = ", columnar" if self._store is not None else ""
        return (
            f"DataStream(name={self.name!r}, n={len(self)}, "
            f"groups={len(self.groups())}, shuffle_seed={self.shuffle_seed!r}{backing})"
        )


def stream_from_arrays(
    features: np.ndarray,
    groups: Iterable[int],
    name: Optional[str] = None,
    shuffle_seed: Optional[int] = None,
) -> DataStream:
    """Build a :class:`DataStream` from a feature matrix and group labels.

    Parameters
    ----------
    features:
        Array of shape ``(n, d)``; row ``i`` becomes the payload of element
        ``i``.
    groups:
        Iterable of ``n`` integer group labels.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise InvalidParameterError(
            f"features must be a 2-D array of shape (n, d), got ndim={features.ndim}"
        )
    group_list = [int(g) for g in groups]
    if len(group_list) != features.shape[0]:
        raise InvalidParameterError(
            f"got {features.shape[0]} feature rows but {len(group_list)} group labels"
        )
    store = ElementStore(features, np.asarray(group_list, dtype=np.int64))
    return DataStream(store=store, shuffle_seed=shuffle_seed, name=name)
