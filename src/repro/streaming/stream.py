"""One-pass data streams over elements.

A :class:`DataStream` is a restartable source of :class:`Element` objects.
"Restartable" means the *experiment harness* can run several algorithms or
repetitions over the same logical dataset; each individual algorithm still
consumes the stream in a single pass and never indexes back into it.

Streams can also be consumed in *batches* (:meth:`DataStream.batches`, or
:func:`iter_batches` for arbitrary element iterables): contiguous chunks of
the same one-pass order, which the batched ingestion path of the streaming
algorithms screens with one vectorized distance computation per guess level
instead of per-element Python loops.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.streaming.element import Element
from repro.utils.errors import EmptyStreamError, InvalidParameterError
from repro.utils.rng import ensure_rng


def iter_batches(elements: Iterable[Element], size: int) -> Iterator[List[Element]]:
    """Yield consecutive chunks of ``elements`` with at most ``size`` items.

    Parameters
    ----------
    elements:
        Any iterable of elements (a :class:`DataStream`, a generator, ...).
        It is consumed exactly once, in order; concatenating the yielded
        chunks reproduces the original sequence.
    size:
        Maximum chunk length; must be positive (validated eagerly, at the
        call site, not on first iteration).  The final chunk may be
        shorter.  Empty inputs yield no chunks.
    """
    if size <= 0:
        raise InvalidParameterError(f"batch size must be positive, got {size}")
    return _iter_batches(elements, size)


def _iter_batches(elements: Iterable[Element], size: int) -> Iterator[List[Element]]:
    """Generator body of :func:`iter_batches` (arguments already validated)."""
    chunk: List[Element] = []
    for element in elements:
        chunk.append(element)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class DataStream:
    """A finite, restartable stream of elements with optional shuffling.

    Parameters
    ----------
    elements:
        The underlying elements in their canonical order.
    shuffle_seed:
        If not ``None``, iteration yields a pseudo-random permutation of the
        elements determined by this seed — the paper averages every
        experiment over ten random permutations of each dataset.
    name:
        Optional human-readable name used in reports.
    """

    def __init__(
        self,
        elements: Sequence[Element],
        shuffle_seed: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        self._elements: List[Element] = list(elements)
        if not self._elements:
            raise EmptyStreamError("a DataStream requires at least one element")
        self.shuffle_seed = shuffle_seed
        self.name = name or "stream"

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Element]:
        if self.shuffle_seed is None:
            return iter(list(self._elements))
        rng = ensure_rng(self.shuffle_seed)
        order = rng.permutation(len(self._elements))
        return iter([self._elements[int(i)] for i in order])

    def batches(self, size: int) -> Iterator[List[Element]]:
        """Iterate the stream in consecutive chunks of at most ``size`` elements.

        Parameters
        ----------
        size:
            Maximum chunk length; must be positive.

        The chunking respects the stream's shuffle order: concatenating the
        chunks yields exactly the sequence ``iter(self)`` would produce, so
        batch-mode consumers see the same one-pass element order as
        element-mode consumers.
        """
        return iter_batches(iter(self), size)

    def elements(self) -> List[Element]:
        """The elements in canonical (unshuffled) order, as a new list."""
        return list(self._elements)

    def permuted(self, seed: Optional[int]) -> "DataStream":
        """A new view of the same elements with a different shuffle seed."""
        return DataStream(self._elements, shuffle_seed=seed, name=self.name)

    def take(self, count: int) -> "DataStream":
        """A stream over the first ``count`` elements (canonical order)."""
        if count <= 0:
            raise InvalidParameterError(f"count must be positive, got {count}")
        return DataStream(self._elements[:count], shuffle_seed=self.shuffle_seed, name=self.name)

    def groups(self) -> List[int]:
        """Sorted distinct group labels appearing in the stream."""
        return sorted({element.group for element in self._elements})

    def group_sizes(self) -> dict:
        """Mapping from group label to number of elements in that group."""
        sizes: dict = {}
        for element in self._elements:
            sizes[element.group] = sizes.get(element.group, 0) + 1
        return sizes

    def filter(self, predicate: Callable[[Element], bool]) -> "DataStream":
        """A stream over the elements satisfying ``predicate``."""
        kept = [element for element in self._elements if predicate(element)]
        if not kept:
            raise EmptyStreamError("filter removed every element from the stream")
        return DataStream(kept, shuffle_seed=self.shuffle_seed, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataStream(name={self.name!r}, n={len(self._elements)}, "
            f"groups={len(self.groups())}, shuffle_seed={self.shuffle_seed!r})"
        )


def stream_from_arrays(
    features: np.ndarray,
    groups: Iterable[int],
    name: Optional[str] = None,
    shuffle_seed: Optional[int] = None,
) -> DataStream:
    """Build a :class:`DataStream` from a feature matrix and group labels.

    Parameters
    ----------
    features:
        Array of shape ``(n, d)``; row ``i`` becomes the payload of element
        ``i``.
    groups:
        Iterable of ``n`` integer group labels.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise InvalidParameterError(
            f"features must be a 2-D array of shape (n, d), got ndim={features.ndim}"
        )
    group_list = [int(g) for g in groups]
    if len(group_list) != features.shape[0]:
        raise InvalidParameterError(
            f"got {features.shape[0]} feature rows but {len(group_list)} group labels"
        )
    elements = [
        Element(uid=i, vector=features[i], group=group_list[i]) for i in range(features.shape[0])
    ]
    return DataStream(elements, shuffle_seed=shuffle_seed, name=name)
