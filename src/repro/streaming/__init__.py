"""Streaming substrate: elements, one-pass data streams, and accounting."""

from repro.streaming.element import Element
from repro.streaming.stream import DataStream, iter_batches, stream_from_arrays
from repro.streaming.stats import StreamStats
from repro.streaming.window import CheckpointedWindowFDM, SlidingWindowStream

__all__ = [
    "Element",
    "DataStream",
    "iter_batches",
    "stream_from_arrays",
    "StreamStats",
    "SlidingWindowStream",
    "CheckpointedWindowFDM",
]
