"""Streaming substrate: elements, one-pass data streams, and accounting."""

from repro.data.element import Element
from repro.streaming.stream import DataStream, iter_batches, stream_from_arrays
from repro.streaming.stats import StreamStats

__all__ = [
    "Element",
    "DataStream",
    "iter_batches",
    "stream_from_arrays",
    "StreamStats",
    "SlidingWindowStream",
    "CheckpointedWindowFDM",
]

#: The windowing layer sits *above* the core algorithms in the layering (it
#: reuses the coreset and greedy-fill machinery), so importing it eagerly
#: here would close a cycle through ``repro.core`` — the names are served
#: lazily instead (PEP 562), straight from their new home in
#: :mod:`repro.windowing`, and every historical import keeps working.
_WINDOW_EXPORTS = ("SlidingWindowStream", "CheckpointedWindowFDM")


def __getattr__(name):
    """Resolve the window-layer exports on first access."""
    if name in _WINDOW_EXPORTS:
        from repro import windowing

        return getattr(windowing, name)
    raise AttributeError(f"module 'repro.streaming' has no attribute {name!r}")
