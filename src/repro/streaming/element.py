"""Deprecated alias of :mod:`repro.data.element`.

The element value object moved to the data layer when the columnar
:class:`~repro.data.store.ElementStore` was introduced — the store is the
canonical representation and elements are its thin views, so the definition
lives next to the store.  Importing :class:`Element` from this module still
works but emits a :class:`DeprecationWarning`; new code should use::

    from repro.data import Element
"""

import warnings

from repro.data.element import Element as _Element

__all__ = ["Element"]


def __getattr__(name):
    """Serve the legacy ``Element`` name with a deprecation warning (PEP 562)."""
    if name == "Element":
        warnings.warn(
            "importing Element from repro.streaming.element is deprecated; "
            "use `from repro.data import Element` instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _Element
    raise AttributeError(f"module 'repro.streaming.element' has no attribute {name!r}")
