"""Compatibility re-export: :class:`Element` now lives in the data layer.

The element value object moved to :mod:`repro.data.element` when the
columnar :class:`~repro.data.store.ElementStore` was introduced — the store
is the canonical representation and elements are its thin views, so the
definition belongs next to the store (and below the ``streaming`` package
in the import layering).  Every historical import path keeps working
through this module.
"""

from repro.data.element import Element

__all__ = ["Element"]
