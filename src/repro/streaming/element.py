"""The basic unit flowing through a stream: an identified, grouped point."""

from __future__ import annotations

from typing import Any, Optional

import numpy as np


class Element:
    """One data point: an identifier, a feature payload, and a group label.

    Parameters
    ----------
    uid:
        A unique integer identifier.  Identity, hashing, and equality are
        all based on ``uid`` so that elements can be stored in sets and
        dictionaries without hashing the (mutable, possibly large) payload.
    vector:
        The feature payload handed to the metric.  Usually a 1-D numpy
        array; stored as given (the constructor converts lists/tuples to
        arrays for convenience).
    group:
        The sensitive-attribute group label, an integer in ``[0, m)``.
    label:
        Optional human-readable annotation (e.g. "female/young") used only
        for reporting.
    """

    __slots__ = ("uid", "vector", "group", "label")

    def __init__(self, uid: int, vector: Any, group: int = 0, label: Optional[str] = None) -> None:
        self.uid = int(uid)
        if isinstance(vector, (list, tuple)):
            vector = np.asarray(vector, dtype=float)
        self.vector = vector
        self.group = int(group)
        self.label = label

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return self.uid == other.uid

    def __lt__(self, other: "Element") -> bool:
        # Ordering by uid gives deterministic tie-breaking in sorts.
        return self.uid < other.uid

    def __repr__(self) -> str:
        label = f", label={self.label!r}" if self.label is not None else ""
        return f"Element(uid={self.uid}, group={self.group}{label})"
