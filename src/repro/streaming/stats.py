"""Accounting collected while an algorithm consumes a stream.

The paper's evaluation reports three resource measures per algorithm run:
average update time, post-processing time, and the number of distinct
elements stored.  ``StreamStats`` gathers them in one value object that is
attached to every :class:`repro.core.result.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro import obs


@dataclass
class StreamStats:
    """Resource-usage counters for one algorithm run."""

    #: Number of elements consumed from the stream.
    elements_processed: int = 0
    #: Total distance evaluations performed during stream processing.
    stream_distance_computations: int = 0
    #: Total distance evaluations performed during post-processing.
    postprocess_distance_computations: int = 0
    #: Largest number of distinct elements held in memory at any point.
    peak_stored_elements: int = 0
    #: Number of distinct elements held when the run finished.
    final_stored_elements: int = 0
    #: Wall-clock seconds spent consuming the stream.
    stream_seconds: float = 0.0
    #: Wall-clock seconds spent in post-processing.
    postprocess_seconds: float = 0.0
    #: Spatial-index kind the run's screens used (``"kd"``/``"ball"``), or
    #: ``None`` for the brute-force kernels.  Informational only: indexed
    #: runs produce identical solutions, so this records *how* the distance
    #: counts above were achieved.
    index_kind: Optional[str] = None
    #: Extra named values (e.g. number of guesses, candidates balanced).
    #: Values are JSON-safe scalars — usually numbers, occasionally strings.
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Stream plus post-processing wall-clock time."""
        return self.stream_seconds + self.postprocess_seconds

    @property
    def average_update_seconds(self) -> float:
        """Stream-processing time per element (the paper's "update time")."""
        if self.elements_processed == 0:
            return 0.0
        return self.stream_seconds / self.elements_processed

    @property
    def total_distance_computations(self) -> int:
        """Distance evaluations across both phases."""
        return self.stream_distance_computations + self.postprocess_distance_computations

    def record_stored(self, count: int) -> None:
        """Update the peak/final stored-element counters with ``count``."""
        self.final_stored_elements = count
        if count > self.peak_stored_elements:
            self.peak_stored_elements = count

    def as_dict(self) -> Dict[str, Any]:
        """Flatten all counters into one JSON-serializable dictionary.

        Most values are numbers, but ``index_kind`` (when set) is a
        string — hence the ``Any`` value type.  The result always
        round-trips through ``json.dumps``.
        """
        data: Dict[str, Any] = {
            "elements_processed": self.elements_processed,
            "stream_distance_computations": self.stream_distance_computations,
            "postprocess_distance_computations": self.postprocess_distance_computations,
            "peak_stored_elements": self.peak_stored_elements,
            "final_stored_elements": self.final_stored_elements,
            "stream_seconds": self.stream_seconds,
            "postprocess_seconds": self.postprocess_seconds,
            "total_seconds": self.total_seconds,
            "average_update_seconds": self.average_update_seconds,
        }
        if self.index_kind is not None:
            data["index_kind"] = self.index_kind
        data.update(self.extra)
        return data

    def publish(self, algorithm: str) -> None:
        """Feed this run's accounting into the process-local obs registry.

        A no-op while tracing is disabled.  The registry view aggregates
        *across* runs (counters add up, histograms summarize) alongside —
        never instead of — the per-run fields above, which the accounting
        tests pin.
        """
        if not obs.enabled():
            return
        metrics = obs.get_metrics()
        metrics.counter("repro.runs").inc()
        metrics.counter(f"repro.runs.{algorithm}").inc()
        metrics.counter("repro.elements_processed").inc(self.elements_processed)
        metrics.counter("repro.distance.stream").inc(self.stream_distance_computations)
        metrics.counter("repro.distance.postprocess").inc(
            self.postprocess_distance_computations
        )
        metrics.gauge("repro.stored.final").set(self.final_stored_elements)
        metrics.gauge("repro.stored.peak").set(self.peak_stored_elements)
        metrics.histogram("repro.seconds.stream").observe(self.stream_seconds)
        metrics.histogram("repro.seconds.postprocess").observe(self.postprocess_seconds)
