"""Deprecated alias of :mod:`repro.windowing`.

The sliding-window machinery grew into a first-class subsystem — window
policies, lazy windowed streams, and the incremental
:class:`~repro.windowing.sliding.SlidingWindowFDM` — and moved to
:mod:`repro.windowing`.  Importing the historical names from this module
still works but emits a :class:`DeprecationWarning`; new code should use::

    from repro.windowing import CheckpointedWindowFDM, SlidingWindowStream
"""

import warnings

__all__ = ["SlidingWindowStream", "CheckpointedWindowFDM"]

#: Names this module served before the move to ``repro.windowing``.
_MOVED = ("SlidingWindowStream", "CheckpointedWindowFDM")


def __getattr__(name):
    """Serve the legacy window names with a deprecation warning (PEP 562)."""
    if name in _MOVED:
        warnings.warn(
            f"importing {name} from repro.streaming.window is deprecated; "
            f"use `from repro.windowing import {name}` instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro import windowing

        return getattr(windowing, name)
    raise AttributeError(f"module 'repro.streaming.window' has no attribute {name!r}")
