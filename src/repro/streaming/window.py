"""Sliding-window streams and a checkpoint-based windowed FDM wrapper.

The paper lists the sliding-window model as future work: maintain a fair,
diverse subset over only the *most recent* ``w`` elements of an infinite
stream.  This module provides

* :class:`SlidingWindowStream` — an iterator adapter that yields
  ``(element, expired_uids)`` pairs so consumers know which elements left
  the window at each step, and
* :class:`CheckpointedWindowFDM` — a simple, correct (though not
  memory-optimal) windowed algorithm: it partitions the stream into blocks
  of ``w / blocks`` elements, keeps a per-group GMM summary of every live
  block, and recomputes a fair solution from the union of the live
  summaries on demand.  Its memory is ``O(blocks · m · k)`` summaries plus
  the current partial block, far below the window size for large ``w``.

This is the natural "strawman plus coreset" baseline the future-work
direction would be evaluated against; it reuses the library's coreset and
greedy-fill machinery and is fully covered by tests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.coreset import gmm_coreset
from repro.core.postprocess import greedy_fair_fill
from repro.core.solution import FairSolution
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.base import Metric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError
from repro.utils.validation import require_positive_int


class SlidingWindowStream:
    """Adapter that augments a stream with sliding-window expiry information.

    Iterating yields ``(element, expired)`` tuples where ``expired`` is the
    list of elements that just fell out of the length-``window`` suffix.
    """

    def __init__(self, elements: Iterable[Element], window: int) -> None:
        self.window = require_positive_int(window, "window")
        self._elements = list(elements)

    def __iter__(self) -> Iterator[Tuple[Element, List[Element]]]:
        live: Deque[Element] = deque()
        for element in self._elements:
            live.append(element)
            expired: List[Element] = []
            while len(live) > self.window:
                expired.append(live.popleft())
            yield element, expired

    def __len__(self) -> int:
        return len(self._elements)


class CheckpointedWindowFDM:
    """Fair diversity maximization over a sliding window via block summaries.

    Parameters
    ----------
    metric:
        Distance metric.
    constraint:
        Fairness constraint (quotas per group).
    window:
        Window length ``w`` in number of elements.
    blocks:
        Number of blocks the window is divided into; more blocks means a
        fresher summary (stale elements are dropped at block granularity)
        at the cost of proportionally more stored summaries.
    """

    def __init__(
        self,
        metric: Metric,
        constraint: FairnessConstraint,
        window: int,
        blocks: int = 8,
    ) -> None:
        self.metric = metric
        self.constraint = constraint
        self.window = require_positive_int(window, "window")
        self.blocks = require_positive_int(blocks, "blocks")
        if self.blocks > self.window:
            raise InvalidParameterError("blocks must not exceed the window length")
        self._block_size = max(1, self.window // self.blocks)
        #: Completed blocks, oldest first: (start_index, summary elements).
        self._summaries: Deque[Tuple[int, List[Element]]] = deque()
        #: Elements of the block currently being filled.
        self._current_block: List[Element] = []
        self._current_start = 0
        self._position = 0

    # ------------------------------------------------------------------
    def process(self, element: Element) -> None:
        """Consume one stream element."""
        if not self._current_block:
            self._current_start = self._position
        self._current_block.append(element)
        self._position += 1
        if len(self._current_block) >= self._block_size:
            self._seal_current_block()
        self._evict_expired_blocks()

    def _seal_current_block(self) -> None:
        summary = gmm_coreset(
            self._current_block,
            self.metric,
            self.constraint.total_size,
            per_group=True,
        )
        self._summaries.append((self._current_start, summary))
        self._current_block = []

    def _evict_expired_blocks(self) -> None:
        window_start = self._position - self.window
        while self._summaries:
            start, summary = self._summaries[0]
            if start + self._block_size <= window_start:
                self._summaries.popleft()
            else:
                break

    # ------------------------------------------------------------------
    @property
    def stored_elements(self) -> int:
        """Number of elements currently held (summaries plus partial block)."""
        return sum(len(summary) for _, summary in self._summaries) + len(self._current_block)

    def candidate_pool(self) -> List[Element]:
        """All elements currently available for solution extraction."""
        pool: Dict[int, Element] = {}
        for _, summary in self._summaries:
            for element in summary:
                pool.setdefault(element.uid, element)
        for element in self._current_block:
            pool.setdefault(element.uid, element)
        return list(pool.values())

    def solution(self) -> Optional[FairSolution]:
        """Extract a fair solution from the live summaries (``None`` if infeasible)."""
        pool = self.candidate_pool()
        if not pool:
            return None
        selection = greedy_fair_fill(pool, self.constraint, self.metric)
        result = FairSolution(selection, self.metric, self.constraint)
        return result if result.is_fair else None

    def run(self, elements: Sequence[Element]) -> Optional[FairSolution]:
        """Convenience: process a finite sequence and return the final solution."""
        for element in elements:
            self.process(element)
        return self.solution()
