"""Benchmark suite reproducing the paper's tables and figures.

Present as a package so ``python -m pytest benchmarks/bench_<name>.py``
resolves the relative ``conftest`` imports used by every bench module.
"""
