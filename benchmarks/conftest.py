"""Shared configuration and helpers for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper.  Because
the original datasets are replaced by laptop-scale surrogates (see
DESIGN.md §2.3), the absolute numbers differ from the paper; the benches
print the same *rows/series* so the qualitative shape can be compared, and
they persist their rows as CSV files under ``benchmarks/results/``.

The instance sizes are deliberately small (a few thousand points) so the
whole suite finishes in minutes; pass larger sizes via the environment
variables ``REPRO_BENCH_N`` and ``REPRO_BENCH_REPS`` for a longer run.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

RESULTS_DIR = Path(__file__).parent / "results"

#: The shared perf-trajectory file at the repo root.  Every engine bench
#: appends its headline numbers here (under its own section key) so the
#: perf history lives in one tracked JSON; ``tools/perf_gate.py`` compares
#: a fresh smoke run against the committed copy.  Overridable so the gate
#: can write a scratch copy without touching the committed baseline.
BENCH_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_JSON", str(Path(__file__).parent.parent / "BENCH_hot_paths.json")
    )
)


def record_bench_section(section: str, payload: dict) -> None:
    """Merge ``payload`` into the shared ``BENCH_hot_paths.json`` under ``section``.

    Existing sections are preserved; the target section is replaced
    wholesale.  Keys are written sorted so diffs stay reviewable.
    """
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

#: Default number of points per surrogate dataset in benchmark runs.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "1000"))
#: Default number of stream permutations averaged per streaming measurement.
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "1"))
#: Base RNG seed for dataset generation and stream permutations.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark CSV outputs are collected."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


#: Datasets whose group skew makes small samples infeasible for equal
#: representation (the paper's Adult race groups are 85.5% / ... / 0.8%); they
#: are generated with a larger default n so every quota stays satisfiable.
N_MULTIPLIERS = {
    "adult-race": 4,
    "adult-sex+race": 4,
}


def bench_dataset(name: str, n: int = None, seed: int = None):
    """Load a registry dataset at benchmark scale."""
    from repro.datasets.registry import load_dataset

    if n is None:
        n = BENCH_N * N_MULTIPLIERS.get(name, 1)
    return load_dataset(name, n=n, seed=BENCH_SEED if seed is None else seed)


def scaled_csv_name(stem: str, scale: int, canonical: int) -> str:
    """CSV filename for a bench run at ``scale``.

    Canonical-scale runs keep the tracked filename; smaller (smoke) scales
    get a ``_smoke`` suffix, which is gitignored, so `make bench-smoke` /
    `make ci` never clobber the committed acceptance-scale rows.
    """
    return f"{stem}.csv" if scale >= canonical else f"{stem}_smoke.csv"


def print_table(rows, columns, title):
    """Print an aligned table to stdout (visible with ``pytest -s``)."""
    from repro.evaluation.reporting import format_table

    print()
    print(format_table(rows, columns=columns, title=title))
