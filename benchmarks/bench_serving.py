"""Serving-layer benchmark: load generation against a real HTTP endpoint.

Three claims of the serving PR get numbers here:

1. **Eviction identity** (always asserted, hardware-independent) — a
   session churned through evict/restore cycles answers byte-identically
   to a resident one; the deterministic offer/evict/restore counts of
   this fixed schedule are recorded so ``tools/perf_gate.py`` can re-run
   and compare them exactly.
2. **Throughput / latency** — a load generator drives ``S`` sessions
   over real HTTP (keep-alive, 16-row offers, interleaved solution
   queries): sustained offered rows/s and the p99 solution-query
   latency.
3. **Micro-batching win** — the same workload against a ``max_batch=1``
   server (every offer flushes alone, sessions get no vectorized
   ``batch_size``) vs the batched default; the ratio is the speedup the
   per-session offer queues buy.

Headline numbers land in ``BENCH_hot_paths.json`` (section ``serving``
at acceptance scale, ``serving_smoke`` below it).  Override the total
HTTP rows with ``REPRO_BENCH_SERVING_ROWS``.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro import obs
from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.reporting import write_csv
from repro.parallel.backends import usable_cpus
from repro.serving import ManagerConfig, ServerThread, ServingClient, SessionManager

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name

#: Total feature rows pushed over HTTP (override with REPRO_BENCH_SERVING_ROWS).
ROWS = int(os.environ.get("REPRO_BENCH_SERVING_ROWS", "100000"))
#: Concurrent sessions the load generator spreads the rows over.
SESSIONS = int(os.environ.get("REPRO_BENCH_SERVING_SESSIONS", "8"))
#: Rows per offer request — deliberately small so micro-batching matters.
CHUNK = 16
#: Rows between interleaved solution queries (per session).
QUERY_EVERY = 2_048
#: The unbatched comparison runs this fraction of ROWS (it is much slower).
UNBATCHED_FRACTION = 10

K = 8
M = 2

COLUMNS = ["quantity", "value"]

#: Fixed schedule of the identity part (kept tiny and deterministic).
IDENTITY_CUTS = (40, 97, 201, 240)
IDENTITY_K = 4


def _dataset_rows(n):
    dataset = synthetic_blobs(n=n, m=M, seed=BENCH_SEED)
    features = np.asarray([element.vector for element in dataset.elements], dtype=float)
    groups = np.asarray([int(element.group) for element in dataset.elements])
    return features, groups


# ----------------------------------------------------------------------
# Part 1: deterministic eviction identity
# ----------------------------------------------------------------------
def _fingerprint(result):
    return (
        list(result.solution.uids),
        result.diversity,
        result.stats.total_distance_computations,
        result.stats.elements_processed,
    )


async def _identity_run(state_dir, rows, evict):
    features, groups = rows
    manager = SessionManager(
        ManagerConfig(
            state_dir=state_dir,
            max_live=1 if evict else 64,
            max_batch=48,
            flush_ms=60_000.0,
        )
    )
    await manager.create(k=IDENTITY_K, groups=M, name="target")
    await manager.create(k=IDENTITY_K, groups=M, name="decoy")
    await manager.offer("decoy", features[:8], groups=groups[:8])
    await manager.flush("decoy")
    start = 0
    fingerprints = []
    for cut in IDENTITY_CUTS:
        await manager.offer("target", features[start:cut], groups=groups[start:cut])
        await manager.flush("target")
        fingerprints.append(_fingerprint(await manager.solution("target")))
        if evict:
            await manager.solution("decoy")  # kick the target out of the slot
        start = cut
    return fingerprints


def run_identity_check(state_dir):
    """The always-on correctness part; returns its deterministic counters."""
    rows = _dataset_rows(IDENTITY_CUTS[-1])
    metrics = obs.get_metrics()
    offered_before = metrics.counter("repro.serving.offered_rows").value
    evicted_before = metrics.counter("repro.serving.sessions.evicted").value
    restored_before = metrics.counter("repro.serving.sessions.restored").value

    churned = asyncio.run(_identity_run(state_dir / "churn", rows, evict=True))
    resident = asyncio.run(_identity_run(state_dir / "resident", rows, evict=False))
    identical = churned == resident

    return {
        "eviction_identity": bool(identical),
        "identity_offers_total": int(
            metrics.counter("repro.serving.offered_rows").value - offered_before
        ),
        "identity_evictions": int(
            metrics.counter("repro.serving.sessions.evicted").value - evicted_before
        ),
        "identity_restores": int(
            metrics.counter("repro.serving.sessions.restored").value - restored_before
        ),
    }


# ----------------------------------------------------------------------
# Part 2/3: HTTP load generation
# ----------------------------------------------------------------------
def run_load(state_dir, total_rows, max_batch, flush_ms=10.0):
    """Drive ``total_rows`` over HTTP; returns throughput/latency numbers."""
    features, groups = _dataset_rows(min(total_rows, 50_000))
    pool = len(features)
    config = ManagerConfig(
        state_dir=state_dir,
        max_live=max(2, SESSIONS // 2),  # half the tenants churn through LRU
        max_batch=max_batch,
        flush_ms=flush_ms,
        max_queue=1_000_000,  # throughput bench: never reject
    )
    histogram_before = obs.get_metrics().histogram("repro.serving.flush.rows")
    flushes_before = (histogram_before.count, histogram_before.total)
    query_latencies = []
    with ServerThread(config) as server:
        client = ServingClient("127.0.0.1", server.port)
        names = [
            client.create_session(k=K, groups=M, name=f"load{i}")
            for i in range(SESSIONS)
        ]
        sent = [0] * SESSIONS
        since_query = [0] * SESSIONS
        begin = time.perf_counter()
        index = 0
        remaining = total_rows
        while remaining > 0:
            target = index % SESSIONS
            index += 1
            take = min(CHUNK, remaining)
            lo = sent[target] % pool
            hi = min(lo + take, pool)
            client.offer(
                names[target],
                features[lo:hi],
                groups=groups[lo:hi],
            )
            sent[target] += hi - lo
            since_query[target] += hi - lo
            remaining -= hi - lo
            if since_query[target] >= QUERY_EVERY:
                since_query[target] = 0
                q0 = time.perf_counter()
                client.solution(names[target])
                query_latencies.append((time.perf_counter() - q0) * 1000.0)
        for name in names:  # final drain + one timed query per session
            q0 = time.perf_counter()
            client.solution(name)
            query_latencies.append((time.perf_counter() - q0) * 1000.0)
        elapsed = time.perf_counter() - begin
        client.close()

    histogram = obs.get_metrics().histogram("repro.serving.flush.rows")
    flush_count = histogram.count - flushes_before[0]
    flush_rows = histogram.total - flushes_before[1]
    latencies = sorted(query_latencies)
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
    return {
        "rows": total_rows,
        "seconds": elapsed,
        "offers_per_s": total_rows / max(elapsed, 1e-9),
        "p99_query_ms": p99,
        "queries": len(latencies),
        "mean_flush_rows": flush_rows / max(flush_count, 1),
    }


def test_serving_load(benchmark, results_dir, tmp_path):
    """Eviction identity + HTTP throughput/latency + micro-batching speedup."""
    assert not obs.enabled(), "bench requires the tracer to start disabled"

    def _sweep():
        identity = run_identity_check(tmp_path / "identity")
        batched = run_load(tmp_path / "batched", ROWS, max_batch=256)
        unbatched = run_load(
            tmp_path / "unbatched",
            max(ROWS // UNBATCHED_FRACTION, CHUNK),
            max_batch=1,
        )
        return identity, batched, unbatched

    identity, batched, unbatched = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    assert identity["eviction_identity"], "evict/restore changed served answers"
    speedup = batched["offers_per_s"] / max(unbatched["offers_per_s"], 1e-9)

    rows = [
        {"quantity": "sessions", "value": SESSIONS},
        {"quantity": "rows", "value": ROWS},
        {"quantity": "offers_per_s", "value": round(batched["offers_per_s"], 1)},
        {"quantity": "p99_query_ms", "value": round(batched["p99_query_ms"], 2)},
        {"quantity": "mean_flush_rows", "value": round(batched["mean_flush_rows"], 1)},
        {"quantity": "unbatched_offers_per_s", "value": round(unbatched["offers_per_s"], 1)},
        {"quantity": "batched_speedup", "value": round(speedup, 2)},
        {"quantity": "eviction_identity", "value": identity["eviction_identity"]},
        {"quantity": "identity_evictions", "value": identity["identity_evictions"]},
        {"quantity": "identity_restores", "value": identity["identity_restores"]},
    ]
    print_table(rows, COLUMNS, title=f"serving load — {SESSIONS} sessions x {ROWS} rows")
    write_csv(
        rows,
        results_dir / scaled_csv_name("serving", ROWS, 100_000),
        columns=COLUMNS,
    )
    record_bench_section(
        "serving" if ROWS >= 100_000 else "serving_smoke",
        {
            "rows": ROWS,
            "sessions": SESSIONS,
            "chunk": CHUNK,
            "k": K,
            "m": M,
            "cpus": usable_cpus(),
            "offers_per_s": round(batched["offers_per_s"], 1),
            "p99_query_ms": round(batched["p99_query_ms"], 3),
            "queries": batched["queries"],
            "mean_flush_rows": round(batched["mean_flush_rows"], 2),
            "unbatched_rows": unbatched["rows"],
            "unbatched_offers_per_s": round(unbatched["offers_per_s"], 1),
            "batched_speedup": round(speedup, 3),
            "eviction_identity": identity["eviction_identity"],
            "identity_offers_total": identity["identity_offers_total"],
            "identity_evictions": identity["identity_evictions"],
            "identity_restores": identity["identity_restores"],
        },
    )
