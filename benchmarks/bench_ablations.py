"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's tables/figures and quantify the effect of the
implementation choices the paper motivates qualitatively:

* **Warm start in Algorithm 4** — SFDM2 seeds Cunningham's matroid
  intersection with a partial solution and adds greedy, diversity-aware
  elements first.  The ablation compares the diversity of the final
  solution with and without the diversity-aware priority.
* **Post-optimization** — the library's optional same-group local-search
  refinement applied to SFDM2's output (using only the elements the
  algorithm already stores, so it stays a streaming-compatible step).
* **Coreset alternative** — the composable-coreset route
  (:func:`repro.core.coreset.coreset_fair_diversity`) as a batched
  alternative to the streaming algorithms.
"""

from __future__ import annotations

import pytest

from repro.core.coreset import coreset_fair_diversity
from repro.core.local_search import local_search_improve
from repro.core.postprocess import greedy_fair_fill
from repro.core.sfdm2 import SFDM2
from repro.core.solution import FairSolution
from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.reporting import write_csv
from repro.fairness.constraints import equal_representation

from .conftest import BENCH_SEED, print_table

K = 20
N = 2_000
M = 6

COLUMNS = ["variant", "diversity", "fair"]


def _dataset():
    return synthetic_blobs(n=N, m=M, seed=BENCH_SEED)


def _constraint(dataset):
    return equal_representation(K, dataset.group_sizes().keys())


def _run_ablation_rows():
    dataset = _dataset()
    constraint = _constraint(dataset)
    metric = dataset.metric

    sfdm2_result = SFDM2(metric, constraint, epsilon=0.1).run(dataset.stream(seed=1))

    # Variant 1: SFDM2 as shipped (greedy diversity-aware augmentation).
    rows = [
        {
            "variant": "SFDM2 (paper, greedy warm start)",
            "diversity": sfdm2_result.diversity,
            "fair": sfdm2_result.solution.is_fair,
        }
    ]

    # Variant 2: Algorithm 4 without the diversity-aware priority — elements
    # are augmented in arbitrary order (same approximation bound, lower
    # practical quality).
    plain_result = SFDM2(
        metric, constraint, epsilon=0.1, greedy_augmentation=False
    ).run(dataset.stream(seed=1))
    rows.append(
        {
            "variant": "no greedy priority (arbitrary augmentation)",
            "diversity": plain_result.diversity,
            "fair": plain_result.solution.is_fair,
        }
    )

    # Variant 3: SFDM2 + same-group local-search refinement against a small
    # reservoir of the dataset (an offline polishing step a user could run
    # after the stream ends).
    reservoir = dataset.elements[:: max(1, len(dataset.elements) // 200)]
    refined = local_search_improve(
        sfdm2_result.solution.elements,
        list(sfdm2_result.solution.elements) + list(reservoir),
        metric,
        constraint,
    )
    rows.append(
        {
            "variant": "SFDM2 + local-search refinement",
            "diversity": refined.diversity,
            "fair": refined.is_fair,
        }
    )

    # Variant 4: composable-coreset batch alternative.
    coreset_solution = coreset_fair_diversity(
        dataset.elements, metric, constraint, num_parts=8
    )
    rows.append(
        {
            "variant": "composable coreset (batch)",
            "diversity": coreset_solution.diversity,
            "fair": coreset_solution.is_fair,
        }
    )

    # Variant 5: plain greedy fair fill over the whole dataset (offline
    # strawman — what you lose by ignoring the guess-ladder machinery).
    greedy = FairSolution(
        greedy_fair_fill(dataset.elements, constraint, metric), metric, constraint
    )
    rows.append(
        {
            "variant": "offline greedy fair fill",
            "diversity": greedy.diversity,
            "fair": greedy.is_fair,
        }
    )
    return rows


def test_ablation_design_choices(benchmark, results_dir):
    """Quantify the impact of the post-processing design choices."""
    rows = benchmark.pedantic(_run_ablation_rows, rounds=1, iterations=1)
    print_table(rows, COLUMNS, title=f"Ablations — synthetic n={N}, m={M}, k={K}")
    write_csv(rows, results_dir / "ablations.csv", columns=COLUMNS)

    by_variant = {row["variant"]: row for row in rows}
    # Every variant must return a fair solution.
    assert all(row["fair"] for row in rows)
    # The shipped SFDM2 must not lose badly to the priority-free augmentation
    # (on most seeds it wins outright; allow a small tolerance for ties).
    assert (
        by_variant["SFDM2 (paper, greedy warm start)"]["diversity"]
        >= 0.9 * by_variant["no greedy priority (arbitrary augmentation)"]["diversity"]
    )
    # Local-search refinement never hurts.
    assert (
        by_variant["SFDM2 + local-search refinement"]["diversity"]
        >= by_variant["SFDM2 (paper, greedy warm start)"]["diversity"] - 1e-9
    )
