"""Figure 9 — equal representation (ER) vs proportional representation (PR).

The paper compares the diversity and running time of FairFlow, FairSwap,
SFDM1 and SFDM2 on Adult (sex, m = 2 and race, m = 5) with k = 20 under the
two quota rules.  Adult's groups are highly skewed (67% male, ~86% White),
so PR quotas sit closer to the unconstrained solution.

Expected shape: for every algorithm the PR diversity is at least the ER
diversity (slightly higher), and the streaming algorithms' post-processing
is no slower for PR than for ER.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import ExperimentConfig, default_algorithms, run_experiment
from repro.evaluation.reporting import records_to_rows, write_csv

from .conftest import BENCH_REPS, BENCH_SEED, bench_dataset, print_table

K = 20

PANELS = [
    ("adult-sex", "sex (m=2)"),
    ("adult-race", "race (m=5)"),
]

COLUMNS = ["dataset", "algorithm", "fairness", "diversity", "total_seconds"]


def _run_panel(name: str):
    dataset = bench_dataset(name)
    configs = [
        ExperimentConfig(
            dataset=dataset,
            k=K,
            epsilon=0.1,
            fairness=fairness,
            repetitions=BENCH_REPS,
            base_seed=BENCH_SEED,
        )
        for fairness in ("equal", "proportional")
    ]
    return run_experiment(configs, algorithms=default_algorithms())


@pytest.mark.parametrize("name,label", PANELS, ids=[p[0] for p in PANELS])
def test_fig9_er_vs_pr(benchmark, results_dir, name, label):
    """Regenerate one panel of Figure 9 (ER vs PR on Adult)."""
    records = benchmark.pedantic(_run_panel, args=(name,), rounds=1, iterations=1)
    rows = records_to_rows(records, columns=COLUMNS)
    print_table(rows, COLUMNS, title=f"Figure 9 — Adult {label}, k={K}")
    write_csv(rows, results_dir / f"fig9_{name}.csv", columns=COLUMNS)

    # Shape check: PR diversity >= ER diversity (with slack for randomness)
    # for the fair algorithms on this skewed dataset.
    fair_algorithms = {r.algorithm for r in records} - {"GMM"}
    for algorithm in fair_algorithms:
        er = [r.diversity for r in records if r.algorithm == algorithm and r.fairness == "equal"]
        pr = [
            r.diversity
            for r in records
            if r.algorithm == algorithm and r.fairness == "proportional"
        ]
        if er and pr:
            assert pr[0] >= 0.75 * er[0]
