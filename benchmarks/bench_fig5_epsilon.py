"""Figure 5 — effect of the parameter epsilon on SFDM1 and SFDM2 (k = 20).

The paper varies epsilon in {0.05, ..., 0.25} on Adult/CelebA/Census and in
{0.02, ..., 0.1} on Lyrics and reports diversity, running time, and the
number of stored elements for both streaming algorithms.

Expected shape: diversity is nearly flat in epsilon, while running time and
the number of stored elements drop as epsilon grows (the guess ladder has
O(log(Delta)/epsilon) rungs).
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import ExperimentConfig, run_experiment, streaming_algorithms
from repro.evaluation.reporting import records_to_rows, write_csv

from .conftest import BENCH_REPS, BENCH_SEED, bench_dataset, print_table

K = 20

#: (dataset, epsilon sweep) panels of Figure 5.
PANELS = [
    ("adult-sex", (0.05, 0.10, 0.15, 0.20, 0.25)),
    ("celeba-sex", (0.05, 0.10, 0.15, 0.20, 0.25)),
    ("census-sex", (0.05, 0.10, 0.15, 0.20, 0.25)),
    ("lyrics-genre", (0.02, 0.04, 0.06, 0.08, 0.10)),
]

COLUMNS = ["dataset", "algorithm", "epsilon", "diversity", "total_seconds", "stored_elements"]


def _run_panel(name: str, epsilons):
    dataset = bench_dataset(name)
    configs = [
        ExperimentConfig(
            dataset=dataset, k=K, epsilon=epsilon, repetitions=BENCH_REPS, base_seed=BENCH_SEED
        )
        for epsilon in epsilons
    ]
    return run_experiment(configs, algorithms=streaming_algorithms())


@pytest.mark.parametrize("name,epsilons", PANELS, ids=[p[0] for p in PANELS])
def test_fig5_epsilon_panel(benchmark, results_dir, name, epsilons):
    """Regenerate one panel of Figure 5 (one dataset, epsilon on the x-axis)."""
    records = benchmark.pedantic(_run_panel, args=(name, epsilons), rounds=1, iterations=1)
    rows = records_to_rows(records, columns=COLUMNS)
    print_table(rows, COLUMNS, title=f"Figure 5 — {name} (k={K})")
    write_csv(rows, results_dir / f"fig5_{name}.csv", columns=COLUMNS)

    # Shape check: stored elements decrease (weakly) as epsilon increases.
    for algorithm in {record.algorithm for record in records}:
        series = sorted(
            (r.epsilon, r.stored_elements) for r in records if r.algorithm == algorithm
        )
        assert series[0][1] >= series[-1][1] * 0.9
        # Diversity never collapses at the largest epsilon.
        diversities = [r.diversity for r in records if r.algorithm == algorithm]
        assert min(diversities) > 0
