"""Index-layer benchmark: spatial-index screens vs. brute-force kernels.

This is the acceptance bench for the ``repro.index`` layer (KD/ball trees
behind the candidate screens and farthest-point rounds).  It runs the two
headline paths the index accelerates, indexed and brute, on the same
stream permutation:

1. **SFDM2 batched ingest** at ``n = 100 000``: ``index="kd"`` replaces
   the union screen's charged dedup kernel with tree traversal — the
   solution must be byte-identical and the charged distance count must
   drop by at least :data:`TARGET_REDUCTION` at acceptance scale.
2. **GMM farthest-point baseline** over the full dataset: the
   :class:`~repro.index.farthest.FarthestPointIndex` prunes the
   per-round nearest-array refresh.

The claim under test is the *paper's* cost model — counted distance
evaluations — not wall-clock: the Python tree traversal usually loses
wall-clock to the fused NumPy kernels at these scales, and both times
are recorded so nobody has to guess.  Headline numbers are appended to
``BENCH_hot_paths.json`` (section ``index`` at acceptance scale,
``index_smoke`` below it); ``tools/perf_gate.py`` checks both sections.
Override the scale with ``REPRO_BENCH_INDEX_N``.
"""

from __future__ import annotations

import os
import time

from repro.baselines.gmm import gmm_elements
from repro.core.sfdm2 import SFDM2
from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.reporting import write_csv
from repro.fairness.constraints import equal_representation
from repro.metrics.cached import CountingMetric
from repro.parallel.backends import usable_cpus

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name

#: Acceptance-scale dataset size (override with REPRO_BENCH_INDEX_N).
INDEX_N = int(os.environ.get("REPRO_BENCH_INDEX_N", "100000"))
#: Chunk size for the batched SFDM2 comparison (same for both modes).
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_INDEX_BATCH", "1024"))
#: Minimum accepted brute/indexed evaluation ratio at acceptance scale.
TARGET_REDUCTION = 2.0

K = 20
M = 2
EPSILON = 0.1

COLUMNS = ["path", "mode", "n", "distance_evals", "reduction", "seconds"]


def _run_sfdm2(dataset, constraint, index):
    algorithm = SFDM2(
        metric=dataset.metric,
        constraint=constraint,
        epsilon=EPSILON,
        batch_size=BATCH_SIZE,
        index=index,
    )
    started = time.perf_counter()
    result = algorithm.run(dataset.stream(seed=BENCH_SEED))
    return result, time.perf_counter() - started


def _run_gmm(store, metric, index):
    counting = CountingMetric(metric)
    started = time.perf_counter()
    solution = gmm_elements(store, counting, K, index=index)
    return solution, counting.calls, time.perf_counter() - started


def test_index_layer(results_dir):
    """Indexed runs: identical solutions, >= 2x fewer evaluations (SFDM2)."""
    dataset = synthetic_blobs(n=INDEX_N, m=M, seed=BENCH_SEED)
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    store = dataset.columnar()
    assert store is not None, "synthetic blobs must be columnar"

    brute_result, brute_s = _run_sfdm2(dataset, constraint, index=None)
    indexed_result, indexed_s = _run_sfdm2(dataset, constraint, index="kd")

    # Identity first: the index may only change the accounting.
    assert list(indexed_result.solution.uids) == list(brute_result.solution.uids)
    assert indexed_result.solution.diversity == brute_result.solution.diversity

    brute_calls = brute_result.stats.total_distance_computations
    indexed_calls = indexed_result.stats.total_distance_computations
    sfdm2_reduction = brute_calls / max(indexed_calls, 1)

    gmm_brute, gmm_brute_calls, gmm_brute_s = _run_gmm(store, dataset.metric, None)
    gmm_indexed, gmm_indexed_calls, gmm_indexed_s = _run_gmm(store, dataset.metric, "kd")
    assert [e.uid for e in gmm_indexed] == [e.uid for e in gmm_brute]
    gmm_reduction = gmm_brute_calls / max(gmm_indexed_calls, 1)

    rows = [
        {"path": "sfdm2", "mode": "brute", "n": INDEX_N, "distance_evals": brute_calls, "reduction": 1.0, "seconds": brute_s},
        {"path": "sfdm2", "mode": "kd", "n": INDEX_N, "distance_evals": indexed_calls, "reduction": sfdm2_reduction, "seconds": indexed_s},
        {"path": "gmm", "mode": "brute", "n": INDEX_N, "distance_evals": gmm_brute_calls, "reduction": 1.0, "seconds": gmm_brute_s},
        {"path": "gmm", "mode": "kd", "n": INDEX_N, "distance_evals": gmm_indexed_calls, "reduction": gmm_reduction, "seconds": gmm_indexed_s},
    ]
    print_table(rows, COLUMNS, title=f"spatial index vs brute force — n={INDEX_N}")
    write_csv(rows, results_dir / scaled_csv_name("index", INDEX_N, 100_000), columns=COLUMNS)

    record_bench_section(
        "index" if INDEX_N >= 100_000 else "index_smoke",
        {
            "n": INDEX_N,
            "batch_size": BATCH_SIZE,
            "k": K,
            "m": M,
            "epsilon": EPSILON,
            "cpus": usable_cpus(),
            "sfdm2_brute_evals": int(brute_calls),
            "sfdm2_indexed_evals": int(indexed_calls),
            "sfdm2_reduction": round(sfdm2_reduction, 2),
            "sfdm2_brute_s": round(brute_s, 4),
            "sfdm2_indexed_s": round(indexed_s, 4),
            "gmm_brute_evals": int(gmm_brute_calls),
            "gmm_indexed_evals": int(gmm_indexed_calls),
            "gmm_reduction": round(gmm_reduction, 2),
            "gmm_brute_s": round(gmm_brute_s, 4),
            "gmm_indexed_s": round(gmm_indexed_s, 4),
        },
    )

    # The index may NEVER charge more than the brute kernels, at any scale.
    assert indexed_calls <= brute_calls
    assert gmm_indexed_calls <= gmm_brute_calls
    if INDEX_N >= 100_000:
        assert sfdm2_reduction >= TARGET_REDUCTION, (
            f"SFDM2 indexed reduction {sfdm2_reduction:.2f}x below the "
            f"{TARGET_REDUCTION:g}x acceptance bar"
        )
    print(
        f"\nsfdm2 reduction: {sfdm2_reduction:.2f}x, gmm reduction: "
        f"{gmm_reduction:.2f}x (target >= {TARGET_REDUCTION:g}x at n >= 100000)"
    )
