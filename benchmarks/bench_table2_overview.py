"""Table II — overview of all algorithms on all datasets (k = 20).

The paper's Table II reports, for every dataset/group setting with k = 20:
the diversity and running time of GMM, FairSwap, FairFlow, SFDM1 and SFDM2,
plus the number of elements stored by the streaming algorithms.  This bench
regenerates those rows on the surrogate datasets.

Expected shape (see EXPERIMENTS.md): GMM's unconstrained diversity upper-
bounds the fair ones; SFDM1/SFDM2 match FairSwap's quality at m = 2 and
SFDM2 clearly beats FairFlow for m > 2; the streaming algorithms store a
small fraction of the dataset while the offline ones hold all of it.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import ExperimentConfig, default_algorithms, run_experiment
from repro.evaluation.reporting import records_to_rows, write_csv

from .conftest import BENCH_REPS, BENCH_SEED, bench_dataset, print_table

#: The dataset/group settings of Table II (paper ordering), with the epsilon
#: used by the paper for each dataset.
TABLE2_SETTINGS = [
    ("adult-sex", 0.1),
    ("adult-race", 0.1),
    ("adult-sex+race", 0.1),
    ("celeba-sex", 0.1),
    ("celeba-age", 0.1),
    ("celeba-sex+age", 0.1),
    ("census-sex", 0.1),
    ("census-age", 0.1),
    ("census-sex+age", 0.1),
    ("lyrics-genre", 0.05),
]

K = 20

COLUMNS = [
    "dataset",
    "m",
    "algorithm",
    "diversity",
    "total_seconds",
    "postprocess_seconds",
    "stored_elements",
]


def _run_setting(name: str, epsilon: float):
    dataset = bench_dataset(name)
    config = ExperimentConfig(
        dataset=dataset,
        k=K,
        epsilon=epsilon,
        repetitions=BENCH_REPS,
        base_seed=BENCH_SEED,
    )
    return run_experiment([config], algorithms=default_algorithms())


@pytest.mark.parametrize("name,epsilon", TABLE2_SETTINGS, ids=[s[0] for s in TABLE2_SETTINGS])
def test_table2_row(benchmark, results_dir, name, epsilon):
    """Regenerate one row-group of Table II (one dataset/group setting)."""
    records = benchmark.pedantic(_run_setting, args=(name, epsilon), rounds=1, iterations=1)
    rows = records_to_rows(records, columns=COLUMNS)
    print_table(rows, COLUMNS, title=f"Table II — {name} (k={K}, epsilon={epsilon})")
    write_csv(rows, results_dir / f"table2_{name}.csv", columns=COLUMNS)

    by_name = {record.algorithm: record for record in records}
    # Structural checks on the paper's qualitative findings.
    assert all(record.diversity > 0 for record in records), "an algorithm failed on this setting"
    assert 2.0 * by_name["GMM"].diversity >= by_name["SFDM2"].diversity - 1e-9
    for algorithm in ("SFDM1", "SFDM2"):
        if algorithm in by_name:
            assert by_name[algorithm].stored_elements < bench_dataset(name).size
    if "FairFlow" in by_name and "SFDM2" in by_name and by_name["SFDM2"].m > 2:
        assert by_name["SFDM2"].diversity >= by_name["FairFlow"].diversity * 0.8
