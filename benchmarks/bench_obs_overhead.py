"""Observability overhead benchmark: the disabled path must be free.

The tracing statements live inside the engine's hot loops (the SFDM2
chunk ingest, the guess-ladder post-processing, the index traversals), so
the repository's perf story depends on the *disabled* fast path costing
nothing measurable.  This bench quantifies that claim three ways:

1. **Disabled ingest wall-clock** — a store-backed SFDM2 run with the
   tracer off (the default), best of two, as the denominator.
2. **Instrumentation call count** — the same run traced into a
   :class:`~repro.obs.MemorySink`; every span/event record whose start
   falls inside the ``ingest`` span is one tracer call the disabled path
   also executes (as a no-op).
3. **No-op unit cost** — a microbenchmark of the disabled
   ``with obs.span(...)`` statement.

The headline number is ``disabled_overhead_pct = calls x unit_cost /
ingest_seconds`` — the share of the ingest wall-clock the disabled
instrumentation can account for — and must stay <= 2%.  The bench also
re-proves that tracing never changes results: the traced and untraced
runs must return byte-identical solutions and equal distance counts.

Headline numbers land in ``BENCH_hot_paths.json`` (section
``obs_overhead`` at acceptance scale, ``obs_overhead_smoke`` below it)
for ``tools/perf_gate.py``.  Override the scale with
``REPRO_BENCH_OBS_N``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import obs
from repro.core.sfdm2 import SFDM2
from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.reporting import write_csv
from repro.fairness.constraints import equal_representation
from repro.parallel.backends import usable_cpus

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name

#: Acceptance-scale dataset size (override with REPRO_BENCH_OBS_N).
OBS_N = int(os.environ.get("REPRO_BENCH_OBS_N", "100000"))
#: Chunk size for the batched ingest (matches the hot-paths bench).
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_OBS_BATCH", "1024"))
#: Iterations of the disabled no-op span microbenchmark.
NOOP_CALLS = 200_000
#: Acceptance bar: disabled instrumentation may account for at most this
#: share of the SFDM2 ingest wall-clock.
MAX_DISABLED_OVERHEAD_PCT = 2.0

K = 20
M = 2
EPSILON = 0.1

COLUMNS = ["quantity", "value"]


def _run(dataset, constraint):
    """One store-backed SFDM2 run on the bench's fixed stream permutation."""
    algorithm = SFDM2(
        metric=dataset.metric,
        constraint=constraint,
        epsilon=EPSILON,
        batch_size=BATCH_SIZE,
    )
    return algorithm.run(dataset.stream(seed=BENCH_SEED))


def _noop_span_cost() -> float:
    """Seconds per disabled ``with obs.span(...)`` statement."""
    assert not obs.enabled()
    start = time.perf_counter()
    for _ in range(NOOP_CALLS):
        with obs.span("ingest.chunk", size=0):
            pass
    return (time.perf_counter() - start) / NOOP_CALLS


def test_obs_overhead(benchmark, results_dir):
    """Disabled-path tracing overhead <= 2% of SFDM2 ingest; identical results."""
    dataset = synthetic_blobs(n=OBS_N, m=M, seed=BENCH_SEED)
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    assert not obs.enabled(), "bench requires the tracer to start disabled"

    def _sweep():
        # Warm pass so allocator/code-path warm-up stays out of the timing.
        warm = synthetic_blobs(n=max(2048, OBS_N // 50), m=M, seed=BENCH_SEED)
        warm_constraint = equal_representation(K, list(warm.group_sizes().keys()))
        _run(warm, warm_constraint)

        disabled_runs = [_run(dataset, constraint) for _ in range(2)]
        with obs.tracing("memory") as sink:
            traced = _run(dataset, constraint)
        noop_cost = _noop_span_cost()
        return disabled_runs, traced, list(sink.records), noop_cost

    disabled_runs, traced, records, noop_cost = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    untraced = min(disabled_runs, key=lambda r: r.stats.stream_seconds)
    ingest_disabled_s = untraced.stats.stream_seconds

    # Tracing must never perturb results: byte-identical solution, equal
    # distance accounting, traced or not.
    for result in disabled_runs:
        assert sorted(result.solution.uids) == sorted(traced.solution.uids)
    assert traced.solution.diversity == pytest.approx(untraced.solution.diversity)
    assert (
        traced.stats.stream_distance_computations
        == untraced.stats.stream_distance_computations
    )
    assert (
        traced.stats.postprocess_distance_computations
        == untraced.stats.postprocess_distance_computations
    )

    # Every record that started inside the ingest span is one tracer call
    # the disabled path also pays (as a no-op).
    ingest = next(r for r in records if r["name"] == "ingest")
    lo, hi = ingest["mono"], ingest["mono"] + ingest["dur"]
    ingest_calls = sum(1 for r in records if lo <= r["mono"] <= hi)
    overhead_pct = ingest_calls * noop_cost / max(ingest_disabled_s, 1e-9) * 100.0

    rows = [
        {"quantity": "ingest_disabled_s", "value": round(ingest_disabled_s, 4)},
        {"quantity": "ingest_tracer_calls", "value": ingest_calls},
        {"quantity": "noop_span_ns", "value": round(noop_cost * 1e9, 1)},
        {"quantity": "disabled_overhead_pct", "value": round(overhead_pct, 4)},
    ]
    print_table(rows, COLUMNS, title=f"tracing overhead on SFDM2 ingest — n={OBS_N}")
    write_csv(
        rows,
        results_dir / scaled_csv_name("obs_overhead", OBS_N, 100_000),
        columns=COLUMNS,
    )
    record_bench_section(
        "obs_overhead" if OBS_N >= 100_000 else "obs_overhead_smoke",
        {
            "n": OBS_N,
            "batch_size": BATCH_SIZE,
            "k": K,
            "m": M,
            "epsilon": EPSILON,
            "cpus": usable_cpus(),
            "ingest_disabled_s": round(ingest_disabled_s, 4),
            "ingest_tracer_calls": ingest_calls,
            "noop_span_ns": round(noop_cost * 1e9, 1),
            "disabled_overhead_pct": round(overhead_pct, 4),
            "stream_distance_computations": untraced.stats.stream_distance_computations,
            "traced_stream_distance_computations": traced.stats.stream_distance_computations,
        },
    )

    if not os.environ.get("REPRO_BENCH_HOT_NO_ASSERT"):
        assert overhead_pct <= MAX_DISABLED_OVERHEAD_PCT
