"""Figure 6 — solution quality (diversity) as a function of k.

The paper plots diversity against k in [5, 50] (starting higher when m is
large so every group gets at least one slot) for GMM, FairSwap, FairFlow,
FairGMM (small k/m only), SFDM1 and SFDM2 on eight dataset panels.

Expected shape: diversity decreases monotonically (in expectation) with k
for every algorithm; the fair algorithms sit slightly below GMM at m = 2 and
further below for large m; FairFlow trails SFDM2 as m grows.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import ExperimentConfig, default_algorithms, run_experiment
from repro.evaluation.reporting import records_to_rows, write_csv

from .conftest import BENCH_REPS, BENCH_SEED, bench_dataset, print_table

#: (dataset, k sweep) panels — a representative subset of the paper's eight
#: panels covering m = 2, m = 4/5, m = 7, and m = 15.
PANELS = [
    ("adult-sex", (5, 10, 20, 30)),
    ("celeba-sex", (5, 10, 20, 30)),
    ("adult-race", (10, 20, 30)),
    ("census-age", (10, 20, 30)),
    ("lyrics-genre", (15, 25, 35)),
]

COLUMNS = ["dataset", "algorithm", "k", "diversity"]


def _run_panel(name: str, ks):
    dataset = bench_dataset(name)
    configs = [
        ExperimentConfig(
            dataset=dataset,
            k=k,
            epsilon=0.05 if name == "lyrics-genre" else 0.1,
            repetitions=BENCH_REPS,
            base_seed=BENCH_SEED,
        )
        for k in ks
    ]
    include_fair_gmm = max(ks) <= 10 and dataset.num_groups <= 5
    return run_experiment(configs, algorithms=default_algorithms(include_fair_gmm))


@pytest.mark.parametrize("name,ks", PANELS, ids=[p[0] for p in PANELS])
def test_fig6_quality_panel(benchmark, results_dir, name, ks):
    """Regenerate one panel of Figure 6 (diversity vs k)."""
    records = benchmark.pedantic(_run_panel, args=(name, ks), rounds=1, iterations=1)
    rows = records_to_rows(records, columns=COLUMNS)
    print_table(rows, COLUMNS, title=f"Figure 6 — {name} (diversity vs k)")
    write_csv(rows, results_dir / f"fig6_{name}.csv", columns=COLUMNS)

    # Shape checks: every fair algorithm stays below the 2*div(GMM) upper
    # bound on OPT at every k (GMM itself is only a 1/2-approximation, so a
    # fair solution may occasionally beat GMM's achieved value), and each
    # algorithm's diversity at the largest k is below its value at the
    # smallest k.
    for k in ks:
        at_k = {r.algorithm: r.diversity for r in records if r.k == k}
        for algorithm, value in at_k.items():
            if algorithm != "GMM":
                assert value <= 2.0 * at_k["GMM"] + 1e-9
    # FairFlow's quality is erratic (a point the paper makes), so the
    # monotone-decrease check is applied to the stable algorithms only,
    # with a 10% tolerance for stream randomness.
    for algorithm in {r.algorithm for r in records} - {"FairFlow"}:
        series = sorted((r.k, r.diversity) for r in records if r.algorithm == algorithm)
        if len(series) >= 2:
            assert series[-1][1] <= 1.1 * series[0][1] + 1e-9
