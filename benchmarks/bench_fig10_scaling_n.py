"""Figure 10 — scalability with the dataset size n on synthetic data (k = 20).

The paper varies n from 10^3 to 10^7 on the Gaussian-blob benchmark with
m = 2 and m = 10 and reports diversity and running time for FairSwap,
FairFlow, SFDM1 and SFDM2.  At benchmark scale we sweep n over three
decades (10^2.5 to 10^4 by default) — the qualitative finding is already
visible there.

Expected shape: the offline algorithms' running time grows linearly with n,
while the streaming algorithms' per-element cost is flat, so their total
time grows much more slowly; diversity values are nearly independent of n
and close to each other at m = 2.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.harness import ExperimentConfig, default_algorithms, run_experiment
from repro.evaluation.reporting import records_to_rows, write_csv

from .conftest import BENCH_REPS, BENCH_SEED, print_table

K = 20

NS = (300, 1_000, 3_000, 10_000)
MS = (2, 10)

COLUMNS = ["dataset", "algorithm", "m", "diversity", "total_seconds", "stream_seconds"]


def _run_sweep(m: int):
    records = []
    for n in NS:
        dataset = synthetic_blobs(n=n, m=m, seed=BENCH_SEED)
        config = ExperimentConfig(
            dataset=dataset, k=K, epsilon=0.1, repetitions=BENCH_REPS, base_seed=BENCH_SEED
        )
        for record in run_experiment([config], algorithms=default_algorithms()):
            record.extra["n"] = n
            records.append(record)
    return records


@pytest.mark.parametrize("m", MS, ids=[f"m={m}" for m in MS])
def test_fig10_scaling_n(benchmark, results_dir, m):
    """Regenerate one panel of Figure 10 (quality and time vs n)."""
    records = benchmark.pedantic(_run_sweep, args=(m,), rounds=1, iterations=1)
    columns = COLUMNS + ["n"]
    rows = records_to_rows(records, columns=columns)
    print_table(rows, columns, title=f"Figure 10 — synthetic, m={m}, k={K}")
    write_csv(rows, results_dir / f"fig10_m{m}.csv", columns=columns)

    # Shape check: the offline algorithms slow down with n much faster than
    # the streaming ones do (ratio of largest-n to smallest-n runtimes).
    def growth(algorithm: str) -> float:
        series = sorted((r.extra["n"], r.total_seconds) for r in records if r.algorithm == algorithm)
        return series[-1][1] / max(series[0][1], 1e-9)

    offline_growth = min(growth(a) for a in ("GMM", "FairFlow"))
    streaming_growth = max(growth(a) for a in ("SFDM2",))
    assert offline_growth > 0
    assert streaming_growth < offline_growth * 3
