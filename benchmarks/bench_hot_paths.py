"""Hot-path benchmark: columnar store vs. object path, end to end.

This is the acceptance bench for the columnar ``ElementStore`` data layer
(PR 3) and the repository's perf-trajectory anchor: it measures the three
hot paths the store accelerates —

1. **SFDM2 batched ingest** at ``n = 100 000``: the same stream permutation
   consumed once through a store-backed :class:`DataStream` (row-range
   ingestion, memoised union screens) and once through the retained
   object-element compatibility path (per-chunk re-stacking, per-level
   Python filtering).  Solutions and charged distance counts must be
   identical; at acceptance scale the store ingest must be ≥ 3x faster.
2. **Post-processing**: ``greedy_fair_fill`` over the full ``n``-element
   pool (store views vs. standalone elements).
3. **Offline baseline**: ``gmm`` over the full dataset (columnar
   :class:`ElementStore` input vs. the element list).

Headline numbers are appended to the shared ``BENCH_hot_paths.json`` at
the repo root (section ``hot_paths`` at acceptance scale, or
``hot_paths_smoke`` below it) — the file ``tools/perf_gate.py`` uses to
catch silent perf regressions.  Override the scale with
``REPRO_BENCH_HOT_N``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.baselines.gmm import gmm_elements
from repro.core.postprocess import greedy_fair_fill
from repro.core.sfdm2 import SFDM2
from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.reporting import write_csv
from repro.fairness.constraints import equal_representation
from repro.metrics.cached import CountingMetric
from repro.parallel.backends import usable_cpus
from repro.streaming.stream import DataStream

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name

#: Acceptance-scale dataset size (override with REPRO_BENCH_HOT_N).
HOT_N = int(os.environ.get("REPRO_BENCH_HOT_N", "100000"))
#: Chunk size for the batched ingest comparison.
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_HOT_BATCH", "1024"))
#: Minimum accepted store-over-object ingest speedup at acceptance scale.
TARGET_INGEST_SPEEDUP = 3.0

K = 20
M = 2
EPSILON = 0.1

COLUMNS = ["path", "mode", "n", "seconds", "speedup"]


def _ingest_pair(dataset, constraint):
    """Timed SFDM2 runs on the store-backed and object-backed streams.

    Each mode runs twice (interleaved) and reports its best stream time —
    the standard way to shave scheduler noise off a single-shot wall-clock
    comparison; the solutions of every run are identity-checked.
    """

    def _run(stream):
        algorithm = SFDM2(
            metric=dataset.metric,
            constraint=constraint,
            epsilon=EPSILON,
            batch_size=BATCH_SIZE,
        )
        return algorithm.run(stream)

    # Warm pass at a fraction of the scale so allocator and code-path
    # warm-up costs do not pollute the first timed run.
    warm = DataStream(dataset.elements[: max(2048, HOT_N // 50)], name="warmup")
    _run(warm)
    _run(dataset.stream(seed=BENCH_SEED).take(max(2048, HOT_N // 50)))

    object_runs = []
    store_runs = []
    for _ in range(2):
        object_runs.append(_run(DataStream(dataset.elements, shuffle_seed=BENCH_SEED)))
        store_runs.append(_run(dataset.stream(seed=BENCH_SEED)))
    reference = sorted(object_runs[0].solution.uids)
    for result in object_runs + store_runs:
        assert sorted(result.solution.uids) == reference
    object_best = min(object_runs, key=lambda r: r.stats.stream_seconds)
    store_best = min(store_runs, key=lambda r: r.stats.stream_seconds)
    return store_best, object_best


def _timed(callable_):
    start = time.perf_counter()
    value = callable_()
    return value, time.perf_counter() - start


def test_hot_paths(benchmark, results_dir):
    """Store-backed hot paths: ≥ 3x SFDM2 ingest, identical solutions/counts."""
    dataset = synthetic_blobs(n=HOT_N, m=M, seed=BENCH_SEED)
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    store = dataset.columnar()
    assert store is not None, "synthetic blobs must be columnar"

    def _sweep():
        store_result, object_result = _ingest_pair(dataset, constraint)

        pool_views = store.elements()
        pool_objects = list(dataset.elements)
        fill_store, fill_store_s = _timed(
            lambda: greedy_fair_fill(pool_views, constraint, CountingMetric(dataset.metric))
        )
        fill_object, fill_object_s = _timed(
            lambda: greedy_fair_fill(pool_objects, constraint, CountingMetric(dataset.metric))
        )
        gmm_store, gmm_store_s = _timed(
            lambda: gmm_elements(store, CountingMetric(dataset.metric), K)
        )
        gmm_object, gmm_object_s = _timed(
            lambda: gmm_elements(pool_objects, CountingMetric(dataset.metric), K)
        )
        return {
            "store_result": store_result,
            "object_result": object_result,
            "fill": (fill_store, fill_store_s, fill_object, fill_object_s),
            "gmm": (gmm_store, gmm_store_s, gmm_object, gmm_object_s),
        }

    outcome = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    store_result = outcome["store_result"]
    object_result = outcome["object_result"]
    fill_store, fill_store_s, fill_object, fill_object_s = outcome["fill"]
    gmm_store, gmm_store_s, gmm_object, gmm_object_s = outcome["gmm"]

    ingest_store_s = store_result.stats.stream_seconds
    ingest_object_s = object_result.stats.stream_seconds
    ingest_speedup = ingest_object_s / max(ingest_store_s, 1e-9)

    rows = [
        {"path": "sfdm2-ingest", "mode": "object", "n": HOT_N, "seconds": ingest_object_s, "speedup": 1.0},
        {"path": "sfdm2-ingest", "mode": "store", "n": HOT_N, "seconds": ingest_store_s, "speedup": ingest_speedup},
        {"path": "greedy-fair-fill", "mode": "object", "n": HOT_N, "seconds": fill_object_s, "speedup": 1.0},
        {"path": "greedy-fair-fill", "mode": "store", "n": HOT_N, "seconds": fill_store_s, "speedup": fill_object_s / max(fill_store_s, 1e-9)},
        {"path": "gmm", "mode": "object", "n": HOT_N, "seconds": gmm_object_s, "speedup": 1.0},
        {"path": "gmm", "mode": "store", "n": HOT_N, "seconds": gmm_store_s, "speedup": gmm_object_s / max(gmm_store_s, 1e-9)},
    ]
    print_table(rows, COLUMNS, title=f"columnar store vs object path — n={HOT_N}")
    write_csv(rows, results_dir / scaled_csv_name("hot_paths", HOT_N, 100_000), columns=COLUMNS)

    # Exact identity: same solution, same diversity, same charged distances.
    assert sorted(store_result.solution.uids) == sorted(object_result.solution.uids)
    assert store_result.solution.diversity == pytest.approx(object_result.solution.diversity)
    assert (
        store_result.stats.stream_distance_computations
        == object_result.stats.stream_distance_computations
    )
    assert (
        store_result.stats.postprocess_distance_computations
        == object_result.stats.postprocess_distance_computations
    )
    # The columnar post-processing and baseline must select identically too.
    assert [e.uid for e in fill_store] == [e.uid for e in fill_object]
    assert [e.uid for e in gmm_store] == [e.uid for e in gmm_object]

    print(
        f"\ningest speedup: {ingest_speedup:.2f}x "
        f"(target >= {TARGET_INGEST_SPEEDUP:g}x at n >= 100000)"
    )
    record_bench_section(
        "hot_paths" if HOT_N >= 100_000 else "hot_paths_smoke",
        {
            "n": HOT_N,
            "batch_size": BATCH_SIZE,
            "k": K,
            "m": M,
            "epsilon": EPSILON,
            "cpus": usable_cpus(),
            "sfdm2_ingest_store_s": round(ingest_store_s, 4),
            "sfdm2_ingest_object_s": round(ingest_object_s, 4),
            "sfdm2_ingest_speedup": round(ingest_speedup, 2),
            "greedy_fair_fill_store_s": round(fill_store_s, 4),
            "greedy_fair_fill_object_s": round(fill_object_s, 4),
            "gmm_store_s": round(gmm_store_s, 4),
            "gmm_object_s": round(gmm_object_s, 4),
            "stream_distance_computations": store_result.stats.stream_distance_computations,
        },
    )

    if HOT_N >= 100_000:
        assert ingest_speedup >= TARGET_INGEST_SPEEDUP
    elif not os.environ.get("REPRO_BENCH_HOT_NO_ASSERT"):
        # Smoke scale: the store path must still win, but the bar is lower.
        # tools/perf_gate.py sets REPRO_BENCH_HOT_NO_ASSERT so noise on a
        # loaded machine cannot fail the run before the gate applies its
        # own tolerance-based ratio check.
        assert ingest_speedup > 1.0


def test_store_slices_are_views():
    """The slice hot path hands kernels zero-copy windows of the store."""
    dataset = synthetic_blobs(n=2_000, m=M, seed=BENCH_SEED)
    store = dataset.columnar()
    window = store.rows(slice(100, 612))
    assert np.shares_memory(window, store.features)
    assert window.flags["C_CONTIGUOUS"]
