"""Figure 7 — running time as a function of k.

The paper plots wall-clock running time against k for the same panels as
Figure 6 (log-scale y axis).

Expected shape: the offline baselines' time is dominated by their pass over
the full dataset and grows with k; the streaming algorithms are orders of
magnitude faster per run on large datasets because their cost depends on
k·log(Delta)/epsilon, not on n (their total time here includes the one pass
over the stream, so the gap grows with the dataset size).
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import ExperimentConfig, default_algorithms, run_experiment
from repro.evaluation.reporting import records_to_rows, write_csv

from .conftest import BENCH_N, BENCH_REPS, BENCH_SEED, bench_dataset, print_table, scaled_csv_name

PANELS = [
    ("adult-sex", (10, 20, 30)),
    ("census-sex", (10, 20, 30)),
    ("census-age", (10, 20, 30)),
]

COLUMNS = ["dataset", "algorithm", "k", "total_seconds", "stream_seconds", "postprocess_seconds"]


def _run_panel(name: str, ks):
    dataset = bench_dataset(name)
    configs = [
        ExperimentConfig(
            dataset=dataset, k=k, epsilon=0.1, repetitions=BENCH_REPS, base_seed=BENCH_SEED
        )
        for k in ks
    ]
    return run_experiment(configs, algorithms=default_algorithms())


@pytest.mark.parametrize("name,ks", PANELS, ids=[p[0] for p in PANELS])
def test_fig7_time_panel(benchmark, results_dir, name, ks):
    """Regenerate one panel of Figure 7 (running time vs k)."""
    records = benchmark.pedantic(_run_panel, args=(name, ks), rounds=1, iterations=1)
    rows = records_to_rows(records, columns=COLUMNS)
    print_table(rows, COLUMNS, title=f"Figure 7 — {name} (time vs k)")
    write_csv(
        rows,
        results_dir / scaled_csv_name(f"fig7_{name}", BENCH_N, 1000),
        columns=COLUMNS,
    )

    # Shape check: every measurement is positive and each algorithm's time
    # grows (weakly) from the smallest to the largest k.
    assert all(record.total_seconds > 0 for record in records)
    for algorithm in {r.algorithm for r in records}:
        series = sorted((r.k, r.total_seconds) for r in records if r.algorithm == algorithm)
        if len(series) >= 2:
            assert series[-1][1] >= series[0][1] * 0.3
