"""True-approximation-ratio benchmark anchored by the MWU quality oracle.

Every other quality number in the repository is relative to *GMM-offline*
(a 1/2-approximation) via the ``2 * div(GMM)`` upper bound.  This bench
reports **true** ratios: the MWU + LP-rounding oracle
(:func:`repro.baselines.mwu.mwu_fair`) computes a near-exact fair optimum
on the full dataset, and SFDM2, SlidingWindowFDM, and the coreset pipeline
are scored against it on the same stream permutation.

Two layers of evidence land in ``BENCH_hot_paths.json`` (section
``quality`` at acceptance scale ``n >= 10_000``, ``quality_smoke`` below
it; override the scale with ``REPRO_BENCH_QUALITY_N``):

1. **Scale ratios** — per-algorithm diversity over MWU diversity at the
   bench scale, plus MWU's own certified lower bound against the
   ``2 * div(GMM)`` upper bound on the optimum.
2. **Exact sweep** — on seeded instances small enough for the brute-force
   :func:`exact_fdm`, MWU must land within 10% of the optimum on *every*
   configuration; the sweep's integer counters (cases, cases within 10%,
   MWU's counted distance evaluations) are deterministic per seed, so
   ``tools/perf_gate.py`` re-proves them exactly on every smoke run.
"""

from __future__ import annotations

import os
import time

import numpy as np

import repro
from repro.baselines.exact import exact_fdm
from repro.baselines.mwu import mwu_fair
from repro.data.element import Element
from repro.evaluation.reporting import write_csv
from repro.fairness.constraints import FairnessConstraint, equal_representation
from repro.metrics.vector import EuclideanMetric
from repro.parallel.backends import usable_cpus

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name

#: Acceptance-scale dataset size (override with REPRO_BENCH_QUALITY_N).
QUALITY_N = int(os.environ.get("REPRO_BENCH_QUALITY_N", "10000"))
#: Acceptance threshold separating the `quality` and `quality_smoke` sections.
CANONICAL_N = 10_000

K = 10
M = 2
EPSILON = 0.1

#: The algorithms scored against the MWU anchor.
SCORED = ("SFDM2", "SlidingWindowFDM", "Coreset")

#: Exact-sweep configuration: seeds x group counts, all with n <= 25.
SWEEP_SEEDS = (3, 11, 29)
SWEEP_GROUPS = (2, 3, 4)

COLUMNS = ["algorithm", "n", "diversity", "ratio_vs_mwu", "distance_evals", "seconds"]


def _sweep_instance(seed: int, m: int):
    """A seeded small instance (n <= 25) with feasible quotas."""
    rng = np.random.default_rng(seed + 1_000 * m)
    n = int(rng.integers(4 * m, 26))
    quotas = {group: int(rng.integers(1, 3)) for group in range(m)}
    groups = rng.integers(0, m, size=n)
    slot = 0
    for group, quota in quotas.items():
        for _ in range(quota):
            groups[slot] = group
            slot += 1
    points = rng.uniform(0.5, 10.0, size=(n, 3))
    elements = [
        Element(uid=i, vector=points[i], group=int(groups[i])) for i in range(n)
    ]
    return elements, FairnessConstraint(quotas)


def _exact_sweep():
    """MWU vs brute force on every seeded small configuration.

    Returns the integer counters the perf gate re-proves: total cases,
    cases within 10% of the exact optimum, and the summed counted distance
    evaluations of the MWU runs (deterministic per seed).
    """
    metric = EuclideanMetric()
    cases = 0
    within = 0
    mwu_evals = 0
    for seed in SWEEP_SEEDS:
        for m in SWEEP_GROUPS:
            elements, constraint = _sweep_instance(seed, m)
            _, exact_div = exact_fdm(elements, metric, constraint)
            result = mwu_fair(elements, metric, constraint, seed=seed)
            cases += 1
            if result.solution.is_fair and result.solution.diversity >= 0.9 * exact_div:
                within += 1
            mwu_evals += result.stats.stream_distance_computations
    return cases, within, mwu_evals


def _solve(store, constraint, algorithm):
    """One scored run; returns (diversity, counted evals, seconds)."""
    started = time.perf_counter()
    result = repro.solve(
        store,
        constraint=constraint,
        algorithm=algorithm,
        epsilon=EPSILON,
        seed=BENCH_SEED,
    )
    elapsed = time.perf_counter() - started
    assert result.solution.is_fair, f"{algorithm} returned an unfair solution"
    return result, elapsed


def test_quality_ratios(results_dir):
    """True approximation ratios vs the MWU anchor, plus the exact sweep."""
    dataset = repro.synthetic_blobs(n=QUALITY_N, m=M, seed=BENCH_SEED)
    store = dataset.columnar()
    assert store is not None, "synthetic blobs must be columnar"
    constraint = equal_representation(K, sorted(dataset.group_sizes().keys()))

    mwu_result, mwu_s = _solve(store, constraint, "MWU")
    mwu_div = mwu_result.solution.diversity

    gmm_result = repro.solve(store, k=K, algorithm="GMM", seed=BENCH_SEED)
    upper_bound = 2.0 * gmm_result.solution.diversity
    mwu_certified = mwu_div / upper_bound

    rows = [
        {
            "algorithm": "MWU",
            "n": QUALITY_N,
            "diversity": mwu_div,
            "ratio_vs_mwu": 1.0,
            "distance_evals": mwu_result.stats.total_distance_computations,
            "seconds": mwu_s,
        }
    ]
    ratios = {}
    for algorithm in SCORED:
        result, elapsed = _solve(store, constraint, algorithm)
        ratio = result.solution.diversity / mwu_div
        ratios[algorithm] = ratio
        rows.append(
            {
                "algorithm": algorithm,
                "n": QUALITY_N,
                "diversity": result.solution.diversity,
                "ratio_vs_mwu": ratio,
                "distance_evals": result.stats.total_distance_computations,
                "seconds": elapsed,
            }
        )
        # The anchor must sit near the top: a scored heuristic beating the
        # oracle by more than the falloff resolution means the oracle broke.
        assert ratio <= 1.0 + EPSILON, f"{algorithm} beat MWU by {ratio:.3f}x"

    cases, within, sweep_evals = _exact_sweep()
    assert within == cases, f"MWU missed 10%-of-exact on {cases - within} configs"

    print_table(rows, COLUMNS, title=f"true approximation ratios — n={QUALITY_N}")
    write_csv(
        rows,
        results_dir / scaled_csv_name("quality", QUALITY_N, CANONICAL_N),
        columns=COLUMNS,
    )

    record_bench_section(
        "quality" if QUALITY_N >= CANONICAL_N else "quality_smoke",
        {
            "n": QUALITY_N,
            "k": K,
            "m": M,
            "epsilon": EPSILON,
            "seed": BENCH_SEED,
            "cpus": usable_cpus(),
            "mwu_diversity": round(mwu_div, 6),
            "mwu_certified_ratio": round(mwu_certified, 4),
            "mwu_distance_evals": int(mwu_result.stats.total_distance_computations),
            "mwu_s": round(mwu_s, 4),
            "sfdm2_ratio": round(ratios["SFDM2"], 4),
            "sliding_window_ratio": round(ratios["SlidingWindowFDM"], 4),
            "coreset_ratio": round(ratios["Coreset"], 4),
            "exact_cases": int(cases),
            "exact_within_10pct": int(within),
            "exact_sweep_evals": int(sweep_evals),
        },
    )
