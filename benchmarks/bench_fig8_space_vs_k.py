"""Figure 8 — number of stored elements as a function of k (SFDM1 / SFDM2).

The paper plots, on Adult and Census, the number of distinct elements each
streaming algorithm keeps in memory as k ranges over [10, 50], for SFDM1
(m = 2) and SFDM2 under two different group settings.

Expected shape: the stored-element count grows roughly linearly in k for
both algorithms, and SFDM2's count also grows with the number of groups m
(its group-specific candidates have capacity k each instead of k_i).
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import ExperimentConfig, run_experiment, streaming_algorithms
from repro.evaluation.reporting import records_to_rows, write_csv

from .conftest import BENCH_REPS, BENCH_SEED, bench_dataset, print_table

#: (panel id, dataset settings) — Adult with sex/race and Census with sex/age,
#: mirroring the two panels of Figure 8.
PANELS = [
    ("adult", ["adult-sex", "adult-race"]),
    ("census", ["census-sex", "census-age"]),
]

KS = (10, 20, 30, 40)

COLUMNS = ["dataset", "algorithm", "m", "k", "stored_elements"]


def _run_panel(dataset_names):
    records = []
    for name in dataset_names:
        dataset = bench_dataset(name)
        configs = [
            ExperimentConfig(
                dataset=dataset, k=k, epsilon=0.1, repetitions=BENCH_REPS, base_seed=BENCH_SEED
            )
            for k in KS
        ]
        records.extend(run_experiment(configs, algorithms=streaming_algorithms()))
    return records


@pytest.mark.parametrize("panel,names", PANELS, ids=[p[0] for p in PANELS])
def test_fig8_space_panel(benchmark, results_dir, panel, names):
    """Regenerate one panel of Figure 8 (stored elements vs k)."""
    records = benchmark.pedantic(_run_panel, args=(names,), rounds=1, iterations=1)
    rows = records_to_rows(records, columns=COLUMNS)
    print_table(rows, COLUMNS, title=f"Figure 8 — {panel} (stored elements vs k)")
    write_csv(rows, results_dir / f"fig8_{panel}.csv", columns=COLUMNS)

    # Shape checks: storage grows with k for every algorithm/dataset series,
    # and SFDM2 on the many-group setting stores more than on the two-group one.
    for name in names:
        for algorithm in {r.algorithm for r in records if r.dataset.endswith(name.split("-")[1])}:
            series = sorted(
                (r.k, r.stored_elements)
                for r in records
                if r.algorithm == algorithm and r.dataset == bench_dataset(name).name
            )
            if len(series) >= 2:
                assert series[-1][1] > series[0][1]
    sfdm2_by_m = {
        r.m: r.stored_elements for r in records if r.algorithm == "SFDM2" and r.k == max(KS)
    }
    if len(sfdm2_by_m) >= 2:
        ms = sorted(sfdm2_by_m)
        assert sfdm2_by_m[ms[-1]] > sfdm2_by_m[ms[0]]
