"""Batch ingestion throughput — vectorized batch mode vs. element mode.

This bench demonstrates the payoff of the vectorized batch streaming
engine: SFDM2 run twice over the *same* stream permutation of the paper's
synthetic Gaussian-blob workload, once with the element-at-a-time updates
(the paper's pseudocode, scalar Python distance calls) and once with
``batch_size`` chunks screened by the NumPy distance kernels.

Expected shape: identical solutions (batching only reschedules the
arithmetic; the accept/reject decisions are the same) and a large wall
clock gap — the acceptance target for this repository is >= 5x throughput
at ``n = 50_000, m = 2``.

The instance is deliberately the acceptance-scale one; override with
``REPRO_BENCH_BATCH_N`` for a quicker smoke run (the speedup shrinks with
``n`` because the fixed post-processing cost amortizes less).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.sfdm2 import SFDM2
from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.reporting import write_csv
from repro.fairness.constraints import equal_representation

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name

#: Acceptance-scale dataset size (override with REPRO_BENCH_BATCH_N).
BATCH_BENCH_N = int(os.environ.get("REPRO_BENCH_BATCH_N", "50000"))
#: Chunk size for the batched run (override with REPRO_BENCH_BATCH_SIZE).
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_BATCH_SIZE", "1024"))
#: Minimum accepted throughput ratio at acceptance scale.
TARGET_SPEEDUP = 5.0

K = 20
M = 2
EPSILON = 0.1

COLUMNS = [
    "mode",
    "n",
    "diversity",
    "total_seconds",
    "stream_seconds",
    "postprocess_seconds",
    "throughput_eps",
]


def _run_mode(dataset, constraint, batch_size):
    """One timed SFDM2 run; returns (RunResult, wall-clock seconds)."""
    algorithm = SFDM2(
        metric=dataset.metric,
        constraint=constraint,
        epsilon=EPSILON,
        batch_size=batch_size,
    )
    start = time.perf_counter()
    result = algorithm.run(dataset.stream(seed=BENCH_SEED))
    return result, time.perf_counter() - start


def _sweep():
    dataset = synthetic_blobs(n=BATCH_BENCH_N, m=M, seed=BENCH_SEED)
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    element_result, element_seconds = _run_mode(dataset, constraint, batch_size=None)
    batch_result, batch_seconds = _run_mode(dataset, constraint, batch_size=BATCH_SIZE)
    rows = []
    for mode, result, seconds in (
        ("element", element_result, element_seconds),
        (f"batch({BATCH_SIZE})", batch_result, batch_seconds),
    ):
        rows.append(
            {
                "mode": mode,
                "n": BATCH_BENCH_N,
                "diversity": result.solution.diversity,
                "total_seconds": seconds,
                "stream_seconds": result.stats.stream_seconds,
                "postprocess_seconds": result.stats.postprocess_seconds,
                "throughput_eps": BATCH_BENCH_N / max(seconds, 1e-9),
            }
        )
    return rows, element_result, batch_result, element_seconds, batch_seconds


def test_batch_throughput(benchmark, results_dir):
    """Batch-mode SFDM2 matches element mode and is >= 5x faster at 50k points."""
    rows, element_result, batch_result, element_seconds, batch_seconds = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    print_table(rows, COLUMNS, title=f"batch vs element ingestion — SFDM2, n={BATCH_BENCH_N}")
    write_csv(
        rows,
        results_dir / scaled_csv_name("batch_throughput", BATCH_BENCH_N, 50_000),
        columns=COLUMNS,
    )

    # Batching must not change the algorithm's output on the same stream order.
    assert sorted(element_result.solution.uids) == sorted(batch_result.solution.uids)
    assert element_result.solution.diversity == pytest.approx(batch_result.solution.diversity)

    speedup = element_seconds / max(batch_seconds, 1e-9)
    print(f"\nthroughput speedup: {speedup:.1f}x (target >= {TARGET_SPEEDUP:g}x)")
    if BATCH_BENCH_N >= 50_000:
        # Acceptance-scale runs refresh the shared perf-trajectory file;
        # smoke runs (make ci) must not churn the committed baseline.
        record_bench_section(
            "batch_throughput",
            {
                "n": BATCH_BENCH_N,
                "batch_size": BATCH_SIZE,
                "element_total_s": round(element_seconds, 4),
                "batch_total_s": round(batch_seconds, 4),
                "speedup": round(speedup, 2),
            },
        )
        assert speedup >= TARGET_SPEEDUP
    else:  # smoke scale: batching must still win, but the bar is lower
        assert speedup > 1.0
