"""Figure 11 — scalability with the number of groups m on synthetic data.

The paper fixes n = 10^5 and k = 20 and varies m from 2 to 20, comparing
FairSwap and SFDM1 (m = 2 only) with FairFlow and SFDM2.

Expected shape: SFDM2's diversity degrades only slightly as m grows and is
up to several times higher than FairFlow's for m > 10; SFDM2's running time
grows with m (quadratic dependence in the post-processing) but stays far
below the offline baselines' time at realistic dataset sizes.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.harness import ExperimentConfig, default_algorithms, run_experiment
from repro.evaluation.reporting import records_to_rows, write_csv

from .conftest import BENCH_REPS, BENCH_SEED, print_table

K = 20
N = 3_000
MS = (2, 4, 8, 12, 16, 20)

COLUMNS = ["algorithm", "m", "diversity", "total_seconds"]


def _run_sweep():
    records = []
    for m in MS:
        dataset = synthetic_blobs(n=N, m=m, seed=BENCH_SEED)
        config = ExperimentConfig(
            dataset=dataset, k=K, epsilon=0.1, repetitions=BENCH_REPS, base_seed=BENCH_SEED
        )
        records.extend(run_experiment([config], algorithms=default_algorithms()))
    return records


def test_fig11_scaling_m(benchmark, results_dir):
    """Regenerate Figure 11 (quality and time vs m on synthetic data)."""
    records = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    rows = records_to_rows(records, columns=COLUMNS)
    print_table(rows, COLUMNS, title=f"Figure 11 — synthetic, n={N}, k={K}, m in {MS}")
    write_csv(rows, results_dir / "fig11_scaling_m.csv", columns=COLUMNS)

    # Shape checks mirroring the paper:
    # (1) SFDM1/FairSwap only appear at m = 2;
    sfdm1_ms = {r.m for r in records if r.algorithm == "SFDM1"}
    assert sfdm1_ms == {2}
    # (2) at the largest m, SFDM2 is clearly more diverse than FairFlow;
    largest = max(MS)
    sfdm2 = next(r for r in records if r.algorithm == "SFDM2" and r.m == largest)
    flow = next(r for r in records if r.algorithm == "FairFlow" and r.m == largest)
    assert sfdm2.diversity >= flow.diversity
    # (3) SFDM2's diversity decreases only moderately from m=2 to m=20.
    sfdm2_small = next(r for r in records if r.algorithm == "SFDM2" and r.m == min(MS))
    assert sfdm2.diversity >= 0.25 * sfdm2_small.diversity
