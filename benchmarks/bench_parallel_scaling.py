"""Sharded parallel engine — scaling, transports, and bytes shipped.

Three measurements on the paper's synthetic Gaussian-blob workload scaled
to ``n = 100 000`` points (override with ``REPRO_BENCH_PARALLEL_N``):

1. **Scaling scan** (``test_parallel_scaling``): for each shard count the
   same ``ParallelFDM`` configuration runs on the serial backend and on
   the process backend with the shared-memory transport; solutions must
   be identical (the engine guarantees the backend and transport only
   decide *where* and *how* shard work runs, never what it computes) and
   the per-shard-count speedup-per-core goes into the shared perf
   trajectory.  On a machine with at least 4 usable cores the process
   backend must deliver at least 2.5x the serial throughput at the
   reference shard count; on smaller machines the speedup is reported but
   not asserted, because process parallelism cannot beat a single shared
   core.

2. **Bytes shipped**: what actually crosses the pickle boundary per
   worker — the pickled :class:`~repro.data.store.ElementStore` columns
   on the pickle transport vs. the O(1) :class:`ShardRef` descriptors on
   the shm transport (the block itself is shared, not copied per worker,
   and is recorded separately).  The shm payload must be smaller than the
   pickle payload at every scale — this assertion is hardware-independent
   and always on.

3. **Shard scaling** (``test_parallel_shard_scaling``): a serial-backend
   scan over shard counts showing quality stays in the composable-coreset
   regime as shards multiply.

The per-shard summarizer is the one-pass ``StreamShardSummarizer`` (the
``Candidate.offer_batch`` chunk kernel over an ``epsilon = 0.15`` guess
ladder) — the configuration whose per-shard cost is dominated by genuine
summary work rather than by driver-side planning, i.e. the regime
sharding is designed for.  The local-search polish is disabled so the
timed run is the distributed pipeline itself, not the final-solution
cosmetics.

Acceptance-scale runs record the ``parallel_scaling`` section of
``BENCH_hot_paths.json``; smoke runs record ``parallel_scaling_smoke``
(same schema, smaller ``n``), which ``tools/perf_gate.py`` re-proves on
every ``make ci``.
"""

from __future__ import annotations

import os
import pickle
import time

from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.reporting import write_csv
from repro.fairness.constraints import equal_representation
from repro.parallel import ParallelFDM
from repro.parallel.backends import usable_cpus
from repro.parallel.planner import ShardPlanner
from repro.parallel.shm import ship_shards
from repro.parallel.summarize import StreamShardSummarizer

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name

#: Acceptance-scale dataset size (override with REPRO_BENCH_PARALLEL_N).
PARALLEL_BENCH_N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "100000"))
#: Feature dimensionality of the synthetic workload.
PARALLEL_BENCH_D = int(os.environ.get("REPRO_BENCH_PARALLEL_D", "16"))
#: Reference shard count for the transport comparison.
SHARDS = int(os.environ.get("REPRO_BENCH_PARALLEL_SHARDS", "4"))
#: Shard counts covered by the scaling scan.
SHARD_COUNTS = (1, 2, 4, 8)
#: Minimum accepted process/serial throughput ratio at acceptance scale.
TARGET_SPEEDUP = 2.5

K = 48
M = 2

COLUMNS = [
    "backend",
    "transport",
    "shards",
    "n",
    "diversity",
    "total_seconds",
    "speedup",
    "speedup_per_core",
]


def _engine(dataset, constraint, shards, backend, transport="auto"):
    """The benchmarked engine configuration on one backend/transport."""
    return ParallelFDM(
        metric=dataset.metric,
        constraint=constraint,
        shards=shards,
        backend=backend,
        transport=transport,
        summarizer=StreamShardSummarizer(chunk_size=512, epsilon=0.15),
        refine_with_swap=False,
        seed=BENCH_SEED,
    )


def _timed_run(dataset, constraint, shards, backend, transport="auto"):
    """One timed run; returns (RunResult, wall-clock seconds)."""
    engine = _engine(dataset, constraint, shards, backend, transport)
    start = time.perf_counter()
    result = engine.run(dataset.stream(seed=BENCH_SEED))
    return result, time.perf_counter() - start


def _payload_bytes(elements, shards):
    """Bytes crossing the pickle boundary per transport for one shard plan.

    Returns ``(pickle_bytes, shm_bytes, shm_block_bytes)``: the summed
    pickled size of the per-worker payloads on each transport, plus the
    size of the (shared, shipped-once) block backing the shm descriptors.
    """
    plan = ShardPlanner(shards, strategy="stratified").plan(elements)
    payloads, block, used = ship_shards(plan, transport="pickle")
    pickle_bytes = sum(len(pickle.dumps(payload)) for payload in payloads)
    payloads, block, used = ship_shards(plan, transport="shm")
    try:
        shm_bytes = sum(len(pickle.dumps(payload)) for payload in payloads)
        block_bytes = block.nbytes if block is not None else 0
    finally:
        if block is not None:
            block.dispose()
    if used != "shm":
        raise AssertionError(f"shm transport degraded to {used} on this platform")
    return pickle_bytes, shm_bytes, block_bytes


def test_parallel_scaling(benchmark, results_dir):
    """Identity + speedup-per-core per shard count; shm ships fewer bytes."""
    dataset = synthetic_blobs(
        n=PARALLEL_BENCH_N, m=M, dimensions=PARALLEL_BENCH_D, seed=BENCH_SEED
    )
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    cpus = usable_cpus()

    def _sweep():
        scan = {}
        for shards in SHARD_COUNTS:
            serial = _timed_run(dataset, constraint, shards, "serial")
            process = _timed_run(
                dataset, constraint, shards, "process", transport="shm"
            )
            scan[shards] = {"serial": serial, "process": process}
        return scan

    scan = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # Neither the backend nor the transport may change the solution.
    for shards, runs in scan.items():
        serial_uids = sorted(runs["serial"][0].solution.uids)
        process_uids = sorted(runs["process"][0].solution.uids)
        assert serial_uids == process_uids, f"{shards} shards: process diverged"
    pickled_result, _ = _timed_run(
        dataset, constraint, SHARDS, "process", transport="pickle"
    )
    reference = sorted(scan[SHARDS]["serial"][0].solution.uids)
    assert sorted(pickled_result.solution.uids) == reference, "pickle diverged"
    threaded_result, _ = _timed_run(dataset, constraint, SHARDS, "thread")
    assert sorted(threaded_result.solution.uids) == reference, "thread diverged"

    # Per-worker payload accounting: descriptors beat column pickles.
    elements = list(dataset.stream(seed=BENCH_SEED))
    pickle_bytes, shm_bytes, block_bytes = _payload_bytes(elements, SHARDS)
    assert shm_bytes < pickle_bytes, (
        f"shm payload ({shm_bytes} B) must undercut pickle ({pickle_bytes} B)"
    )

    rows, per_shards = [], {}
    for shards, runs in scan.items():
        serial_result, serial_s = runs["serial"]
        process_result, process_s = runs["process"]
        speedup = serial_s / max(process_s, 1e-9)
        cores_used = max(1, min(shards, cpus))
        rows.append(
            {
                "backend": "process",
                "transport": process_result.params["transport"],
                "shards": shards,
                "n": PARALLEL_BENCH_N,
                "diversity": process_result.solution.diversity,
                "total_seconds": process_s,
                "speedup": round(speedup, 3),
                "speedup_per_core": round(speedup / cores_used, 3),
            }
        )
        per_shards[str(shards)] = {
            "serial_s": round(serial_s, 4),
            "process_shm_s": round(process_s, 4),
            "speedup": round(speedup, 3),
            "speedup_per_core": round(speedup / cores_used, 3),
        }
    print_table(
        rows,
        COLUMNS,
        title=f"ParallelFDM scaling — process+shm vs serial, n={PARALLEL_BENCH_N}",
    )
    write_csv(
        rows,
        results_dir / scaled_csv_name("parallel_scaling", PARALLEL_BENCH_N, 100_000),
        columns=COLUMNS,
    )
    print(
        f"\nper-worker payload: shm {shm_bytes} B vs pickle {pickle_bytes} B "
        f"({pickle_bytes / max(shm_bytes, 1):.0f}x smaller; shared block "
        f"{block_bytes} B shipped once)"
    )

    section = "parallel_scaling" if PARALLEL_BENCH_N >= 100_000 else "parallel_scaling_smoke"
    record_bench_section(
        section,
        {
            "n": PARALLEL_BENCH_N,
            "dim": PARALLEL_BENCH_D,
            "shards": SHARDS,
            "cpus": cpus,
            "solutions_identical": True,
            "pickle_payload_bytes": pickle_bytes,
            "shm_payload_bytes": shm_bytes,
            "shm_block_bytes": block_bytes,
            "payload_reduction": round(pickle_bytes / max(shm_bytes, 1), 1),
            "per_shards": per_shards,
        },
    )

    reference_speedup = per_shards[str(SHARDS)]["speedup"]
    print(
        f"process/serial speedup at {SHARDS} shards: {reference_speedup:.2f}x on "
        f"{cpus} usable cpu(s) (target >= {TARGET_SPEEDUP:g}x on >= 4 cpus)"
    )
    if cpus >= 4 and PARALLEL_BENCH_N >= 100_000:
        assert reference_speedup >= TARGET_SPEEDUP
    # On fewer cores true CPU parallelism is unavailable; the run above
    # still validates cross-backend/transport solution identity at scale.


def test_parallel_shard_scaling(benchmark, results_dir):
    """Serial-backend scan over shard counts: same pipeline, finer partitions."""
    dataset = synthetic_blobs(
        n=PARALLEL_BENCH_N, m=M, dimensions=PARALLEL_BENCH_D, seed=BENCH_SEED
    )
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))

    def _sweep():
        return [
            (shards, *_timed_run(dataset, constraint, shards, "serial"))
            for shards in SHARD_COUNTS
        ]

    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        {
            "backend": "serial",
            "transport": "inline",
            "shards": shards,
            "n": PARALLEL_BENCH_N,
            "diversity": result.solution.diversity,
            "total_seconds": seconds,
            "speedup": 1.0,
            "speedup_per_core": 1.0,
        }
        for shards, result, seconds in outcomes
    ]
    print_table(
        rows, COLUMNS, title=f"ParallelFDM shard scaling — serial, n={PARALLEL_BENCH_N}"
    )
    write_csv(
        rows,
        results_dir / scaled_csv_name("parallel_shard_scaling", PARALLEL_BENCH_N, 100_000),
        columns=COLUMNS,
    )

    # Every shard count must produce a full-size fair solution.
    for shards, result, _ in outcomes:
        assert result.solution is not None
        assert result.solution.is_fair, f"{shards} shards lost fairness"
    # More shards -> smaller per-shard summaries, but quality must stay in
    # the composable-coreset regime relative to the unsharded run.
    single = outcomes[0][1].solution.diversity
    for shards, result, _ in outcomes[1:]:
        assert result.solution.diversity >= single / 3.0, f"{shards} shards lost quality"
