"""Sharded parallel engine — throughput vs. shard count and backend.

Two measurements on the paper's synthetic Gaussian-blob workload scaled to
``n = 100 000`` points (override with ``REPRO_BENCH_PARALLEL_N``):

1. **Backend comparison** at 4 shards: the same ``ParallelFDM``
   configuration run on the serial, thread, and process backends.  The
   solutions must be identical across backends — the engine guarantees
   the backend only decides *where* shard summaries run, never *what*
   they compute.  On a machine with at least 4 usable cores the process
   backend must deliver at least 2.5x the serial throughput (the
   acceptance target); on smaller machines the speedup is reported but
   not asserted, because process parallelism cannot beat a single shared
   core.

2. **Shard scaling** on the serial backend (1, 2, 4, 8 shards): how the
   work decomposes as shards shrink, and that solution quality stays in
   the composable-coreset regime while shards multiply.

The per-shard summarizer is the one-pass ``StreamShardSummarizer`` (the
``Candidate.offer_batch`` chunk kernel over an ``epsilon = 0.15`` guess
ladder) — the configuration whose per-shard cost is dominated by genuine
summary work rather than by driver-side planning, i.e. the regime
sharding is designed for.  The local-search polish is disabled so the
timed run is the distributed pipeline itself, not the final-solution
cosmetics.
"""

from __future__ import annotations

import os
import time

from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.reporting import write_csv
from repro.fairness.constraints import equal_representation
from repro.parallel import ParallelFDM
from repro.parallel.backends import usable_cpus
from repro.parallel.summarize import StreamShardSummarizer

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name

#: Acceptance-scale dataset size (override with REPRO_BENCH_PARALLEL_N).
PARALLEL_BENCH_N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "100000"))
#: Feature dimensionality of the synthetic workload.
PARALLEL_BENCH_D = int(os.environ.get("REPRO_BENCH_PARALLEL_D", "16"))
#: Shard count for the backend comparison.
SHARDS = int(os.environ.get("REPRO_BENCH_PARALLEL_SHARDS", "4"))
#: Minimum accepted process/serial throughput ratio at acceptance scale.
TARGET_SPEEDUP = 2.5

K = 48
M = 2

COLUMNS = [
    "backend",
    "shards",
    "n",
    "diversity",
    "total_seconds",
    "stream_seconds",
    "postprocess_seconds",
    "throughput_eps",
]


def _engine(dataset, constraint, shards, backend):
    """The benchmarked engine configuration on one backend."""
    return ParallelFDM(
        metric=dataset.metric,
        constraint=constraint,
        shards=shards,
        backend=backend,
        summarizer=StreamShardSummarizer(chunk_size=512, epsilon=0.15),
        refine_with_swap=False,
        seed=BENCH_SEED,
    )


def _timed_run(dataset, constraint, shards, backend):
    """One timed run; returns (RunResult, wall-clock seconds)."""
    engine = _engine(dataset, constraint, shards, backend)
    start = time.perf_counter()
    result = engine.run(dataset.stream(seed=BENCH_SEED))
    return result, time.perf_counter() - start


def _row(backend, shards, result, seconds):
    return {
        "backend": backend,
        "shards": shards,
        "n": PARALLEL_BENCH_N,
        "diversity": result.solution.diversity,
        "total_seconds": seconds,
        "stream_seconds": result.stats.stream_seconds,
        "postprocess_seconds": result.stats.postprocess_seconds,
        "throughput_eps": PARALLEL_BENCH_N / max(seconds, 1e-9),
    }


def test_parallel_backend_throughput(benchmark, results_dir):
    """Identical solutions on every backend; >= 2.5x process speedup on >= 4 cores."""
    dataset = synthetic_blobs(
        n=PARALLEL_BENCH_N, m=M, dimensions=PARALLEL_BENCH_D, seed=BENCH_SEED
    )
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))

    def _sweep():
        return {
            backend: _timed_run(dataset, constraint, SHARDS, backend)
            for backend in ("serial", "thread", "process")
        }

    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [
        _row(backend, SHARDS, result, seconds)
        for backend, (result, seconds) in outcomes.items()
    ]
    print_table(
        rows,
        COLUMNS,
        title=f"ParallelFDM backends — {SHARDS} shards, n={PARALLEL_BENCH_N}",
    )
    write_csv(
        rows,
        results_dir / scaled_csv_name("parallel_backends", PARALLEL_BENCH_N, 100_000),
        columns=COLUMNS,
    )

    # The backend must never change the computed solution.
    serial_result, serial_seconds = outcomes["serial"]
    reference = sorted(serial_result.solution.uids)
    for backend, (result, _) in outcomes.items():
        assert sorted(result.solution.uids) == reference, f"{backend} diverged"

    _, process_seconds = outcomes["process"]
    speedup = serial_seconds / max(process_seconds, 1e-9)
    cpus = usable_cpus()
    print(
        f"\nprocess/serial speedup: {speedup:.2f}x on {cpus} usable cpu(s) "
        f"(target >= {TARGET_SPEEDUP:g}x on >= 4 cpus)"
    )
    if PARALLEL_BENCH_N >= 100_000:
        # Acceptance-scale runs refresh the shared perf-trajectory file;
        # smoke runs (make ci) must not churn the committed baseline.
        record_bench_section(
            "parallel_scaling",
            {
                "n": PARALLEL_BENCH_N,
                "shards": SHARDS,
                "cpus": cpus,
                "serial_total_s": round(serial_seconds, 4),
                "process_total_s": round(process_seconds, 4),
                "process_over_serial": round(speedup, 2),
            },
        )
    if cpus >= 4 and PARALLEL_BENCH_N >= 100_000:
        assert speedup >= TARGET_SPEEDUP
    # On fewer cores true CPU parallelism is unavailable; the run above
    # still validates cross-backend solution identity at full scale.


def test_parallel_shard_scaling(benchmark, results_dir):
    """Serial-backend scan over shard counts: same pipeline, finer partitions."""
    dataset = synthetic_blobs(
        n=PARALLEL_BENCH_N, m=M, dimensions=PARALLEL_BENCH_D, seed=BENCH_SEED
    )
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    shard_counts = (1, 2, 4, 8)

    def _sweep():
        return [
            (shards, *_timed_run(dataset, constraint, shards, "serial"))
            for shards in shard_counts
        ]

    outcomes = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [_row("serial", shards, result, seconds) for shards, result, seconds in outcomes]
    print_table(
        rows, COLUMNS, title=f"ParallelFDM shard scaling — serial, n={PARALLEL_BENCH_N}"
    )
    write_csv(
        rows,
        results_dir / scaled_csv_name("parallel_shard_scaling", PARALLEL_BENCH_N, 100_000),
        columns=COLUMNS,
    )

    # Every shard count must produce a full-size fair solution.
    for shards, result, _ in outcomes:
        assert result.solution is not None
        assert result.solution.is_fair, f"{shards} shards lost fairness"
    # More shards -> smaller per-shard summaries, but quality must stay in
    # the composable-coreset regime relative to the unsharded run.
    single = outcomes[0][1].solution.diversity
    for shards, result, _ in outcomes[1:]:
        assert result.solution.diversity >= single / 3.0, f"{shards} shards lost quality"
