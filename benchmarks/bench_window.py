"""Windowing benchmark: incremental vs. checkpointed, quality vs. offline.

This is the acceptance bench for the windowing subsystem.  On one synthetic
stream (``REPRO_BENCH_WINDOW_N`` elements, default 30 000) it measures, for
several window lengths ``w``:

1. **Throughput** — elements/second of :class:`SlidingWindowFDM` ingestion
   under a monitoring workload (one mid-stream query per block), against
   the :class:`CheckpointedWindowFDM` baseline under the identical query
   schedule.  The baseline does less work per block (one summary, no
   recomposition) and is faster — but its pool may contain **expired**
   elements (the ``stale_pool`` column), which the incremental algorithm
   excludes exactly, by construction.
2. **Quality** — the final windowed solution's max-min diversity as a
   ratio of an offline greedy extraction over the exact last-``w``
   elements (the same reference the windowing property tests pin).  The
   ratio must stay within the documented
   :data:`~repro.windowing.sliding.APPROXIMATION_FACTOR` envelope.

Headline numbers are appended to the shared ``BENCH_hot_paths.json`` under
the ``window`` (acceptance scale) or ``window_smoke`` section.
"""

from __future__ import annotations

import os
import time

from repro.core.postprocess import greedy_fair_fill
from repro.core.solution import FairSolution
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.parallel.backends import usable_cpus
from repro.windowing import APPROXIMATION_FACTOR, CheckpointedWindowFDM, SlidingWindowFDM

from .conftest import BENCH_SEED, print_table, record_bench_section, scaled_csv_name
from repro.evaluation.reporting import write_csv

#: Acceptance-scale stream length (override with REPRO_BENCH_WINDOW_N).
WINDOW_N = int(os.environ.get("REPRO_BENCH_WINDOW_N", "30000"))
#: Canonical acceptance scale (smaller runs write the `window_smoke` section).
CANONICAL_N = 30000

K = 10
M = 2
BLOCKS = 8

COLUMNS = [
    "algorithm",
    "window",
    "n",
    "queries",
    "seconds",
    "elements_per_s",
    "quality_ratio",
    "stale_pool",
]


def _run_windowed(algorithm, elements, query_every):
    """Ingest ``elements`` with a query every ``query_every`` arrivals."""
    queries = 0
    started = time.perf_counter()
    for position, element in enumerate(elements):
        algorithm.process(element)
        if (position + 1) % query_every == 0:
            algorithm.solution()
            queries += 1
    elapsed = time.perf_counter() - started
    return algorithm.solution(), elapsed, queries


def _stale_pool_count(algorithm, uid_positions):
    """How many candidate-pool elements have already expired."""
    window_start = algorithm.elements_processed - algorithm.window
    return sum(
        1 for e in algorithm.candidate_pool() if uid_positions[e.uid] < window_start
    )


def test_window_scaling(results_dir):
    """Throughput and quality of the windowed algorithms across window lengths."""
    dataset = synthetic_blobs(n=WINDOW_N, m=M, seed=BENCH_SEED)
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    elements = list(dataset.stream(seed=BENCH_SEED))
    uid_positions = {element.uid: position for position, element in enumerate(elements)}

    rows = []
    headline = {"n": WINDOW_N, "k": K, "blocks": BLOCKS, "cpus": usable_cpus()}
    for window in (WINDOW_N // 8, WINDOW_N // 4, WINDOW_N // 2):
        live = elements[-window:]
        offline = FairSolution(
            greedy_fair_fill(live, constraint, dataset.metric),
            dataset.metric,
            constraint,
        )
        assert offline.is_fair

        for name, factory in (
            ("SlidingWindowFDM", SlidingWindowFDM),
            ("WindowFDM", CheckpointedWindowFDM),
        ):
            algorithm = factory(dataset.metric, constraint, window=window, blocks=BLOCKS)
            solution, seconds, queries = _run_windowed(
                algorithm, elements, query_every=window // BLOCKS
            )
            assert solution is not None and solution.is_fair
            ratio = solution.diversity / offline.diversity
            stale = _stale_pool_count(algorithm, uid_positions)
            if name == "SlidingWindowFDM":
                assert ratio >= 1.0 / APPROXIMATION_FACTOR
                assert stale == 0, "the incremental pool must be expiry-free"
                headline[f"sliding_w{window}_elements_per_s"] = round(
                    WINDOW_N / seconds, 1
                )
                headline[f"sliding_w{window}_quality_ratio"] = round(ratio, 4)
            else:
                headline[f"baseline_w{window}_elements_per_s"] = round(
                    WINDOW_N / seconds, 1
                )
                headline[f"baseline_w{window}_stale_pool"] = stale
            rows.append(
                {
                    "algorithm": name,
                    "window": window,
                    "n": WINDOW_N,
                    "queries": queries,
                    "seconds": round(seconds, 3),
                    "elements_per_s": round(WINDOW_N / seconds, 1),
                    "quality_ratio": round(ratio, 4),
                    "stale_pool": stale,
                }
            )

    print_table(rows, COLUMNS, f"windowed fair diversity at n={WINDOW_N}")
    write_csv(
        rows,
        results_dir / scaled_csv_name("bench_window", WINDOW_N, CANONICAL_N),
        columns=COLUMNS,
    )
    section = "window" if WINDOW_N >= CANONICAL_N else "window_smoke"
    record_bench_section(section, headline)
