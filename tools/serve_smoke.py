"""End-to-end smoke of ``repro serve``: real process, real HTTP, real drain.

Starts the server as a subprocess on an ephemeral port with two live
slots, then scripts a client against it:

1. ``GET /healthz`` answers ok;
2. three sessions are created — one more than ``--max-live``, so the
   LRU one is evicted to a checkpoint;
3. offers spread rows across all three sessions (touching the evicted
   one forces a transparent restore);
4. every session answers ``GET .../solution`` with a fair solution;
5. ``GET /metrics`` shows nonzero eviction/restore counters;
6. a backpressure probe overflows the bounded queue and gets a 429;
7. ``SIGTERM`` drains: the process exits 0 and every session has a
   loadable checkpoint in the state directory.

Run directly (``python tools/serve_smoke.py``) or via ``make serve-smoke``.
Exit status 0 means the serving path works end to end.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from http.client import HTTPConnection
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

K = 4
M = 2
SESSIONS = ("alpha", "beta", "gamma")


def _request(port, method, path, body=None):
    connection = HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        data = response.read()
        return response.status, (json.loads(data) if data else {})
    finally:
        connection.close()


def _expect(condition, message):
    if not condition:
        raise SystemExit(f"serve smoke: FAIL — {message}")


def _rows(count, offset=0):
    """Deterministic 2-D feature rows + alternating groups."""
    features = [[float(offset + i), float((offset + i) % 7)] for i in range(count)]
    groups = [(offset + i) % M for i in range(count)]
    return features, groups


def main() -> int:
    """Run the scripted client against a fresh server; 0 = green."""
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as scratch:
        state_dir = Path(scratch) / "state"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--state-dir", str(state_dir),
                "--max-live", "2",
                "--max-batch", "64",
                "--flush-ms", "5",
                "--max-queue", "150",
            ],
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            announce = process.stdout.readline().strip()
            _expect(
                announce.startswith("serving on http://"),
                f"unexpected announce line {announce!r}",
            )
            port = int(announce.rsplit(":", 1)[1])

            status, body = _request(port, "GET", "/healthz")
            _expect(status == 200 and body.get("status") == "ok", "healthz failed")

            # Three sessions against two live slots: alpha gets evicted.
            for name in SESSIONS:
                status, body = _request(
                    port, "POST", "/sessions",
                    {"k": K, "groups": M, "name": name},
                )
                _expect(status == 201 and body.get("name") == name,
                        f"create {name} -> {status} {body}")
            status, body = _request(port, "GET", "/healthz")
            _expect(body.get("evicted") == 1,
                    f"expected one evicted session, got {body}")

            # Offer rows to every session; touching alpha forces a restore.
            for index, name in enumerate(SESSIONS):
                features, groups = _rows(90, offset=index * 90)
                status, body = _request(
                    port, "POST", f"/sessions/{name}/offer",
                    {"features": features, "groups": groups},
                )
                _expect(status == 202 and body.get("accepted") == 90,
                        f"offer {name} -> {status} {body}")

            for name in SESSIONS:
                status, body = _request(port, "GET", f"/sessions/{name}/solution")
                _expect(status == 200 and body.get("succeeded") is True,
                        f"solution {name} -> {status} {body}")
                _expect(len(body.get("uids", [])) == K,
                        f"solution {name} has {body.get('uids')} uids")
                _expect(body.get("elements_processed") == 90,
                        f"solution {name} processed {body.get('elements_processed')}")

            status, metrics = _request(port, "GET", "/metrics")
            _expect(status == 200, "metrics endpoint failed")
            _expect(metrics.get("repro.serving.sessions.evicted", 0) >= 1,
                    "no eviction recorded in metrics")
            _expect(metrics.get("repro.serving.sessions.restored", 0) >= 1,
                    "no restore recorded in metrics")

            # Backpressure: a single giant offer overflows max_queue=150.
            features, groups = _rows(151)
            status, body = _request(
                port, "POST", "/sessions/alpha/offer",
                {"features": features, "groups": groups},
            )
            _expect(status == 429, f"expected 429, got {status} {body}")

            # Graceful drain: SIGTERM checkpoints every session, exit 0.
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
            _expect(process.returncode == 0,
                    f"server exited {process.returncode}; output:\n{output}")
            _expect("drained 3 session(s)" in output,
                    f"drain line missing from output:\n{output}")
            for name in SESSIONS:
                _expect((state_dir / f"{name}.ckpt").exists(),
                        f"missing drain checkpoint for {name}")

            # The drained checkpoints must actually resume.
            sys.path.insert(0, str(REPO_ROOT / "src"))
            import repro

            for name in SESSIONS:
                restored = repro.resume(state_dir / f"{name}.ckpt")
                _expect(restored.elements_offered == 90,
                        f"{name} checkpoint resumed at {restored.elements_offered}")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

    print("serve smoke: OK (create/offer/evict/restore/solution/429/drain)")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"serve smoke: {time.perf_counter() - start:.1f}s")
    sys.exit(code)
