#!/usr/bin/env python
"""Docstring completeness gate for the public API (pydocstyle fallback).

The docs policy for this repository is: every public module, class,
function, and method in ``repro.metrics`` and ``repro.streaming`` (and any
other path passed on the command line) carries a docstring whose first
line is a one-line summary ending in a period.

CI environments that have ``pydocstyle`` installed should prefer
``python -m pydocstyle <paths>`` (the ``docs-check`` make target tries it
first); this script is the dependency-free fallback enforcing the same
core rules with the standard library only:

* D100/D101/D102/D103-style presence checks for public objects;
* D400-style "first line ends with a period";
* private and dunder definitions (including ``__init__``) are exempt, as
  are test files — this repository follows the numpydoc convention of
  documenting constructor parameters in the class docstring, matching
  ``pydocstyle --convention=numpy`` (which likewise skips D107).

Exit status is the number of violations (0 = clean).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Paths checked when none are given on the command line.
DEFAULT_PATHS = ("src/repro/metrics", "src/repro/streaming")


def _is_public(name: str) -> bool:
    """Whether a definition name is part of the public API surface."""
    return not name.startswith("_")


def _first_line_ok(docstring: str) -> bool:
    """Whether the docstring's first line is a period-terminated summary."""
    first = docstring.strip().splitlines()[0].strip()
    return first.endswith((".", "::"))


def _walk_definitions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST, bool]]:
    """Yield ``(qualified_name, node, is_public)`` for every def/class."""
    stack: List[Tuple[ast.AST, str, bool]] = [(tree, "", True)]
    while stack:
        node, prefix, parent_public = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}{child.name}"
                public = parent_public and _is_public(child.name)
                yield name, child, public
                stack.append((child, f"{name}.", public))


def check_file(path: Path) -> List[str]:
    """Return the list of violations for one Python source file."""
    violations: List[str] = []
    tree = ast.parse(path.read_text(), filename=str(path))

    module_doc = ast.get_docstring(tree)
    if module_doc is None:
        violations.append(f"{path}:1: missing module docstring")
    elif not _first_line_ok(module_doc):
        violations.append(f"{path}:1: module docstring summary must end with a period")

    for name, node, public in _walk_definitions(tree):
        if not public:
            continue
        kind = "class" if isinstance(node, ast.ClassDef) else "function"
        doc = ast.get_docstring(node)
        if doc is None:
            violations.append(f"{path}:{node.lineno}: missing docstring on {kind} {name}")
        elif not _first_line_ok(doc):
            violations.append(
                f"{path}:{node.lineno}: docstring summary of {kind} {name} "
                f"must end with a period"
            )
    return violations


def main(argv: List[str]) -> int:
    """Check every ``.py`` file under the given paths; print violations."""
    roots = [Path(p) for p in (argv or list(DEFAULT_PATHS))]
    files: List[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))
    all_violations: List[str] = []
    for path in files:
        if path.name.startswith("test_"):
            continue
        all_violations.extend(check_file(path))
    for violation in all_violations:
        print(violation)
    print(f"{len(files)} files checked, {len(all_violations)} violation(s)")
    return min(len(all_violations), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
