"""Schema checker for ``repro.obs`` JSONL trace files.

Validates every record a :class:`repro.obs.JsonlSink` wrote:

* each line is a JSON object with ``type`` (``"span"`` or ``"event"``),
  a non-empty ``name``, numeric ``ts``/``mono`` clocks, and an ``attrs``
  object;
* spans carry a unique positive ``span_id``, a non-negative ``dur`` and
  ``depth``, and a ``parent_id`` that is null or references another span
  in the file;
* events carry a ``span_id`` that is null or references a span in the
  file, and a non-negative ``depth``.

Used by ``make trace-smoke``, which runs a traced SFDM2 solve and feeds
the resulting file through this checker.  Exit status 0 means the file
is a valid trace; 1 means at least one record is malformed (each problem
is reported with its line number).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: Fields every record must carry, with their accepted types.
_COMMON_FIELDS: Tuple[Tuple[str, tuple], ...] = (
    ("type", (str,)),
    ("name", (str,)),
    ("ts", (int, float)),
    ("mono", (int, float)),
    ("attrs", (dict,)),
)


def _check_record(line_no: int, record: Any, problems: List[str]) -> Dict[str, Any]:
    """Validate one parsed record's own fields (no cross-record checks)."""
    if not isinstance(record, dict):
        problems.append(f"line {line_no}: not a JSON object")
        return {}
    for field, types in _COMMON_FIELDS:
        if field not in record:
            problems.append(f"line {line_no}: missing {field!r}")
        elif not isinstance(record[field], types):
            problems.append(
                f"line {line_no}: {field!r} has type "
                f"{type(record[field]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    kind = record.get("type")
    if kind not in ("span", "event"):
        problems.append(f"line {line_no}: type must be 'span' or 'event', got {kind!r}")
        return record
    if not record.get("name"):
        problems.append(f"line {line_no}: empty span/event name")
    depth = record.get("depth")
    if not isinstance(depth, int) or depth < 0:
        problems.append(f"line {line_no}: depth must be a non-negative int, got {depth!r}")
    if kind == "span":
        span_id = record.get("span_id")
        if not isinstance(span_id, int) or span_id < 1:
            problems.append(
                f"line {line_no}: span_id must be a positive int, got {span_id!r}"
            )
        dur = record.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(
                f"line {line_no}: dur must be a non-negative number, got {dur!r}"
            )
        parent = record.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            problems.append(
                f"line {line_no}: parent_id must be null or an int, got {parent!r}"
            )
        error = record.get("error")
        if error is not None and not isinstance(error, str):
            problems.append(
                f"line {line_no}: error must be a string, got {error!r}"
            )
    else:
        span_id = record.get("span_id")
        if span_id is not None and not isinstance(span_id, int):
            problems.append(
                f"line {line_no}: event span_id must be null or an int, got {span_id!r}"
            )
    return record


def check_trace(path: Path) -> List[str]:
    """All schema problems found in the trace file at ``path``."""
    problems: List[str] = []
    records: List[Tuple[int, Dict[str, Any]]] = []
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        return [f"{path}: unreadable ({error})"]
    if not lines:
        return [f"{path}: empty trace (no records)"]
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            problems.append(f"line {line_no}: invalid JSON ({error})")
            continue
        records.append((line_no, _check_record(line_no, record, problems)))

    # Cross-record checks: unique span ids, resolvable references.
    span_ids = set()
    for line_no, record in records:
        if record.get("type") == "span" and isinstance(record.get("span_id"), int):
            if record["span_id"] in span_ids:
                problems.append(f"line {line_no}: duplicate span_id {record['span_id']}")
            span_ids.add(record["span_id"])
    for line_no, record in records:
        kind = record.get("type")
        ref = record.get("parent_id") if kind == "span" else record.get("span_id")
        if kind in ("span", "event") and isinstance(ref, int) and ref not in span_ids:
            field = "parent_id" if kind == "span" else "span_id"
            problems.append(
                f"line {line_no}: {field} {ref} references a span not in the file"
            )
    return problems


def main(argv=None) -> int:
    """Check each trace file; 0 = all valid, 1 = any problem."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", help="JSONL trace files to validate")
    parser.add_argument(
        "--expect-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one span with this name (repeatable)",
    )
    args = parser.parse_args(argv)

    status = 0
    for raw in args.paths:
        path = Path(raw)
        problems = check_trace(path)
        names = set()
        spans = events = 0
        if not problems:
            for line in path.read_text().splitlines():
                if not line.strip():
                    continue
                record = json.loads(line)
                names.add(record["name"])
                if record["type"] == "span":
                    spans += 1
                else:
                    events += 1
            for expected in args.expect_span:
                if expected not in names:
                    problems.append(f"no span named {expected!r} in the trace")
        if problems:
            status = 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: OK ({spans} spans, {events} events, {len(names)} names)")
    return status


if __name__ == "__main__":
    sys.exit(main())
