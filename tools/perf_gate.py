"""Perf-regression gate: fresh smoke bench vs. the committed baseline.

Runs ``benchmarks/bench_hot_paths.py`` at smoke scale into a scratch JSON
and compares the numbers against the ``hot_paths_smoke`` section committed
in ``BENCH_hot_paths.json`` at the repo root:

* **hardware-independent checks always apply** — the charged distance
  count must match the baseline exactly (the accounting is deterministic
  for a fixed seed and scale), and the store-over-object ingest speedup
  must not collapse below the baseline ratio divided by the tolerance;
* **absolute wall-clock checks are hardware-gated** (like the parallel
  bench's ≥ 4-core assertion): they only apply when the current machine
  reports the same usable CPU count the baseline was recorded on, and
  allow a ``--tolerance`` factor (default 2.5x) for scheduler noise and
  slower-but-same-shaped hardware.

Exit status 0 means no regression (or hardware mismatch, reported); 1
means a check failed.  Refresh the baseline by re-running
``make bench-hot`` (acceptance scale) and the smoke bench
(``REPRO_BENCH_HOT_N=8000 python -m pytest benchmarks/bench_hot_paths.py``)
and committing the updated JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hot_paths.json"
SMOKE_SECTION = "hot_paths_smoke"

#: Wall-clock keys compared against the baseline (seconds, lower is better).
TIMED_KEYS = (
    "sfdm2_ingest_store_s",
    "greedy_fair_fill_store_s",
    "gmm_store_s",
)


def _run_smoke_bench(smoke_n: int, scratch_json: Path) -> dict:
    """Run the hot-paths bench at smoke scale, writing to ``scratch_json``."""
    env = dict(os.environ)
    env["REPRO_BENCH_HOT_N"] = str(smoke_n)
    env["REPRO_BENCH_JSON"] = str(scratch_json)
    # The bench's own smoke-scale speedup assertion is redundant under the
    # gate (which applies a tolerance-based ratio check below) and could
    # fail on pure scheduler noise before any gating logic runs.
    env["REPRO_BENCH_HOT_NO_ASSERT"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks/bench_hot_paths.py",
        "-q",
        "--no-header",
        "-p",
        "no:cacheprovider",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if completed.returncode != 0:
        raise SystemExit(f"perf gate: smoke bench failed (exit {completed.returncode})")
    data = json.loads(scratch_json.read_text())
    section = data.get(SMOKE_SECTION)
    if section is None:
        raise SystemExit(
            f"perf gate: smoke bench did not record the {SMOKE_SECTION!r} section"
        )
    return section


def main(argv=None) -> int:
    """Compare a fresh smoke run with the committed baseline; 0 = green."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="allowed slowdown factor for wall-clock checks (default 2.5)",
    )
    args = parser.parse_args(argv)

    if not BASELINE_PATH.exists():
        raise SystemExit(f"perf gate: missing baseline {BASELINE_PATH}")
    baseline_data = json.loads(BASELINE_PATH.read_text())
    baseline = baseline_data.get(SMOKE_SECTION)
    if baseline is None:
        raise SystemExit(
            f"perf gate: baseline {BASELINE_PATH.name} has no {SMOKE_SECTION!r} section"
        )

    with tempfile.TemporaryDirectory(prefix="perf-gate-") as scratch_dir:
        fresh = _run_smoke_bench(
            int(baseline.get("n", 8000)), Path(scratch_dir) / "bench.json"
        )

    failures = []

    # Accounting is deterministic for a fixed seed/scale on any hardware.
    expected_calls = baseline.get("stream_distance_computations")
    actual_calls = fresh.get("stream_distance_computations")
    if expected_calls is not None and actual_calls != expected_calls:
        failures.append(
            f"stream distance computations changed: {actual_calls} != baseline {expected_calls}"
        )

    # The relative store-vs-object advantage must not collapse, regardless
    # of absolute machine speed.
    base_ratio = float(baseline.get("sfdm2_ingest_speedup", 1.0))
    fresh_ratio = float(fresh.get("sfdm2_ingest_speedup", 0.0))
    floor = base_ratio / args.tolerance
    if fresh_ratio < floor:
        failures.append(
            f"ingest speedup collapsed: {fresh_ratio:.2f}x < floor {floor:.2f}x "
            f"(baseline {base_ratio:.2f}x / tolerance {args.tolerance:g})"
        )

    # Absolute wall-clock: only comparable on matching hardware.
    same_hardware = fresh.get("cpus") == baseline.get("cpus")
    if same_hardware:
        for key in TIMED_KEYS:
            base_value = baseline.get(key)
            fresh_value = fresh.get(key)
            if base_value is None or fresh_value is None:
                continue
            if float(fresh_value) > float(base_value) * args.tolerance:
                failures.append(
                    f"{key}: {float(fresh_value):.4f}s > "
                    f"{float(base_value):.4f}s * {args.tolerance:g}"
                )
    else:
        print(
            f"perf gate: hardware mismatch (cpus {fresh.get('cpus')} vs baseline "
            f"{baseline.get('cpus')}); skipping absolute wall-clock checks"
        )

    if failures:
        print("perf gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "perf gate: OK "
        f"(ingest {fresh_ratio:.2f}x vs baseline {base_ratio:.2f}x, "
        f"store ingest {float(fresh.get('sfdm2_ingest_store_s', 0.0)):.3f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
