"""Perf-regression gate: fresh smoke bench vs. the committed baseline.

Runs ``benchmarks/bench_hot_paths.py`` at smoke scale into a scratch JSON
and compares the numbers against the ``hot_paths_smoke`` section committed
in ``BENCH_hot_paths.json`` at the repo root:

* **hardware-independent checks always apply** — the charged distance
  count must match the baseline exactly (the accounting is deterministic
  for a fixed seed and scale), and the store-over-object ingest speedup
  must not collapse below the baseline ratio divided by the tolerance;
* **absolute wall-clock checks are hardware-gated** (like the parallel
  bench's ≥ 4-core assertion): they only apply when the current machine
  reports the same usable CPU count the baseline was recorded on, and
  allow a ``--tolerance`` factor (default 2.5x) for scheduler noise and
  slower-but-same-shaped hardware.

The gate also covers the spatial-index layer (``benchmarks/bench_index.py``):
the committed acceptance-scale ``index`` section must show indexed counts
at or below the brute counts with at least one ≥ 2x reduction, and a fresh
smoke run of the index bench must reproduce the ``index_smoke`` evaluation
counts exactly (the accounting is deterministic for a fixed seed/scale).

And it covers the observability layer
(``benchmarks/bench_obs_overhead.py``): the committed ``obs_overhead``
section and a fresh smoke run must both show the disabled tracing path
accounting for <= 2% of the SFDM2 ingest wall-clock, with traced and
untraced runs charging identical distance counts.

And the parallel layer (``benchmarks/bench_parallel_scaling.py``): the
committed ``parallel_scaling`` / ``parallel_scaling_smoke`` sections and
a fresh smoke run must all show identical solutions across backends and
transports and a shared-memory per-worker payload strictly below the
pickle payload (both hardware-independent); when the committed
acceptance-scale section was recorded on >= 4 cores, the process+shm
speedup at the reference shard count must be at least 1.5x over serial.

And the serving layer (``benchmarks/bench_serving.py``): the committed
``serving`` / ``serving_smoke`` sections and a fresh smoke run must all
record ``eviction_identity`` true (evict/restore never changes served
answers) with a micro-batching speedup above 1x, and the fresh smoke
run must reproduce the baseline's deterministic identity-schedule
counters (offers/evictions/restores) exactly; the smoke throughput and
p99 query-latency bars apply only on matching hardware, with the usual
``--tolerance``.

And the quality layer (``benchmarks/bench_quality.py``): the committed
``quality`` / ``quality_smoke`` sections and a fresh smoke run must all
show true approximation ratios (vs the MWU + LP-rounding oracle) above
the per-algorithm floors, an MWU-vs-upper-bound certified ratio above its
floor, and a clean exact sweep (MWU within 10% of ``exact_fdm`` on every
seeded small configuration); the fresh smoke run must reproduce the
sweep's deterministic integer counters (cases, hits, counted distance
evaluations) exactly.

Exit status 0 means no regression (or hardware mismatch, reported); 1
means a check failed.  Refresh the baseline by re-running
``make bench-hot`` (acceptance scale) and the smoke bench
(``REPRO_BENCH_HOT_N=8000 python -m pytest benchmarks/bench_hot_paths.py``)
and committing the updated JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hot_paths.json"
SMOKE_SECTION = "hot_paths_smoke"
INDEX_SECTION = "index"
INDEX_SMOKE_SECTION = "index_smoke"
OBS_SECTION = "obs_overhead"
OBS_SMOKE_SECTION = "obs_overhead_smoke"
PARALLEL_SECTION = "parallel_scaling"
PARALLEL_SMOKE_SECTION = "parallel_scaling_smoke"
SERVING_SECTION = "serving"
SERVING_SMOKE_SECTION = "serving_smoke"
QUALITY_SECTION = "quality"
QUALITY_SMOKE_SECTION = "quality_smoke"

#: Hardware-independent floors on the true approximation ratios recorded
#: by the quality bench (diversity over MWU diversity, same instance and
#: stream permutation; `mwu_certified_ratio` is MWU diversity over the
#: ``2 * div(GMM)`` upper bound on the optimum).  The runs are
#: deterministic per seed/scale, so a dip below a floor is an algorithmic
#: regression, not noise.
QUALITY_RATIO_FLOORS = {
    "sfdm2_ratio": 0.55,
    "sliding_window_ratio": 0.60,
    "coreset_ratio": 0.70,
    "mwu_certified_ratio": 0.40,
}

#: Deterministic integer counters of the quality bench's exact sweep (and
#: the MWU scale run); a fresh smoke run must reproduce them exactly.
QUALITY_EXACT_KEYS = (
    "exact_cases",
    "exact_within_10pct",
    "exact_sweep_evals",
    "mwu_distance_evals",
)

#: Acceptance bar on the serving sections: batching the offer queues
#: must beat the unbatched front end by at least this factor.
SERVING_MIN_SPEEDUP = 1.0

#: Deterministic counters of the serving bench's fixed identity schedule.
SERVING_IDENTITY_KEYS = (
    "identity_offers_total",
    "identity_evictions",
    "identity_restores",
)

#: Acceptance bar on the committed acceptance-scale ``parallel_scaling``
#: section when it was recorded on multi-core hardware: the process
#: backend with the shm transport must beat serial by this factor at the
#: reference shard count.
PARALLEL_TARGET_SPEEDUP = 1.5

#: Acceptance bar on the observability sections: the disabled tracing
#: path may account for at most this share of the SFDM2 ingest time.
OBS_MAX_OVERHEAD_PCT = 2.0

#: Wall-clock keys compared against the baseline (seconds, lower is better).
TIMED_KEYS = (
    "sfdm2_ingest_store_s",
    "greedy_fair_fill_store_s",
    "gmm_store_s",
)

#: ``(brute, indexed)`` evaluation-count key pairs of the index bench
#: sections; the indexed count must never exceed the brute count.
INDEX_EVAL_PAIRS = (
    ("sfdm2_brute_evals", "sfdm2_indexed_evals"),
    ("gmm_brute_evals", "gmm_indexed_evals"),
)

#: Acceptance bar on the committed acceptance-scale `index` section: at
#: least one path must save this factor of counted distance evaluations.
INDEX_TARGET_REDUCTION = 2.0


def _run_bench(module: str, env_extra: dict, scratch_json: Path, section: str) -> dict:
    """Run one bench module at smoke scale, writing to ``scratch_json``."""
    env = dict(os.environ)
    env.update(env_extra)
    env["REPRO_BENCH_JSON"] = str(scratch_json)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        module,
        "-q",
        "--no-header",
        "-p",
        "no:cacheprovider",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if completed.returncode != 0:
        raise SystemExit(f"perf gate: {module} failed (exit {completed.returncode})")
    data = json.loads(scratch_json.read_text())
    result = data.get(section)
    if result is None:
        raise SystemExit(
            f"perf gate: {module} did not record the {section!r} section"
        )
    return result


def _run_smoke_bench(smoke_n: int, scratch_json: Path) -> dict:
    """Run the hot-paths bench at smoke scale, writing to ``scratch_json``."""
    # The bench's own smoke-scale speedup assertion is redundant under the
    # gate (which applies a tolerance-based ratio check below) and could
    # fail on pure scheduler noise before any gating logic runs.
    return _run_bench(
        "benchmarks/bench_hot_paths.py",
        {"REPRO_BENCH_HOT_N": str(smoke_n), "REPRO_BENCH_HOT_NO_ASSERT": "1"},
        scratch_json,
        SMOKE_SECTION,
    )


def _check_obs_overhead(section: dict, label: str, failures: list) -> None:
    """The disabled-path-overhead and tracing-identity checks on one section."""
    overhead = section.get("disabled_overhead_pct")
    if overhead is None:
        failures.append(f"{label}: missing disabled_overhead_pct")
    elif float(overhead) > OBS_MAX_OVERHEAD_PCT:
        failures.append(
            f"{label}: disabled tracing overhead {float(overhead):.3f}% exceeds "
            f"the {OBS_MAX_OVERHEAD_PCT:g}% bar"
        )
    untraced = section.get("stream_distance_computations")
    traced = section.get("traced_stream_distance_computations")
    if untraced is None or traced is None:
        failures.append(f"{label}: missing traced/untraced distance counts")
    elif int(traced) != int(untraced):
        failures.append(
            f"{label}: tracing changed the distance accounting "
            f"(traced {traced} != untraced {untraced})"
        )


def _check_parallel_transport(section: dict, label: str, failures: list) -> None:
    """Solution identity and the shm-beats-pickle payload claim on one section."""
    if section.get("solutions_identical") is not True:
        failures.append(
            f"{label}: cross-backend/transport solutions are not identical"
        )
    shm_bytes = section.get("shm_payload_bytes")
    pickle_bytes = section.get("pickle_payload_bytes")
    if shm_bytes is None or pickle_bytes is None:
        failures.append(f"{label}: missing shm/pickle payload byte counts")
    elif int(shm_bytes) >= int(pickle_bytes):
        failures.append(
            f"{label}: shm payload ({shm_bytes} B) does not undercut "
            f"pickle payload ({pickle_bytes} B)"
        )


def _check_serving(section: dict, label: str, failures: list) -> None:
    """Eviction identity and the micro-batching claim on one serving section."""
    if section.get("eviction_identity") is not True:
        failures.append(
            f"{label}: evicted/restored sessions diverged from resident ones"
        )
    speedup = section.get("batched_speedup")
    if speedup is None:
        failures.append(f"{label}: missing batched_speedup")
    elif float(speedup) < SERVING_MIN_SPEEDUP:
        failures.append(
            f"{label}: micro-batching speedup {float(speedup):.2f}x below "
            f"the {SERVING_MIN_SPEEDUP:g}x bar"
        )


def _check_quality(section: dict, label: str, failures: list) -> None:
    """Ratio floors and the clean exact sweep on one quality section."""
    for key, floor in QUALITY_RATIO_FLOORS.items():
        ratio = section.get(key)
        if ratio is None:
            failures.append(f"{label}: missing {key}")
        elif float(ratio) < floor:
            failures.append(
                f"{label}: {key} {float(ratio):.4f} below the {floor:g} floor"
            )
    cases = section.get("exact_cases")
    within = section.get("exact_within_10pct")
    if cases is None or within is None:
        failures.append(f"{label}: missing exact_cases/exact_within_10pct")
    elif int(within) != int(cases) or int(cases) < 1:
        failures.append(
            f"{label}: MWU within 10% of exact on only {within}/{cases} configs"
        )


def _check_index_counts(section: dict, label: str, failures: list) -> None:
    """The never-more-evaluations invariant over one index bench section."""
    for brute_key, indexed_key in INDEX_EVAL_PAIRS:
        brute = section.get(brute_key)
        indexed = section.get(indexed_key)
        if brute is None or indexed is None:
            failures.append(f"{label}: missing {brute_key}/{indexed_key}")
            continue
        if int(indexed) > int(brute):
            failures.append(
                f"{label}: indexed charged MORE evaluations than brute "
                f"({indexed_key}={indexed} > {brute_key}={brute})"
            )


def main(argv=None) -> int:
    """Compare a fresh smoke run with the committed baseline; 0 = green."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.5,
        help="allowed slowdown factor for wall-clock checks (default 2.5)",
    )
    args = parser.parse_args(argv)

    if not BASELINE_PATH.exists():
        raise SystemExit(f"perf gate: missing baseline {BASELINE_PATH}")
    baseline_data = json.loads(BASELINE_PATH.read_text())
    baseline = baseline_data.get(SMOKE_SECTION)
    if baseline is None:
        raise SystemExit(
            f"perf gate: baseline {BASELINE_PATH.name} has no {SMOKE_SECTION!r} section"
        )

    index_baseline = baseline_data.get(INDEX_SECTION)
    index_smoke_baseline = baseline_data.get(INDEX_SMOKE_SECTION)
    if index_baseline is None or index_smoke_baseline is None:
        raise SystemExit(
            f"perf gate: baseline {BASELINE_PATH.name} is missing the "
            f"{INDEX_SECTION!r}/{INDEX_SMOKE_SECTION!r} sections; run "
            f"`make bench-index` and the smoke bench, then commit the JSON"
        )

    obs_baseline = baseline_data.get(OBS_SECTION)
    obs_smoke_baseline = baseline_data.get(OBS_SMOKE_SECTION)
    if obs_baseline is None or obs_smoke_baseline is None:
        raise SystemExit(
            f"perf gate: baseline {BASELINE_PATH.name} is missing the "
            f"{OBS_SECTION!r}/{OBS_SMOKE_SECTION!r} sections; run "
            f"`make bench-obs` and the smoke bench, then commit the JSON"
        )

    parallel_baseline = baseline_data.get(PARALLEL_SECTION)
    parallel_smoke_baseline = baseline_data.get(PARALLEL_SMOKE_SECTION)
    if parallel_baseline is None or parallel_smoke_baseline is None:
        raise SystemExit(
            f"perf gate: baseline {BASELINE_PATH.name} is missing the "
            f"{PARALLEL_SECTION!r}/{PARALLEL_SMOKE_SECTION!r} sections; run "
            f"`make bench-parallel` and the smoke bench, then commit the JSON"
        )

    serving_baseline = baseline_data.get(SERVING_SECTION)
    serving_smoke_baseline = baseline_data.get(SERVING_SMOKE_SECTION)
    if serving_baseline is None or serving_smoke_baseline is None:
        raise SystemExit(
            f"perf gate: baseline {BASELINE_PATH.name} is missing the "
            f"{SERVING_SECTION!r}/{SERVING_SMOKE_SECTION!r} sections; run "
            f"`make bench-serving` and the smoke bench, then commit the JSON"
        )

    quality_baseline = baseline_data.get(QUALITY_SECTION)
    quality_smoke_baseline = baseline_data.get(QUALITY_SMOKE_SECTION)
    if quality_baseline is None or quality_smoke_baseline is None:
        raise SystemExit(
            f"perf gate: baseline {BASELINE_PATH.name} is missing the "
            f"{QUALITY_SECTION!r}/{QUALITY_SMOKE_SECTION!r} sections; run "
            f"`make bench-quality` and the smoke bench, then commit the JSON"
        )

    with tempfile.TemporaryDirectory(prefix="perf-gate-") as scratch_dir:
        fresh = _run_smoke_bench(
            int(baseline.get("n", 8000)), Path(scratch_dir) / "bench.json"
        )
        fresh_index = _run_bench(
            "benchmarks/bench_index.py",
            {"REPRO_BENCH_INDEX_N": str(index_smoke_baseline.get("n", 4000))},
            Path(scratch_dir) / "bench_index.json",
            INDEX_SMOKE_SECTION,
        )
        fresh_obs = _run_bench(
            "benchmarks/bench_obs_overhead.py",
            {
                "REPRO_BENCH_OBS_N": str(obs_smoke_baseline.get("n", 8000)),
                "REPRO_BENCH_HOT_NO_ASSERT": "1",
            },
            Path(scratch_dir) / "bench_obs.json",
            OBS_SMOKE_SECTION,
        )
        fresh_parallel = _run_bench(
            "benchmarks/bench_parallel_scaling.py::test_parallel_scaling",
            {
                "REPRO_BENCH_PARALLEL_N": str(
                    parallel_smoke_baseline.get("n", 4000)
                ),
            },
            Path(scratch_dir) / "bench_parallel.json",
            PARALLEL_SMOKE_SECTION,
        )
        fresh_serving = _run_bench(
            "benchmarks/bench_serving.py",
            {
                "REPRO_BENCH_SERVING_ROWS": str(
                    serving_smoke_baseline.get("rows", 4000)
                ),
                "REPRO_BENCH_SERVING_SESSIONS": str(
                    serving_smoke_baseline.get("sessions", 8)
                ),
            },
            Path(scratch_dir) / "bench_serving.json",
            SERVING_SMOKE_SECTION,
        )
        fresh_quality = _run_bench(
            "benchmarks/bench_quality.py",
            {
                "REPRO_BENCH_QUALITY_N": str(quality_smoke_baseline.get("n", 2000)),
            },
            Path(scratch_dir) / "bench_quality.json",
            QUALITY_SMOKE_SECTION,
        )

    failures = []

    # --- Observability layer -----------------------------------------
    # Committed acceptance-scale and committed smoke sections carry the
    # recorded claim; the fresh smoke run re-proves it on this machine.
    _check_obs_overhead(obs_baseline, OBS_SECTION, failures)
    _check_obs_overhead(obs_smoke_baseline, OBS_SMOKE_SECTION, failures)
    _check_obs_overhead(fresh_obs, f"{OBS_SMOKE_SECTION} (fresh)", failures)
    expected_obs_calls = obs_smoke_baseline.get("stream_distance_computations")
    actual_obs_calls = fresh_obs.get("stream_distance_computations")
    if expected_obs_calls is not None and actual_obs_calls != expected_obs_calls:
        failures.append(
            f"{OBS_SMOKE_SECTION}.stream_distance_computations changed: "
            f"{actual_obs_calls} != baseline {expected_obs_calls}"
        )

    # --- Index layer -------------------------------------------------
    # The committed acceptance-scale section carries the headline claim:
    # strictly fewer evaluations everywhere, >= 2x on at least one path.
    _check_index_counts(index_baseline, INDEX_SECTION, failures)
    best_reduction = max(
        float(index_baseline.get("sfdm2_reduction", 0.0)),
        float(index_baseline.get("gmm_reduction", 0.0)),
    )
    if best_reduction < INDEX_TARGET_REDUCTION:
        failures.append(
            f"{INDEX_SECTION}: best recorded reduction {best_reduction:.2f}x "
            f"below the {INDEX_TARGET_REDUCTION:g}x acceptance bar"
        )
    # The fresh smoke run re-proves the invariant on this machine, and its
    # deterministic counts must match the committed smoke baseline exactly.
    _check_index_counts(fresh_index, f"{INDEX_SMOKE_SECTION} (fresh)", failures)
    for key in ("sfdm2_brute_evals", "sfdm2_indexed_evals",
                "gmm_brute_evals", "gmm_indexed_evals"):
        expected = index_smoke_baseline.get(key)
        actual = fresh_index.get(key)
        if expected is not None and actual != expected:
            failures.append(
                f"{INDEX_SMOKE_SECTION}.{key} changed: {actual} != baseline {expected}"
            )

    # --- Parallel layer ----------------------------------------------
    # Solution identity across backends and transports, and the payload
    # claim (descriptors beat column pickles), hold on any hardware; the
    # committed sections carry the recorded claim and the fresh smoke run
    # re-proves both on this machine.
    _check_parallel_transport(parallel_baseline, PARALLEL_SECTION, failures)
    _check_parallel_transport(
        parallel_smoke_baseline, PARALLEL_SMOKE_SECTION, failures
    )
    _check_parallel_transport(
        fresh_parallel, f"{PARALLEL_SMOKE_SECTION} (fresh)", failures
    )
    # The pickled-store payload is deterministic for a fixed n/dim/plan.
    expected_payload = parallel_smoke_baseline.get("pickle_payload_bytes")
    actual_payload = fresh_parallel.get("pickle_payload_bytes")
    if expected_payload is not None and actual_payload != expected_payload:
        failures.append(
            f"{PARALLEL_SMOKE_SECTION}.pickle_payload_bytes changed: "
            f"{actual_payload} != baseline {expected_payload}"
        )
    # Wall-clock speedup is only meaningful where true CPU parallelism
    # exists: gate the committed acceptance-scale claim on the hardware it
    # was recorded on.
    if int(parallel_baseline.get("cpus", 1)) >= 4:
        reference = str(parallel_baseline.get("shards", 4))
        recorded = (
            parallel_baseline.get("per_shards", {}).get(reference, {}).get("speedup")
        )
        if recorded is None:
            failures.append(
                f"{PARALLEL_SECTION}: missing per_shards[{reference!r}].speedup"
            )
        elif float(recorded) < PARALLEL_TARGET_SPEEDUP:
            failures.append(
                f"{PARALLEL_SECTION}: process+shm speedup {float(recorded):.2f}x "
                f"below the {PARALLEL_TARGET_SPEEDUP:g}x multi-core bar"
            )

    # --- Serving layer -----------------------------------------------
    # Eviction identity and the micro-batching win hold on any hardware;
    # the fixed identity schedule's counters are deterministic and must
    # reproduce exactly.  Throughput/latency compare only on matching
    # hardware.
    _check_serving(serving_baseline, SERVING_SECTION, failures)
    _check_serving(serving_smoke_baseline, SERVING_SMOKE_SECTION, failures)
    _check_serving(fresh_serving, f"{SERVING_SMOKE_SECTION} (fresh)", failures)
    for key in SERVING_IDENTITY_KEYS:
        expected = serving_smoke_baseline.get(key)
        actual = fresh_serving.get(key)
        if expected is not None and actual != expected:
            failures.append(
                f"{SERVING_SMOKE_SECTION}.{key} changed: "
                f"{actual} != baseline {expected}"
            )
    if fresh_serving.get("cpus") == serving_smoke_baseline.get("cpus"):
        base_rate = serving_smoke_baseline.get("offers_per_s")
        fresh_rate = fresh_serving.get("offers_per_s")
        if base_rate and fresh_rate and (
            float(fresh_rate) < float(base_rate) / args.tolerance
        ):
            failures.append(
                f"{SERVING_SMOKE_SECTION}.offers_per_s collapsed: "
                f"{float(fresh_rate):.0f}/s < baseline {float(base_rate):.0f}/s "
                f"/ tolerance {args.tolerance:g}"
            )
        base_p99 = serving_smoke_baseline.get("p99_query_ms")
        fresh_p99 = fresh_serving.get("p99_query_ms")
        if base_p99 and fresh_p99 and (
            float(fresh_p99) > float(base_p99) * args.tolerance
        ):
            failures.append(
                f"{SERVING_SMOKE_SECTION}.p99_query_ms regressed: "
                f"{float(fresh_p99):.1f}ms > baseline {float(base_p99):.1f}ms "
                f"* {args.tolerance:g}"
            )
    else:
        print(
            f"perf gate: hardware mismatch for serving "
            f"(cpus {fresh_serving.get('cpus')} vs baseline "
            f"{serving_smoke_baseline.get('cpus')}); skipping "
            f"throughput/latency checks"
        )

    # --- Quality layer -----------------------------------------------
    # True-approximation-ratio floors and the clean exact sweep hold on
    # any hardware; the sweep's integer counters are deterministic per
    # seed/scale and must reproduce exactly on the fresh smoke run.
    _check_quality(quality_baseline, QUALITY_SECTION, failures)
    _check_quality(quality_smoke_baseline, QUALITY_SMOKE_SECTION, failures)
    _check_quality(fresh_quality, f"{QUALITY_SMOKE_SECTION} (fresh)", failures)
    for key in QUALITY_EXACT_KEYS:
        expected = quality_smoke_baseline.get(key)
        actual = fresh_quality.get(key)
        if expected is not None and actual != expected:
            failures.append(
                f"{QUALITY_SMOKE_SECTION}.{key} changed: "
                f"{actual} != baseline {expected}"
            )

    # Accounting is deterministic for a fixed seed/scale on any hardware.
    expected_calls = baseline.get("stream_distance_computations")
    actual_calls = fresh.get("stream_distance_computations")
    if expected_calls is not None and actual_calls != expected_calls:
        failures.append(
            f"stream distance computations changed: {actual_calls} != baseline {expected_calls}"
        )

    # The relative store-vs-object advantage must not collapse, regardless
    # of absolute machine speed.
    base_ratio = float(baseline.get("sfdm2_ingest_speedup", 1.0))
    fresh_ratio = float(fresh.get("sfdm2_ingest_speedup", 0.0))
    floor = base_ratio / args.tolerance
    if fresh_ratio < floor:
        failures.append(
            f"ingest speedup collapsed: {fresh_ratio:.2f}x < floor {floor:.2f}x "
            f"(baseline {base_ratio:.2f}x / tolerance {args.tolerance:g})"
        )

    # Absolute wall-clock: only comparable on matching hardware.
    same_hardware = fresh.get("cpus") == baseline.get("cpus")
    if same_hardware:
        for key in TIMED_KEYS:
            base_value = baseline.get(key)
            fresh_value = fresh.get(key)
            if base_value is None or fresh_value is None:
                continue
            if float(fresh_value) > float(base_value) * args.tolerance:
                failures.append(
                    f"{key}: {float(fresh_value):.4f}s > "
                    f"{float(base_value):.4f}s * {args.tolerance:g}"
                )
    else:
        print(
            f"perf gate: hardware mismatch (cpus {fresh.get('cpus')} vs baseline "
            f"{baseline.get('cpus')}); skipping absolute wall-clock checks"
        )

    if failures:
        print("perf gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "perf gate: OK "
        f"(ingest {fresh_ratio:.2f}x vs baseline {base_ratio:.2f}x, "
        f"store ingest {float(fresh.get('sfdm2_ingest_store_s', 0.0)):.3f}s, "
        f"index reduction {best_reduction:.2f}x at acceptance scale, "
        f"tracing overhead {float(fresh_obs.get('disabled_overhead_pct', 0.0)):.3f}%, "
        f"shm payload {float(fresh_parallel.get('payload_reduction', 0.0)):.0f}x "
        f"below pickle, "
        f"serving batched {float(fresh_serving.get('batched_speedup', 0.0)):.1f}x "
        f"with eviction identity, "
        f"MWU exact sweep {fresh_quality.get('exact_within_10pct', 0)}"
        f"/{fresh_quality.get('exact_cases', 0)} within 10%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
