"""Line-coverage gate: measure test coverage of ``src/repro`` and enforce a floor.

Preferred tool: ``pytest-cov``.  When it is importable the gate simply runs
the suite under it with ``--cov=repro --cov-fail-under=<threshold>``.  The
pinned offline environment ships neither ``pytest-cov`` nor ``coverage``,
so the gate falls back to a standard-library tracer: it installs a
``sys.settrace`` hook filtered to files under ``src/repro`` (call events
outside the package return ``None``, so the per-line cost lands only on
package frames), runs pytest in-process, and compares the executed lines
against the executable lines of every package module (the union of
``co_lines()`` over each file's compiled code objects).

The suite runs without ``@pytest.mark.slow`` tests by default (they are
subprocess-heavy example scripts that contribute no in-process coverage);
pass ``--all`` to include them.

The threshold is a **ratchet**: it is pinned at the currently measured
percentage (rounded down) and may only be raised as coverage improves —
``make ci`` fails when a PR drops below it.  Raise ``THRESHOLD`` whenever
measured coverage has durably gone up.

Exit status 0 means coverage is at or above the threshold (and the suite
passed); 1 means the suite failed or coverage regressed.
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
PACKAGE = SRC / "repro"

#: Pinned line-coverage floor (percent).  Ratchet: only ever raise it.
#: Measured 94.1% when pinned (index layer + differential suites); the
#: margin absorbs thread-timing noise in the backend tests, not
#: structural regressions.
THRESHOLD = 93.5

#: Pytest selection the gate measures (slow tests excluded by default).
PYTEST_ARGS = ["tests", "-q", "-p", "no:cacheprovider"]


def _package_files() -> list[Path]:
    """Every Python source file of the measured package."""
    return sorted(PACKAGE.rglob("*.py"))


def _executable_lines(path: Path) -> set[int]:
    """Line numbers that can execute in ``path`` (union over code objects)."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for *_, line in obj.co_lines() if line)
        stack.extend(const for const in obj.co_consts if hasattr(const, "co_lines"))
    return lines


def _run_with_pytest_cov(threshold: float, pytest_args: list[str]) -> int:
    """Run the suite under pytest-cov (preferred when installed)."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        *pytest_args,
        "--cov=repro",
        f"--cov-fail-under={threshold:g}",
    ]
    merged = dict(os.environ)
    merged["PYTHONPATH"] = str(SRC) + (
        os.pathsep + merged["PYTHONPATH"] if merged.get("PYTHONPATH") else ""
    )
    return subprocess.run(command, cwd=ROOT, env=merged).returncode


def _run_with_tracer(pytest_args: list[str]) -> tuple[int, dict[str, set[int]]]:
    """Run pytest in-process under a settrace hook; return (exit, hits)."""
    prefix = str(PACKAGE)
    hits: dict[str, set[int]] = {}

    def _local(frame, event, arg):
        if event == "line":
            hits.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
        return _local

    def _global(frame, event, arg):
        if event == "call" and frame.f_code.co_filename.startswith(prefix):
            return _local
        return None

    import pytest

    threading.settrace(_global)
    sys.settrace(_global)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return int(exit_code), hits


def main(argv=None) -> int:
    """Measure coverage and enforce the pinned floor; 0 = green."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=THRESHOLD,
        help=f"minimum accepted line coverage percent (default {THRESHOLD:g})",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="include @pytest.mark.slow tests (default: excluded)",
    )
    parser.add_argument(
        "--report",
        type=int,
        default=10,
        metavar="N",
        help="print the N least-covered files (default 10)",
    )
    args = parser.parse_args(argv)

    pytest_args = list(PYTEST_ARGS)
    if not args.all:
        pytest_args += ["-m", "not slow"]

    if importlib.util.find_spec("pytest_cov") is not None:
        return _run_with_pytest_cov(args.threshold, pytest_args)

    print("coverage gate: pytest-cov unavailable; using the stdlib tracer fallback")
    sys.path.insert(0, str(SRC))
    exit_code, hits = _run_with_tracer(pytest_args)
    if exit_code != 0:
        print(f"coverage gate: test suite failed (exit {exit_code})")
        return 1

    total_executable = 0
    total_covered = 0
    per_file = []
    for path in _package_files():
        executable = _executable_lines(path)
        if not executable:
            continue
        covered = hits.get(str(path), set()) & executable
        total_executable += len(executable)
        total_covered += len(covered)
        per_file.append(
            (100.0 * len(covered) / len(executable), path.relative_to(ROOT), len(executable))
        )

    percent = 100.0 * total_covered / total_executable if total_executable else 0.0
    print(
        f"coverage gate: {percent:.1f}% of {total_executable} executable lines "
        f"({total_covered} covered) across {len(per_file)} files"
    )
    if args.report:
        print(f"  least-covered files (top {args.report}):")
        for file_percent, rel_path, executable_count in sorted(per_file)[: args.report]:
            print(f"    {file_percent:5.1f}%  {rel_path}  ({executable_count} lines)")

    if percent < args.threshold:
        print(
            f"coverage gate: FAIL — {percent:.1f}% is below the pinned "
            f"threshold {args.threshold:g}%"
        )
        return 1
    print(f"coverage gate: OK (threshold {args.threshold:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
