"""Public-API surface gate: snapshot exported names + signatures, fail on drift.

The public surface of the package is every name in ``repro.__all__`` plus
every name in ``repro.api.__all__``.  For each export the tool records its
kind and — for callables — its signature (for classes: the constructor
signature and the signatures of all public methods).  The snapshot is the
tracked ``API_SURFACE.json`` at the repository root:

* ``python tools/check_api_surface.py`` regenerates the snapshot in memory
  and fails (exit 1, with a readable diff) when it differs from the tracked
  file — this runs in ``make ci``, so the public API cannot drift silently;
* ``python tools/check_api_surface.py --write`` refreshes the tracked file
  (``make api-surface``) for intentional changes, which then show up in
  review as a JSON diff.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = ROOT / "API_SURFACE.json"
sys.path.insert(0, str(ROOT / "src"))


def _signature_of(obj) -> str:
    """``str(inspect.signature(obj))``, or a placeholder when unavailable."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _describe_class(cls) -> dict:
    """Constructor signature plus public method/property signatures."""
    methods = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            methods[name] = "<property>"
        elif isinstance(member, staticmethod):
            methods[name] = "static" + _signature_of(member.__func__)
        elif isinstance(member, classmethod):
            methods[name] = "class" + _signature_of(member.__func__)
        elif callable(member):
            methods[name] = _signature_of(member)
    return {
        "kind": "class",
        "init": _signature_of(cls.__init__),
        "methods": methods,
    }


def _describe(obj) -> dict:
    """JSON-friendly description of one exported object."""
    if inspect.isclass(obj):
        return _describe_class(obj)
    if callable(obj):
        return {"kind": "function", "signature": _signature_of(obj)}
    return {"kind": "value", "type": type(obj).__name__}


def build_surface() -> dict:
    """The current public surface of ``repro`` and ``repro.api``."""
    import repro
    import repro.api

    surface = {}
    for module_name, module in (("repro", repro), ("repro.api", repro.api)):
        exports = {}
        for name in sorted(set(module.__all__)):
            exports[name] = _describe(getattr(module, name))
        surface[module_name] = exports
    return surface


def _flatten(surface: dict, prefix: str = "") -> dict:
    """Flatten the nested surface into dotted-path -> leaf string."""
    flat = {}
    for key, value in surface.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, prefix=f"{path}."))
        else:
            flat[path] = value
    return flat


def diff_surfaces(tracked: dict, current: dict) -> list:
    """Human-readable drift lines between two surface snapshots."""
    old, new = _flatten(tracked), _flatten(current)
    lines = []
    for path in sorted(set(old) - set(new)):
        lines.append(f"removed: {path} (was {old[path]!r})")
    for path in sorted(set(new) - set(old)):
        lines.append(f"added:   {path} = {new[path]!r}")
    for path in sorted(set(old) & set(new)):
        if old[path] != new[path]:
            lines.append(f"changed: {path}: {old[path]!r} -> {new[path]!r}")
    return lines


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write",
        action="store_true",
        help="refresh the tracked API_SURFACE.json instead of checking it",
    )
    args = parser.parse_args(argv)

    current = build_surface()
    if args.write:
        SNAPSHOT.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"wrote {SNAPSHOT}")
        return 0

    if not SNAPSHOT.exists():
        print(f"missing {SNAPSHOT}; run `make api-surface` to create it", file=sys.stderr)
        return 1
    tracked = json.loads(SNAPSHOT.read_text())
    drift = diff_surfaces(tracked, current)
    if drift:
        print("public API surface drifted from API_SURFACE.json:", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        print(
            "intentional? run `make api-surface` and commit the refreshed snapshot",
            file=sys.stderr,
        )
        return 1
    print(f"API surface OK ({sum(len(v) for v in tracked.values())} exports)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
