# Developer entry points. All targets assume the repository root as CWD and
# use the src layout directly (no install needed).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast cov golden bench-smoke bench-batch bench-parallel bench-hot bench-window bench-index bench-obs bench-serving bench-quality serve-smoke trace-smoke perf-gate docs-check api-check api-surface ci

## Run the full test suite (tier-1 gate).
test:
	$(PYTHON) -m pytest -x -q

## Run the test suite without @pytest.mark.slow tests (subprocess-heavy
## example scripts) — the quick local iteration loop.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## Line-coverage gate: run the (fast) suite under pytest-cov when
## installed, or the stdlib settrace fallback otherwise, and fail below
## the pinned threshold in tools/coverage_gate.py (a ratchet: raise it as
## coverage improves, never lower it).
cov:
	$(PYTHON) tools/coverage_gate.py

## Regenerate the golden-pin file (tests/golden/solutions.json) after an
## intentional algorithm behaviour change; commit the JSON diff.
golden:
	$(PYTHON) tests/integration/test_golden_solutions.py --write

## Small-scale end-to-end benchmark pass: the batch-throughput and
## parallel-scaling benches at a reduced n plus one representative figure
## bench. The full acceptance runs are `make bench-batch` and
## `make bench-parallel`.
bench-smoke:
	REPRO_BENCH_BATCH_N=5000 $(PYTHON) -m pytest benchmarks/bench_batch_throughput.py -q -s
	REPRO_BENCH_PARALLEL_N=4000 $(PYTHON) -m pytest benchmarks/bench_parallel_scaling.py -q -s
	REPRO_BENCH_WINDOW_N=6000 $(PYTHON) -m pytest benchmarks/bench_window.py -q -s
	REPRO_BENCH_INDEX_N=4000 $(PYTHON) -m pytest benchmarks/bench_index.py -q -s
	REPRO_BENCH_OBS_N=8000 $(PYTHON) -m pytest benchmarks/bench_obs_overhead.py -q -s
	REPRO_BENCH_SERVING_ROWS=4000 $(PYTHON) -m pytest benchmarks/bench_serving.py -q -s
	REPRO_BENCH_QUALITY_N=2000 $(PYTHON) -m pytest benchmarks/bench_quality.py -q -s
	REPRO_BENCH_N=500 $(PYTHON) -m pytest benchmarks/bench_fig7_time_vs_k.py -q -s

## Acceptance-scale batch engine benchmark (SFDM2, n = 50_000, >= 5x).
bench-batch:
	$(PYTHON) -m pytest benchmarks/bench_batch_throughput.py -q -s

## Acceptance-scale parallel engine benchmark (ParallelFDM, n = 100_000:
## per-shard-count process+shm vs serial scan, cross-backend/transport
## solution identity, and per-worker bytes shipped — the shm descriptor
## payload must undercut the pickled-store payload at every scale; the
## >= 2.5x process-over-serial assertion applies on machines with >= 4
## usable cores). Refreshes the `parallel_scaling` section of
## BENCH_hot_paths.json; the smoke run (`make bench-smoke` / `make ci`)
## refreshes `parallel_scaling_smoke`, which the perf gate re-proves.
bench-parallel:
	$(PYTHON) -m pytest benchmarks/bench_parallel_scaling.py -q -s

## Acceptance-scale columnar-store benchmark (SFDM2 ingest store vs object
## path at n = 100_000, >= 3x, plus post-processing and baseline hot
## paths). Refreshes the `hot_paths` section of BENCH_hot_paths.json.
bench-hot:
	$(PYTHON) -m pytest benchmarks/bench_hot_paths.py -q -s

## Acceptance-scale windowing benchmark (SlidingWindowFDM vs the
## checkpointed baseline at n = 30_000: throughput under a per-block query
## schedule, quality ratio vs offline-on-window, stale-pool counts).
## Refreshes the `window` section of BENCH_hot_paths.json.
bench-window:
	$(PYTHON) -m pytest benchmarks/bench_window.py -q -s

## Acceptance-scale spatial-index benchmark (SFDM2 + GMM, indexed vs
## brute kernels at n = 100_000: identical solutions, >= 2x fewer counted
## distance evaluations on SFDM2). Refreshes the `index` section of
## BENCH_hot_paths.json.
bench-index:
	$(PYTHON) -m pytest benchmarks/bench_index.py -q -s

## Acceptance-scale observability-overhead benchmark (disabled tracing
## path <= 2% of SFDM2 ingest at n = 100_000; traced and untraced runs
## byte-identical). Refreshes the `obs_overhead` section of
## BENCH_hot_paths.json.
bench-obs:
	$(PYTHON) -m pytest benchmarks/bench_obs_overhead.py -q -s

## Acceptance-scale serving benchmark (HTTP load generation over 100_000
## rows across 8 sessions: sustained offers/s, p99 solution-query
## latency, micro-batched vs unbatched front end, plus the always-on
## eviction-identity schedule). Refreshes the `serving` section of
## BENCH_hot_paths.json; the smoke run (`make bench-smoke` / `make ci`)
## refreshes `serving_smoke`, which the perf gate re-proves.
bench-serving:
	$(PYTHON) -m pytest benchmarks/bench_serving.py -q -s

## Acceptance-scale quality benchmark (true approximation ratios vs the
## MWU + LP-rounding oracle at n = 10_000: SFDM2, SlidingWindowFDM, and
## the coreset pipeline scored against the near-exact fair optimum, plus
## the seeded exact sweep proving MWU within 10% of exact_fdm on every
## small configuration). Refreshes the `quality` section of
## BENCH_hot_paths.json; the smoke run (`make bench-smoke` / `make ci`)
## refreshes `quality_smoke`, which the perf gate re-proves.
bench-quality:
	$(PYTHON) -m pytest benchmarks/bench_quality.py -q -s

## Serving smoke test: start `repro serve` on an ephemeral port and run a
## scripted client through the full lifecycle — create sessions past the
## live bound (forcing an eviction), offer rows (forcing a restore),
## query solutions, overflow the bounded queue (429), then SIGTERM and
## assert a clean drain with resumable checkpoints.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## Trace smoke test: run one traced SFDM2 solve through the CLI and
## validate the emitted JSONL against the span schema + taxonomy
## (tools/check_trace.py).
trace-smoke:
	$(PYTHON) -m repro run --dataset synthetic-m2 --algorithm SFDM2 -k 6 \
		--n 400 --batch-size 64 --trace-out /tmp/repro_trace_smoke.jsonl >/dev/null
	$(PYTHON) tools/check_trace.py /tmp/repro_trace_smoke.jsonl \
		--expect-span run --expect-span ingest --expect-span ingest.chunk \
		--expect-span postprocess

## Perf-regression gate: fresh smoke run of the hot-path bench compared
## against the committed BENCH_hot_paths.json baseline (wall-clock checks
## are hardware-gated; accounting and speedup-ratio checks always apply).
perf-gate:
	$(PYTHON) tools/perf_gate.py

## Docstring completeness gate for the public API.
##
## Preferred tool: pydocstyle (numpy convention). It is not available in the
## pinned offline environment, so the target falls back to
## tools/check_docstrings.py, which enforces the same core rules (public
## docstring presence + period-terminated summaries; __init__ exempt per the
## numpydoc convention) with the standard library only.
docs-check:
	@$(PYTHON) -c "import pydocstyle" 2>/dev/null \
		&& $(PYTHON) -m pydocstyle --convention=numpy src/repro/metrics src/repro/streaming src/repro/parallel \
		|| $(PYTHON) tools/check_docstrings.py src/repro

## Public-API drift gate: the exported names and signatures of `repro` and
## `repro.api` must match the tracked API_SURFACE.json snapshot.
api-check:
	$(PYTHON) tools/check_api_surface.py

## Refresh the tracked API_SURFACE.json after an intentional API change.
api-surface:
	$(PYTHON) tools/check_api_surface.py --write

## One-command PR gate: tests, docstring completeness, API-surface drift,
## the line-coverage gate, the smoke-scale benchmark pass, the traced-run
## schema smoke, the serving end-to-end smoke, and the perf-regression
## gate.
ci: test docs-check api-check cov bench-smoke trace-smoke serve-smoke perf-gate
