"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` cannot
fetch build dependencies), and registers the repository's test markers.
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def pytest_configure(config):
    """Register the repository's custom markers."""
    config.addinivalue_line(
        "markers",
        "slow: long-running test (excluded by `make test-fast` and the coverage gate)",
    )
