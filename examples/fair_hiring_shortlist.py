"""Scenario: building a demographically balanced, maximally diverse shortlist.

This mirrors the paper's motivating recruitment/banking scenario: a stream
of candidate profiles (here the Adult census surrogate: six numeric
attributes such as income-related features) arrives one profile at a time,
and a reviewer wants a shortlist of k profiles that

* covers the attribute space as uniformly as possible (max-min diversity —
  no two shortlisted profiles are near-duplicates), and
* contains an equal number of profiles from each sex group, or a number
  proportional to the group's share of the population.

Run with::

    python examples/fair_hiring_shortlist.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import (  # noqa: E402
    SFDM1,
    adult_surrogate,
    equal_representation,
    proportional_representation,
)
from repro.evaluation.measures import optimum_upper_bound  # noqa: E402
from repro.evaluation.reporting import format_table  # noqa: E402


def main() -> None:
    shortlist_size = 12
    dataset = adult_surrogate(n=20_000, group_by="sex", seed=3)
    sizes = dataset.group_sizes()
    names = dataset.group_names
    print(
        "candidate pool:",
        ", ".join(f"{names.get(g, g)}: {count}" for g, count in sorted(sizes.items())),
    )

    constraints = {
        "equal representation": equal_representation(shortlist_size, sizes.keys()),
        "proportional representation": proportional_representation(shortlist_size, sizes),
    }

    rows = []
    for label, constraint in constraints.items():
        result = SFDM1(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=11))
        shortlist = result.solution
        rows.append(
            {
                "quota rule": label,
                "quotas": str(constraint.quotas),
                "diversity": shortlist.diversity,
                "fair": shortlist.is_fair,
                "profiles stored": result.stats.peak_stored_elements,
                "update time (us)": result.stats.average_update_seconds * 1e6,
            }
        )

    print()
    print(format_table(rows, title=f"Fair shortlist of {shortlist_size} profiles (SFDM1)"))

    upper = optimum_upper_bound(dataset.elements[:2_000], dataset.metric, shortlist_size)
    print()
    print(
        "For scale: 2 * div(GMM) on a 2 000-profile sample (an upper bound on the "
        f"fair optimum) is {upper:.3f}."
    )


if __name__ == "__main__":
    main()
