"""Scenario: a genre-balanced, topically diverse playlist from a song stream.

This exercises the paper's hardest experimental setting (Lyrics: angular
distance over LDA topic vectors, m = 15 genres).  A music service streams
its catalogue once and wants a playlist of k songs such that

* every genre contributes roughly equally (group fairness over 15 genres),
* no two songs are topically near-identical (max-min diversity under the
  angular metric).

Only SFDM2 and FairFlow handle m > 2; the example reproduces the paper's
finding that SFDM2's playlist is markedly more diverse.

Run with::

    python examples/diverse_topic_playlist.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import SFDM2, equal_representation, fair_flow, lyrics_surrogate  # noqa: E402
from repro.evaluation.reporting import format_table  # noqa: E402


def main() -> None:
    playlist_size = 30
    dataset = lyrics_surrogate(n=8_000, seed=5)
    genres = dataset.group_sizes()
    print(f"catalogue: {dataset.size} songs across {len(genres)} genres")

    constraint = equal_representation(playlist_size, genres.keys())

    sfdm2 = SFDM2(dataset.metric, constraint, epsilon=0.05).run(dataset.stream(seed=2))
    flow = fair_flow(dataset.elements, dataset.metric, constraint)

    rows = [
        {
            "algorithm": "SFDM2 (streaming)",
            "diversity (radians)": sfdm2.diversity,
            "fair": sfdm2.solution.is_fair,
            "songs stored": sfdm2.stats.peak_stored_elements,
            "time_s": sfdm2.stats.total_seconds,
        },
        {
            "algorithm": "FairFlow (offline)",
            "diversity (radians)": flow.diversity,
            "fair": flow.solution.is_fair,
            "songs stored": flow.stats.peak_stored_elements,
            "time_s": flow.stats.total_seconds,
        },
    ]
    print()
    print(format_table(rows, title=f"Genre-fair playlist of {playlist_size} songs (m=15)"))

    counts = sfdm2.solution.group_counts()
    print()
    print("SFDM2 playlist genre breakdown:")
    for genre in sorted(counts):
        name = dataset.group_names.get(genre, str(genre))
        print(f"  {name:>10}: {'#' * counts[genre]}")


if __name__ == "__main__":
    main()
