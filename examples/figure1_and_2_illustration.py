"""Reproduce the paper's illustrative Figures 1 and 2 as ASCII scatter plots.

* Figure 1 contrasts max-sum dispersion (which crowds extreme points) with
  max-min dispersion (which covers the space uniformly) on 2-D points.
* Figure 2 contrasts the unconstrained max-min solution with a fair one
  (5 + 5 elements from two groups).

The selected points are rendered on a coarse character grid so the
qualitative difference is visible without any plotting dependencies.

Run with::

    python examples/figure1_and_2_illustration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import SFDM1, equal_representation, gmm, max_sum_greedy, uniform_points  # noqa: E402


def ascii_scatter(points, selected_uids, width=48, height=20, marks=None):
    """Render unit-square points as a character grid; selected points stand out."""
    marks = marks or {}
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for element in points:
        x, y = element.vector
        column = min(width - 1, int(x * (width - 1)))
        row = min(height - 1, int((1 - y) * (height - 1)))
        if element.uid in selected_uids:
            grid[row][column] = marks.get(element.uid, "O")
        elif grid[row][column] == " ":
            grid[row][column] = "."
    border = "+" + "-" * width + "+"
    return "\n".join([border] + ["|" + "".join(row) + "|" for row in grid] + [border])


def main() -> None:
    k = 10
    dataset = uniform_points(n=400, m=2, seed=13)
    elements, metric = dataset.elements, dataset.metric

    # ---- Figure 1: max-sum vs max-min ------------------------------------
    sum_result = max_sum_greedy(elements, metric, k)
    min_result = gmm(elements, metric, k)
    print("Figure 1(a) — max-sum dispersion (tends to pick extreme, similar points):")
    print(ascii_scatter(elements, set(sum_result.solution.uids)))
    print(f"max-min diversity of the max-sum selection: {sum_result.solution.diversity:.3f}")
    print()
    print("Figure 1(b) — max-min dispersion (uniform coverage):")
    print(ascii_scatter(elements, set(min_result.solution.uids)))
    print(f"max-min diversity of the GMM selection:     {min_result.solution.diversity:.3f}")
    print()

    # ---- Figure 2: unconstrained vs fair ----------------------------------
    constraint = equal_representation(k, dataset.group_sizes().keys())
    fair_result = SFDM1(metric, constraint, epsilon=0.1).run(dataset.stream(seed=1))
    unconstrained_counts = min_result.solution.group_counts()
    fair_counts = fair_result.solution.group_counts()

    def group_marks(solution):
        return {e.uid: ("X" if e.group == 0 else "O") for e in solution.elements}

    print("Figure 2(a) — unconstrained solution (groups drawn as X / O):")
    print(
        ascii_scatter(
            elements, set(min_result.solution.uids), marks=group_marks(min_result.solution)
        )
    )
    print(f"group counts: {unconstrained_counts}")
    print()
    print("Figure 2(b) — fair solution (5 elements per group):")
    print(
        ascii_scatter(
            elements, set(fair_result.solution.uids), marks=group_marks(fair_result.solution)
        )
    )
    print(f"group counts: {fair_counts}, diversity {fair_result.diversity:.3f}")


if __name__ == "__main__":
    main()
