"""A multi-tenant ingestion service on the HTTP serving layer.

Spins up the real serving stack in-process (`ServerThread` runs the same
asyncio server `repro serve` does, on an ephemeral port) and drives it
over actual HTTP with `ServingClient`: two tenants stream irregular
mini-batches of feature rows, answer "current best fair selection"
queries mid-stream, get LRU-evicted to checkpoints when a third tenant
arrives, and are restored transparently on their next request.  The
shutdown drain leaves every tenant a checkpoint that `repro.resume()`
continues byte-identically.  Run with::

    python examples/streaming_service.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import repro  # noqa: E402
from repro.serving import ManagerConfig, ServerThread, ServingClient  # noqa: E402


def main() -> None:
    rng = np.random.default_rng(42)
    k, m, total = 10, 2, 3_000

    with tempfile.TemporaryDirectory(prefix="repro-service-") as scratch:
        state_dir = Path(scratch) / "state"
        config = ManagerConfig(
            state_dir=state_dir,
            max_live=2,        # third tenant forces an LRU eviction
            max_batch=256,     # micro-batch rows into the vectorised kernels
            flush_ms=5.0,
        )
        with ServerThread(config) as server:
            print(f"serving on {server.base_url}")
            client = ServingClient("127.0.0.1", server.port)

            # Tenants need no data up front — just the problem shape.
            for tenant in ("tenant-a", "tenant-b"):
                client.create_session(name=tenant, k=k, groups=m,
                                      algorithm="SFDM2")
            print(f"healthz: {client.healthz()}")

            # Traffic: irregular mini-batches, round-robin across tenants.
            offered = 0
            while offered < total:
                batch = int(rng.integers(50, 400))
                centers = rng.integers(0, 8, size=batch)
                rows = rng.normal(loc=centers[:, None] * 2.0, scale=0.6,
                                  size=(batch, 3))
                tenant = ("tenant-a", "tenant-b")[offered // 400 % 2]
                client.offer(tenant, rows, groups=rng.integers(0, m, size=batch))
                offered += batch

                if offered >= total // 2 and client.healthz()["sessions"] == 2:
                    # Mid-stream query: side-effect free, full payload.
                    answer = client.solution(tenant)
                    print(
                        f"{tenant} after {answer['elements_processed']} rows: "
                        f"diversity={answer['diversity']:.3f}, "
                        f"fair={answer['is_fair']}"
                    )
                    # A third tenant arrives; with max_live=2 the coldest
                    # session is evicted to a checkpoint behind the scenes.
                    client.create_session(name="tenant-c", k=k, groups=m)
                    newcomer = rng.normal(scale=2.0, size=(64, 3))
                    client.offer("tenant-c", newcomer,
                                 groups=rng.integers(0, m, size=64))

            metrics = client.metrics()
            print(
                f"evicted={metrics['repro.serving.sessions.evicted']} "
                f"restored={metrics['repro.serving.sessions.restored']} "
                f"(touching an evicted tenant restores it transparently)"
            )

            for tenant in ("tenant-a", "tenant-b", "tenant-c"):
                answer = client.solution(tenant)
                print(
                    f"{tenant}: {answer['algorithm']} over "
                    f"{answer['elements_processed']} rows, "
                    f"diversity={answer['diversity']:.3f}, "
                    f"fair={answer['is_fair']}"
                )

            # Graceful shutdown: drain checkpoints every open session.
            drained = server.stop(drain=True)
            print(f"drained {len(drained)} tenant(s) to {state_dir.name}/")

        # The drained checkpoints resume outside the server.
        session = repro.resume(state_dir / "tenant-a.ckpt")
        final = session.solution()
        print(
            f"resumed tenant-a offline: {final.stats.elements_processed} rows, "
            f"diversity={final.diversity:.3f}, fair={final.solution.is_fair}"
        )


if __name__ == "__main__":
    main()
