"""A long-lived ingestion service built on the session API.

Simulates the serving pattern the session API exists for: feature rows
arrive in irregular mini-batches (as they would from a request queue), the
service answers "current best fair selection" queries mid-stream, restarts
itself from a checkpoint halfway through, and ends with exactly the answer
an uninterrupted consumer would have produced.  Run with::

    python examples/streaming_service.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import repro  # noqa: E402


def main() -> None:
    rng = np.random.default_rng(42)
    k, m, total = 10, 2, 4_000

    # A session needs no data up front — just the problem shape.
    session = repro.open_session(k=k, groups=range(m), algorithm="SFDM2")
    print(f"opened: {session!r}")

    # Traffic: irregular mini-batches of raw feature rows.
    offered = 0
    checkpoint_path = Path(tempfile.gettempdir()) / "repro-service.ckpt"
    while offered < total:
        batch = int(rng.integers(50, 400))
        centers = rng.integers(0, 8, size=batch)
        rows = rng.normal(loc=centers[:, None] * 2.0, scale=0.6, size=(batch, 3))
        session.offer_rows(rows, groups=rng.integers(0, m, size=batch))
        offered += batch

        if offered >= total // 2 and not checkpoint_path.exists():
            # Mid-stream query: side-effect free, full RunResult.
            answer = session.solution()
            print(
                f"after {session.elements_offered} rows: "
                f"diversity={answer.diversity:.3f}, fair={answer.solution.is_fair}"
            )
            # Simulated redeploy: snapshot, drop the process state, resume.
            session.checkpoint(checkpoint_path)
            session = repro.resume(checkpoint_path)
            print(f"resumed from {checkpoint_path.name}: {session!r}")

    final = session.solution()
    print(
        f"final: {final.algorithm} over {final.stats.elements_processed} rows, "
        f"diversity={final.diversity:.3f}, fair={final.solution.is_fair}, "
        f"stored={final.stats.peak_stored_elements} elements, "
        f"{final.stats.total_distance_computations} distance computations"
    )
    checkpoint_path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
