"""Quickstart: fair diversity maximization through the unified API.

Generates a two-group Gaussian-blob dataset and runs the paper's streaming
algorithms and the offline baselines through the single ``repro.solve``
entry point, then prints a small comparison report.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import repro  # noqa: E402
from repro.evaluation.reporting import format_table  # noqa: E402


def main() -> None:
    # 1. Build a dataset: 5 000 points in ten Gaussian blobs, two groups.
    dataset = repro.synthetic_blobs(n=5_000, m=2, seed=7)
    print(f"dataset: {dataset.name} with groups {dataset.group_sizes()}")

    # 2. Every algorithm in the registry is one `solve` call away; quotas
    #    are built from k with the default equal-representation rule.
    print(f"registered algorithms: {', '.join(repro.algorithm_names())}")
    names = ["SFDM1", "SFDM2", "GMM", "FairSwap", "FairFlow"]
    results = {
        name: repro.solve(dataset, k=20, algorithm=name, epsilon=0.1, seed=1)
        for name in names
    }
    # `algorithm="auto"` picks for you: SFDM1 at m=2, SFDM2 otherwise.
    results["auto"] = repro.solve(dataset, k=20, epsilon=0.1, seed=1)

    rows = []
    for name, result in results.items():
        rows.append(
            {
                "algorithm": f"{name} -> {result.algorithm}" if name == "auto" else name,
                "diversity": result.diversity,
                "fair": getattr(result.solution, "is_fair", "-"),
                "time_s": result.stats.total_seconds,
                "stored": result.stats.peak_stored_elements,
            }
        )
    print()
    print(format_table(rows, title="Fair diversity maximization, k=20, m=2"))

    best = results["SFDM2"].solution
    print()
    print(f"SFDM2 selected uids: {best.uids}")
    print(f"SFDM2 per-group counts: {best.group_counts()}")


if __name__ == "__main__":
    main()
