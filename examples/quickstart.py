"""Quickstart: fair diversity maximization on a synthetic stream.

Generates a two-group Gaussian-blob dataset, streams it through SFDM1 and
SFDM2, compares them against the offline baselines, and prints a small
report.  Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import (  # noqa: E402
    SFDM1,
    SFDM2,
    equal_representation,
    fair_flow,
    fair_swap,
    gmm,
    synthetic_blobs,
)
from repro.evaluation.reporting import format_table  # noqa: E402


def main() -> None:
    # 1. Build a dataset: 5 000 points in ten Gaussian blobs, two groups.
    dataset = synthetic_blobs(n=5_000, m=2, seed=7)
    print(f"dataset: {dataset.name} with groups {dataset.group_sizes()}")

    # 2. Fairness constraint: equal representation, k = 20.
    constraint = equal_representation(k=20, groups=dataset.group_sizes().keys())
    print(f"constraint: {constraint.quotas}")

    # 3. Run the streaming algorithms (one pass over a random permutation).
    stream = dataset.stream(seed=1)
    results = {
        "SFDM1": SFDM1(dataset.metric, constraint, epsilon=0.1).run(stream),
        "SFDM2": SFDM2(dataset.metric, constraint, epsilon=0.1).run(stream),
        # 4. Offline baselines for comparison (they keep all n points in memory).
        "GMM (unconstrained)": gmm(dataset.elements, dataset.metric, constraint.total_size),
        "FairSwap": fair_swap(dataset.elements, dataset.metric, constraint),
        "FairFlow": fair_flow(dataset.elements, dataset.metric, constraint),
    }

    rows = []
    for name, result in results.items():
        rows.append(
            {
                "algorithm": name,
                "diversity": result.diversity,
                "fair": getattr(result.solution, "is_fair", "-"),
                "time_s": result.stats.total_seconds,
                "stored": result.stats.peak_stored_elements,
            }
        )
    print()
    print(format_table(rows, title="Fair diversity maximization, k=20, m=2"))

    best = results["SFDM2"].solution
    print()
    print(f"SFDM2 selected uids: {best.uids}")
    print(f"SFDM2 per-group counts: {best.group_counts()}")


if __name__ == "__main__":
    main()
