"""Unit tests of the asyncio :class:`repro.serving.SessionManager`.

Lifecycle, micro-batching triggers, LRU eviction/restore, backpressure,
drain, and the ``repro.serving.*`` metrics — all driven directly (no
HTTP) through ``asyncio.run`` so the suite needs no async test plugin.
"""

import asyncio

import numpy as np
import pytest

import repro
from repro import obs
from repro.datasets.synthetic import synthetic_blobs
from repro.serving import (
    ManagerConfig,
    QueueFullError,
    SessionExistsError,
    SessionManager,
    SessionNotFoundError,
    TooManySessionsError,
)

K = 4


@pytest.fixture(scope="module")
def data():
    dataset = synthetic_blobs(n=240, m=2, seed=17)
    features = np.asarray([element.vector for element in dataset.elements], dtype=float)
    groups = [int(element.group) for element in dataset.elements]
    return features, groups


def _config(tmp_path, **overrides):
    defaults = dict(state_dir=tmp_path / "state", max_batch=1_000, flush_ms=60_000.0)
    defaults.update(overrides)
    return ManagerConfig(**defaults)


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_create_offer_solution_close(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path))
        name = await manager.create(k=K, groups=2, algorithm="SFDM2")
        assert name in manager and len(manager) == 1
        receipt = await manager.offer(name, features[:100], groups=groups[:100])
        assert receipt == {"accepted": 100, "pending": 100}
        result = await manager.solution(name)
        assert manager.pending_rows(name) == 0  # query flushed the queue
        assert result.succeeded and len(result.solution.uids) == K
        await manager.close(name)
        assert name not in manager and len(manager) == 0

    _run(scenario())


def test_auto_names_and_duplicate_rejection(tmp_path):
    async def scenario():
        manager = SessionManager(_config(tmp_path))
        first = await manager.create(k=K, groups=2)
        second = await manager.create(k=K, groups=2)
        assert first != second and first.startswith("s-")
        await manager.create(k=K, groups=2, name="mine")
        with pytest.raises(SessionExistsError):
            await manager.create(k=K, groups=2, name="mine")
        with pytest.raises(repro.InvalidParameterError, match="session names"):
            await manager.create(k=K, groups=2, name="../escape")

    _run(scenario())


def test_session_cap_is_admission_control(tmp_path):
    async def scenario():
        manager = SessionManager(_config(tmp_path, max_sessions=2))
        await manager.create(k=K, groups=2)
        await manager.create(k=K, groups=2)
        with pytest.raises(TooManySessionsError) as info:
            await manager.create(k=K, groups=2)
        assert info.value.limit == 2

    _run(scenario())


def test_unknown_session_raises(tmp_path):
    async def scenario():
        manager = SessionManager(_config(tmp_path))
        with pytest.raises(SessionNotFoundError, match="ghost"):
            await manager.offer("ghost", [[0.0, 0.0]])
        with pytest.raises(SessionNotFoundError):
            await manager.solution("ghost")
        with pytest.raises(SessionNotFoundError):
            await manager.close("ghost")

    _run(scenario())


def test_close_with_checkpoint_leaves_state_file(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path))
        name = await manager.create(k=K, groups=2, name="keeper")
        await manager.offer(name, features[:80], groups=groups[:80])
        receipt = await manager.close(name, checkpoint=True)
        assert receipt["checkpoint"] is not None
        restored = repro.resume(receipt["checkpoint"])
        assert restored.elements_offered == 80

    _run(scenario())


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------
def test_offers_queue_until_max_batch(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path, max_batch=50))
        name = await manager.create(k=K, groups=2)
        await manager.offer(name, features[:30], groups=groups[:30])
        assert manager.pending_rows(name) == 30  # below max_batch: queued
        await manager.offer(name, features[30:60], groups=groups[30:60])
        assert manager.pending_rows(name) == 0  # 60 >= 50: flushed

    _run(scenario())


def test_flush_deadline_fires(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path, max_batch=1_000, flush_ms=10.0))
        name = await manager.create(k=K, groups=2)
        await manager.offer(name, features[:20], groups=groups[:20])
        assert manager.pending_rows(name) == 20
        deadline = asyncio.get_running_loop().time() + 2.0
        while manager.pending_rows(name) and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.005)
        assert manager.pending_rows(name) == 0

    _run(scenario())


def test_single_row_offers_and_validation(tmp_path):
    async def scenario():
        manager = SessionManager(_config(tmp_path))
        name = await manager.create(k=K, groups=2)
        receipt = await manager.offer(name, [1.0, 2.0], groups=[0])  # one bare row
        assert receipt["accepted"] == 1
        with pytest.raises(repro.InvalidParameterError, match="non-empty"):
            await manager.offer(name, np.empty((0, 2)))
        with pytest.raises(repro.InvalidParameterError, match="groups"):
            await manager.offer(name, [[1.0, 2.0]], groups=[0, 1])
        with pytest.raises(repro.InvalidParameterError, match="uids"):
            await manager.offer(name, [[1.0, 2.0]], uids=[7, 8])

    _run(scenario())


def test_backpressure_is_all_or_nothing(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path, max_queue=100))
        name = await manager.create(k=K, groups=2)
        await manager.offer(name, features[:90], groups=groups[:90])
        with pytest.raises(QueueFullError) as info:
            await manager.offer(name, features[90:120], groups=groups[90:120])
        assert info.value.pending == 90 and info.value.limit == 100
        # nothing from the rejected offer was queued
        assert manager.pending_rows(name) == 90
        # a fitting offer still goes through (max_batch is high: still queued)
        receipt = await manager.offer(name, features[90:100], groups=groups[90:100])
        assert receipt == {"accepted": 10, "pending": 100}

    _run(scenario())


# ----------------------------------------------------------------------
# LRU eviction / restore
# ----------------------------------------------------------------------
def test_lru_eviction_and_transparent_restore(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path, max_live=2))
        names = [await manager.create(k=K, groups=2, name=f"t{i}") for i in range(3)]
        # three sessions, two live slots: the LRU one was evicted
        assert manager.live_count == 2
        evicted = [n for n in names if not manager.is_live(n)]
        assert evicted == ["t0"]
        assert (tmp_path / "state" / "t0.ckpt").exists()
        # touching the evicted session restores it and evicts another
        await manager.offer("t0", features[:10], groups=groups[:10])
        await manager.flush("t0")
        assert manager.is_live("t0")
        assert manager.live_count == 2
        stats = manager.stats()
        assert stats["sessions"] == 3 and stats["evicted"] == 1

    _run(scenario())


def test_eviction_preserves_progress(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path, max_live=1))
        await manager.create(k=K, groups=2, name="a")
        await manager.offer("a", features[:120], groups=groups[:120])
        await manager.flush("a")
        await manager.create(k=K, groups=2, name="b")  # evicts a
        assert not manager.is_live("a")
        result = await manager.solution("a")  # restores a (evicting b)
        assert result.stats.elements_processed == 120

    _run(scenario())


def test_drain_checkpoints_every_session(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path, max_live=2))
        for i in range(3):
            await manager.create(k=K, groups=2, name=f"d{i}")
            await manager.offer(f"d{i}", features[:40], groups=groups[:40])
        checkpoints = await manager.drain()
        assert sorted(checkpoints) == ["d0", "d1", "d2"]
        for name, path in checkpoints.items():
            restored = repro.resume(path)
            assert restored.elements_offered == 40, name

    _run(scenario())


def test_shutdown_drops_state_without_checkpoints(tmp_path):
    async def scenario():
        manager = SessionManager(_config(tmp_path, flush_ms=10.0))
        await manager.create(k=K, groups=2, name="gone")
        await manager.offer("gone", [1.0, 2.0], groups=[0])
        await manager.shutdown()
        assert len(manager) == 0
        assert not (tmp_path / "state" / "gone.ckpt").exists()

    _run(scenario())


# ----------------------------------------------------------------------
# Metrics + config validation
# ----------------------------------------------------------------------
def test_serving_metrics_flow_without_tracing(tmp_path, data):
    features, groups = data

    async def scenario():
        manager = SessionManager(_config(tmp_path, max_live=1, max_batch=30))
        before = obs.get_metrics().counter("repro.serving.offered_rows").value
        await manager.create(k=K, groups=2, name="m0")
        await manager.create(k=K, groups=2, name="m1")  # evicts m0
        await manager.offer("m0", features[:30], groups=groups[:30])  # restore
        snapshot = manager.metrics_snapshot()
        assert snapshot["repro.serving.offered_rows"] == before + 30
        assert snapshot["repro.serving.sessions.active"] == 2
        assert snapshot["repro.serving.sessions.live"] == 1
        assert snapshot["repro.serving.flushes"] >= 1

    assert not obs.enabled()  # the point: metrics flow while tracing is off
    _run(scenario())


@pytest.mark.parametrize(
    "overrides, match",
    (
        ({"max_sessions": 0}, "max_sessions"),
        ({"max_live": -1}, "max_live"),
        ({"max_batch": 0}, "max_batch"),
        ({"max_queue": 0}, "max_queue"),
        ({"flush_ms": -5.0}, "flush_ms"),
    ),
)
def test_config_validation(tmp_path, overrides, match):
    with pytest.raises(repro.InvalidParameterError, match=match):
        _config(tmp_path, **overrides)


def test_batch_capable_sessions_get_batch_size_option(tmp_path):
    async def scenario():
        manager = SessionManager(_config(tmp_path, max_batch=64))
        streaming = await manager.create(k=K, groups=2, algorithm="SFDM2")
        windowed = await manager.create(
            k=K, groups=2, algorithm="SlidingWindowFDM", options={"window": 50}
        )
        entry_s = manager._entries[streaming]
        entry_w = manager._entries[windowed]
        assert entry_s.session._algorithm.batch_size == 64
        assert not hasattr(entry_w.session, "batch_size")

    _run(scenario())
