"""Unit tests for the matroid classes (uniform, partition, cluster, restriction)."""

import numpy as np
import pytest

from repro.fairness.constraints import FairnessConstraint
from repro.matroids.base import RestrictedMatroid
from repro.matroids.cluster import ClusterMatroid
from repro.matroids.partition import PartitionMatroid, matroid_from_constraint
from repro.matroids.uniform import UniformMatroid
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError


def _elements(groups):
    return [Element(uid=i, vector=np.array([float(i)]), group=g) for i, g in enumerate(groups)]


class TestUniformMatroid:
    def test_independence_by_size(self):
        matroid = UniformMatroid(range(10), k=3)
        assert matroid.is_independent({0, 1})
        assert matroid.is_independent({0, 1, 2})
        assert not matroid.is_independent({0, 1, 2, 3})

    def test_rejects_items_outside_ground_set(self):
        matroid = UniformMatroid(range(5), k=3)
        assert not matroid.is_independent({99})

    def test_empty_set_is_independent(self):
        assert UniformMatroid(range(3), k=0).is_independent(set())

    def test_full_rank(self):
        assert UniformMatroid(range(10), k=4).full_rank() == 4

    def test_rank_of_subset(self):
        matroid = UniformMatroid(range(10), k=4)
        assert matroid.rank(range(2)) == 2
        assert matroid.rank(range(8)) == 4

    def test_extend_to_basis(self):
        matroid = UniformMatroid(range(6), k=3)
        basis = matroid.extend_to_basis({0})
        assert len(basis) == 3
        assert matroid.is_independent(basis)

    def test_can_add(self):
        matroid = UniformMatroid(range(5), k=2)
        assert matroid.can_add({0}, 1)
        assert not matroid.can_add({0, 1}, 2)
        assert not matroid.can_add({0}, 0)


class TestPartitionMatroid:
    def test_block_capacities(self):
        matroid = PartitionMatroid(
            ground_set=range(6),
            block_of=lambda x: x % 2,
            capacities={0: 2, 1: 1},
        )
        assert matroid.is_independent({0, 2})
        assert not matroid.is_independent({0, 2, 4})
        assert matroid.is_independent({0, 1})
        assert not matroid.is_independent({1, 3})

    def test_default_capacity_zero(self):
        matroid = PartitionMatroid(
            ground_set=range(4), block_of=lambda x: x % 2, capacities={0: 2}
        )
        assert not matroid.is_independent({1})

    def test_default_capacity_override(self):
        matroid = PartitionMatroid(
            ground_set=range(4),
            block_of=lambda x: x % 2,
            capacities={0: 1},
            default_capacity=5,
        )
        assert matroid.is_independent({1, 3})

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            PartitionMatroid(range(3), block_of=lambda x: 0, capacities={0: -1})

    def test_full_rank_sums_capacities(self):
        matroid = PartitionMatroid(
            ground_set=range(10), block_of=lambda x: x % 2, capacities={0: 2, 1: 3}
        )
        assert matroid.full_rank() == 5

    def test_block_counts(self):
        matroid = PartitionMatroid(
            ground_set=range(6), block_of=lambda x: x % 3, capacities={0: 2, 1: 2, 2: 2}
        )
        assert matroid.block_counts({0, 1, 3}) == {0: 2, 1: 1}


class TestMatroidFromConstraint:
    def test_matches_constraint_semantics(self):
        elements = _elements([0, 0, 0, 1, 1])
        constraint = FairnessConstraint({0: 2, 1: 1})
        matroid = matroid_from_constraint(elements, constraint)
        assert matroid.is_independent({elements[0], elements[3]})
        assert not matroid.is_independent({elements[0], elements[1], elements[2]})
        assert matroid.full_rank() == 3

    def test_foreign_groups_have_zero_capacity(self):
        elements = _elements([0, 5])
        constraint = FairnessConstraint({0: 1})
        matroid = matroid_from_constraint(elements, constraint)
        assert not matroid.is_independent({elements[1]})


class TestClusterMatroid:
    def test_at_most_one_per_cluster(self):
        elements = _elements([0, 0, 1, 1])
        matroid = ClusterMatroid([[elements[0], elements[1]], [elements[2], elements[3]]])
        assert matroid.is_independent({elements[0], elements[2]})
        assert not matroid.is_independent({elements[0], elements[1]})

    def test_num_clusters_is_rank(self):
        elements = _elements([0, 0, 1])
        matroid = ClusterMatroid([[elements[0]], [elements[1]], [elements[2]]])
        assert matroid.num_clusters == 3
        assert matroid.full_rank() == 3

    def test_cluster_of(self):
        elements = _elements([0, 1])
        matroid = ClusterMatroid([[elements[0]], [elements[1]]])
        assert matroid.cluster_of(elements[1]) == 1

    def test_rejects_empty_cluster(self):
        with pytest.raises(InvalidParameterError):
            ClusterMatroid([[]])

    def test_rejects_duplicate_membership(self):
        elements = _elements([0])
        with pytest.raises(InvalidParameterError):
            ClusterMatroid([[elements[0]], [elements[0]]])

    def test_clusters_property_returns_copies(self):
        elements = _elements([0, 1])
        matroid = ClusterMatroid([[elements[0]], [elements[1]]])
        clusters = matroid.clusters
        clusters[0].append(elements[1])
        assert len(matroid.clusters[0]) == 1


class TestRestrictedMatroid:
    def test_restriction_keeps_independence(self):
        matroid = UniformMatroid(range(10), k=2)
        restricted = matroid.restricted(range(5))
        assert restricted.is_independent({0, 1})
        assert not restricted.is_independent({0, 1, 2})

    def test_restriction_excludes_outside_items(self):
        matroid = UniformMatroid(range(10), k=2)
        restricted = matroid.restricted(range(5))
        assert not restricted.is_independent({7})

    def test_restriction_to_unknown_items_raises(self):
        matroid = UniformMatroid(range(3), k=2)
        with pytest.raises(ValueError):
            RestrictedMatroid(matroid, [99])
