"""Unit tests for the columnar ElementStore and its zero-copy contracts."""

import pickle

import numpy as np
import pytest

from repro.data.store import ElementStore, store_rows_of
from repro.metrics.vector import EuclideanMetric, _as_batch
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError


def _store(n=10, d=3):
    features = np.arange(n * d, dtype=float).reshape(n, d)
    groups = np.arange(n) % 2
    return ElementStore(features, groups)


class TestConstruction:
    def test_coerces_to_c_contiguous_float64(self):
        fortran = np.asfortranarray(np.ones((4, 2), dtype=np.float32))
        store = ElementStore(fortran, np.zeros(4, dtype=int))
        assert store.features.dtype == np.float64
        assert store.features.flags["C_CONTIGUOUS"]

    def test_no_copy_when_already_canonical(self):
        features = np.ascontiguousarray(np.ones((4, 2)))
        store = ElementStore(features, np.zeros(4, dtype=int))
        assert store.features is features

    def test_default_uids_are_arange(self):
        store = _store(5)
        assert list(store.uids) == [0, 1, 2, 3, 4]

    def test_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            ElementStore(np.ones((2, 2, 2)), np.zeros(2))
        with pytest.raises(InvalidParameterError):
            ElementStore(np.ones((3, 2)), np.zeros(2))
        with pytest.raises(InvalidParameterError):
            ElementStore(np.ones((3, 2)), np.zeros(3), uids=np.zeros(2))
        with pytest.raises(InvalidParameterError):
            ElementStore(np.ones((3, 2)), np.zeros(3), labels=["a"])

    def test_from_elements_roundtrip(self):
        elements = [
            Element(uid=7 + i, vector=[float(i), 0.0], group=i % 3, label=f"e{i}")
            for i in range(6)
        ]
        store = ElementStore.from_elements(elements)
        rebuilt = store.elements()
        assert [e.uid for e in rebuilt] == [e.uid for e in elements]
        assert [e.group for e in rebuilt] == [e.group for e in elements]
        assert [e.label for e in rebuilt] == [e.label for e in elements]
        assert all(np.allclose(a.vector, b.vector) for a, b in zip(rebuilt, elements))

    def test_try_from_elements_rejects_non_columnar(self):
        ragged = [
            Element(uid=0, vector=np.ones(1)),
            Element(uid=1, vector=np.ones(2)),
        ]
        assert ElementStore.try_from_elements(ragged) is None
        categorical = [Element(uid=0, vector=np.array(["a", "b"]))]
        assert ElementStore.try_from_elements(categorical) is None
        scalar = [Element(uid=0, vector=3)]
        assert ElementStore.try_from_elements(scalar) is None

    def test_from_elements_gathers_views_of_parent_store(self):
        parent = _store(8)
        views = [parent.element(i) for i in (5, 1, 3)]
        child = ElementStore.from_elements(views)
        assert list(child.uids) == [5, 1, 3]
        assert np.allclose(child.features, parent.features[[5, 1, 3]])


class TestZeroCopyContracts:
    def test_row_range_slices_share_memory(self):
        store = _store(20)
        window = store.rows(slice(4, 12))
        assert np.shares_memory(window, store.features)
        assert window.flags["C_CONTIGUOUS"]

    def test_kernel_coercion_is_identity_on_slices(self):
        # The regression pinning "no copy on the slice path": the batch
        # kernels coerce payload stacks with `_as_batch`, which must be a
        # no-op for a store row-range (already C-contiguous float64).
        store = _store(20)
        window = store.rows(slice(3, 9))
        assert _as_batch(window) is window

    def test_element_view_payload_shares_memory(self):
        store = _store(6)
        view = store.element(2)
        assert np.shares_memory(view.vector, store.features)
        assert view.store is store and view.row == 2

    def test_slice_store_shares_memory(self):
        store = _store(10)
        sub = store.slice(2, 7)
        assert len(sub) == 5
        assert np.shares_memory(sub.features, store.features)
        assert list(sub.uids) == [2, 3, 4, 5, 6]

    def test_select_gathers(self):
        store = _store(10)
        sub = store.select(np.array([9, 0, 4]))
        assert list(sub.uids) == [9, 0, 4]
        assert not np.shares_memory(sub.features, store.features)

    def test_distances_idx_slices_store_directly(self):
        store = _store(12)
        metric = EuclideanMetric()
        result = metric.distances_idx(store, 0, slice(4, 10))
        expected = metric.distances_to(store.features[0], store.features[4:10])
        assert np.array_equal(result, expected)

    def test_pairwise_idx_matches_pairwise(self):
        store = _store(9)
        metric = EuclideanMetric()
        rows = np.array([1, 3, 5])
        result = metric.pairwise_idx(store, rows, slice(0, 4))
        expected = metric.pairwise(store.features[rows], store.features[0:4])
        assert np.array_equal(result, expected)


class TestViewsAndHelpers:
    def test_store_rows_of_recovers_backing(self):
        store = _store(7)
        views = [store.element(i) for i in (6, 2, 2, 0)]
        backing = store_rows_of(views)
        assert backing is not None
        recovered, rows = backing
        assert recovered is store
        assert list(rows) == [6, 2, 2, 0]

    def test_store_rows_of_rejects_mixed_sources(self):
        store_a, store_b = _store(4), _store(4)
        mixed = [store_a.element(0), store_b.element(1)]
        assert store_rows_of(mixed) is None
        assert store_rows_of([Element(uid=0, vector=[1.0])]) is None
        assert store_rows_of([]) is None

    def test_views_detach_on_pickle(self):
        store = _store(5)
        view = store.element(3)
        restored = pickle.loads(pickle.dumps(view))
        assert restored.uid == 3
        assert restored.store is None and restored.row == -1
        assert np.allclose(restored.vector, view.vector)

    def test_group_rows_partition(self):
        store = _store(10)
        partition = store.group_rows()
        assert set(partition) == {0, 1}
        assert list(partition[0]) == [0, 2, 4, 6, 8]
        assert list(partition[1]) == [1, 3, 5, 7, 9]

    def test_iter_elements_order(self):
        store = _store(5)
        order = [4, 0, 2]
        assert [e.uid for e in store.iter_elements(order)] == order


class TestElementCoercion:
    def test_lists_become_contiguous_float64(self):
        element = Element(uid=0, vector=[1, 2, 3])
        assert element.vector.dtype == np.float64
        assert element.vector.flags["C_CONTIGUOUS"]

    def test_numeric_arrays_coerced_once(self):
        strided = np.arange(10, dtype=np.float64)[::2]
        element = Element(uid=0, vector=strided)
        assert element.vector.flags["C_CONTIGUOUS"]
        already = np.ascontiguousarray([1.0, 2.0])
        assert Element(uid=1, vector=already).vector is already

    def test_int_arrays_become_float64(self):
        element = Element(uid=0, vector=np.array([1, 0, 1]))
        assert element.vector.dtype == np.float64

    def test_non_numeric_payloads_untouched(self):
        categorical = np.array(["a", "b"])
        assert Element(uid=0, vector=categorical).vector is categorical
        assert Element(uid=1, vector=5).vector == 5
