"""Unit tests for the RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_from_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_from_int_is_reproducible(self):
        a = ensure_rng(123).integers(0, 1000, size=5)
        b = ensure_rng(123).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10_000, size=10)
        b = ensure_rng(2).integers(0, 10_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        rng = ensure_rng(np.random.SeedSequence(7))
        assert isinstance(rng, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent_yet_reproducible(self):
        first = [rng.integers(0, 1000) for rng in spawn_rngs(42, 3)]
        second = [rng.integers(0, 1000) for rng in spawn_rngs(42, 3)]
        assert first == second

    def test_children_differ_from_each_other(self):
        draws = [int(rng.integers(0, 2**31)) for rng in spawn_rngs(7, 5)]
        assert len(set(draws)) > 1

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 2)
        assert len(children) == 2


class TestDeriveSeed:
    def test_none_stays_none(self):
        assert derive_seed(None, 5) is None

    def test_deterministic(self):
        assert derive_seed(10, 3) == derive_seed(10, 3)

    def test_salt_changes_value(self):
        assert derive_seed(10, 1) != derive_seed(10, 2)
